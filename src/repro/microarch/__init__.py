"""Quantum micro-architecture (Section 2.5, Figures 5-7).

The micro-architecture sits between the compiler's eQASM output and the
quantum device (here: the QX simulator).  It models the blocks of Figure 5/6:
an instruction fetch/decode front-end, the micro-code unit that expands each
eQASM operation into horizontal micro-operations (codewords), the timing
control unit that issues the codewords with nanosecond precision, the
operation queues feeding the analogue-digital interface (ADI), and the
measurement result path back to the classical controller.
"""

from repro.microarch.microcode import MicrocodeUnit, MicroOperation
from repro.microarch.queues import OperationQueue, QueueStatistics
from repro.microarch.timing_control import TimingControlUnit, TimedEvent
from repro.microarch.adi import AnalogDigitalInterface, Pulse
from repro.microarch.executor import QuantumAccelerator, ExecutionTrace

__all__ = [
    "MicrocodeUnit",
    "MicroOperation",
    "OperationQueue",
    "QueueStatistics",
    "TimingControlUnit",
    "TimedEvent",
    "AnalogDigitalInterface",
    "Pulse",
    "QuantumAccelerator",
    "ExecutionTrace",
]
