"""Micro-code unit.

Each eQASM instruction is expanded at run time into one or more *horizontal*
micro-operations: per-channel codewords with precise relative timing.  A
two-qubit CZ gate, for example, expands into a flux pulse on the coupler
channel plus idling (echo) pulses on the two qubit drive channels.  The
micro-code table is part of the platform configuration: retargeting the same
micro-architecture to a different quantum technology only changes this table
(Section 3.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eqasm.instructions import EqasmInstruction
from repro.openql.platform import Platform


@dataclass(frozen=True)
class MicroOperation:
    """One codeword on one control channel at a relative time offset."""

    channel: str
    codeword: int
    offset_ns: int
    duration_ns: int
    kind: str = "drive"  # drive | flux | measure


@dataclass
class MicrocodeEntry:
    """Expansion rule for one opcode."""

    opcode: str
    kind: str
    duration_ns: int
    channels_per_qubit: tuple[str, ...] = ("drive",)


class MicrocodeUnit:
    """Expand eQASM instructions into micro-operation lists."""

    def __init__(self, platform: Platform, table: dict[str, MicrocodeEntry] | None = None):
        self.platform = platform
        self.table = table or self._default_table(platform)
        self._codeword_counter = 0
        self._codewords: dict[tuple[str, str], int] = {}

    @staticmethod
    def _default_table(platform: Platform) -> dict[str, MicrocodeEntry]:
        table: dict[str, MicrocodeEntry] = {}
        for name in platform.primitive_gates:
            duration = platform.duration_of(name)
            if name in ("cz", "cnot", "swap", "cr", "crk"):
                table[name] = MicrocodeEntry(name, "flux", duration, ("flux",))
            elif name == "measure":
                table[name] = MicrocodeEntry(name, "measure", duration, ("readout",))
            else:
                table[name] = MicrocodeEntry(name, "drive", max(duration, 1), ("drive",))
        table.setdefault(
            "measz", MicrocodeEntry("measz", "measure", platform.duration_of("measure"), ("readout",))
        )
        return table

    # ------------------------------------------------------------------ #
    def expand(self, instruction: EqasmInstruction) -> list[MicroOperation]:
        """Expand one eQASM instruction into its micro-operations."""
        entry = self.table.get(instruction.opcode)
        if entry is None:
            raise ValueError(
                f"no micro-code entry for opcode {instruction.opcode!r} on platform "
                f"{self.platform.name!r}"
            )
        operations: list[MicroOperation] = []
        for qubit in instruction.qubits:
            for channel_kind in entry.channels_per_qubit:
                channel = f"{channel_kind}_{qubit}"
                codeword = self._codeword_for(instruction.opcode, channel_kind)
                operations.append(
                    MicroOperation(
                        channel=channel,
                        codeword=codeword,
                        offset_ns=0,
                        duration_ns=entry.duration_ns,
                        kind=entry.kind,
                    )
                )
        return operations

    def _codeword_for(self, opcode: str, channel_kind: str) -> int:
        key = (opcode, channel_kind)
        if key not in self._codewords:
            self._codewords[key] = self._codeword_counter
            self._codeword_counter += 1
        return self._codewords[key]

    def codeword_table(self) -> dict[tuple[str, str], int]:
        return dict(self._codewords)

    def channel_names(self) -> list[str]:
        """All control channels the platform exposes."""
        channels: set[str] = set()
        for qubit in range(self.platform.num_qubits):
            channels.add(f"drive_{qubit}")
            channels.add(f"flux_{qubit}")
            channels.add(f"readout_{qubit}")
        return sorted(channels)
