"""Analogue-digital interface (ADI).

The last digital block before the qubits: codewords arriving from the timing
control unit are looked up in the pulse library and converted into sampled
analogue waveforms (here: numpy arrays of a parameterised envelope).  The
pulse library is technology specific — a superconducting platform uses
short DRAG-like microwave envelopes and fast flux pulses, a spin-qubit
platform uses longer pulses — which is what makes the micro-architecture
retargetable by swapping only this table and the micro-code unit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.microarch.microcode import MicroOperation
from repro.microarch.timing_control import TimedEvent


@dataclass
class Pulse:
    """A sampled analogue waveform assigned to a channel at a start time."""

    channel: str
    start_ns: int
    duration_ns: int
    samples: np.ndarray
    kind: str = "drive"

    @property
    def energy(self) -> float:
        """Integrated squared amplitude (arbitrary units)."""
        return float(np.sum(np.abs(self.samples) ** 2))


class PulseLibrary:
    """Codeword -> waveform envelope generator."""

    def __init__(self, sample_rate_gsps: float = 1.0):
        # 1 GS/s default: one sample per nanosecond.
        self.sample_rate_gsps = sample_rate_gsps

    def waveform(self, operation: MicroOperation) -> np.ndarray:
        samples = max(1, int(round(operation.duration_ns * self.sample_rate_gsps)))
        t = np.linspace(0.0, 1.0, samples)
        if operation.kind == "drive":
            # Gaussian microwave envelope; amplitude keyed by codeword so
            # distinct gates produce distinct (reproducible) waveforms.
            amplitude = 0.5 + 0.05 * (operation.codeword % 8)
            return amplitude * np.exp(-((t - 0.5) ** 2) / 0.05)
        if operation.kind == "flux":
            # Square flux pulse with short ramps.
            wave = np.ones(samples)
            ramp = max(1, samples // 8)
            wave[:ramp] = np.linspace(0.0, 1.0, ramp)
            wave[-ramp:] = np.linspace(1.0, 0.0, ramp)
            return 0.8 * wave
        if operation.kind == "measure":
            # Long rectangular readout tone.
            return 0.3 * np.ones(samples)
        return np.zeros(samples)


class AnalogDigitalInterface:
    """Convert timed codeword events into analogue pulses."""

    def __init__(self, sample_rate_gsps: float = 1.0):
        self.library = PulseLibrary(sample_rate_gsps)
        self.pulses: list[Pulse] = []

    def convert(self, events: list[TimedEvent]) -> list[Pulse]:
        """Convert a full event trace into a pulse sequence."""
        self.pulses = [
            Pulse(
                channel=event.operation.channel,
                start_ns=event.time_ns,
                duration_ns=event.operation.duration_ns,
                samples=self.library.waveform(event.operation),
                kind=event.operation.kind,
            )
            for event in events
        ]
        return self.pulses

    def total_pulse_count(self) -> int:
        return len(self.pulses)

    def total_energy(self) -> float:
        return sum(pulse.energy for pulse in self.pulses)

    def channel_waveform(self, channel: str, end_ns: int | None = None) -> np.ndarray:
        """Reconstruct the full sampled waveform of one channel."""
        if end_ns is None:
            end_ns = max((p.start_ns + p.duration_ns for p in self.pulses), default=0)
        samples = int(round(end_ns * self.library.sample_rate_gsps)) + 1
        waveform = np.zeros(samples)
        for pulse in self.pulses:
            if pulse.channel != channel:
                continue
            start = int(round(pulse.start_ns * self.library.sample_rate_gsps))
            stop = min(samples, start + pulse.samples.size)
            waveform[start:stop] += pulse.samples[: stop - start]
        return waveform
