"""Timing control unit.

Issues micro-operations at absolute nanosecond timestamps.  The unit keeps a
global clock, enforces that a channel is never driven by two codewords at
once, and produces the event trace the ADI converts into pulses.  This is the
block for which "the timing execution requirements are very strict and need
to be precise up to the nanosecond level" (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.microarch.microcode import MicroOperation
from repro.microarch.queues import QueueSet


@dataclass(frozen=True)
class TimedEvent:
    """A micro-operation pinned to an absolute issue time."""

    time_ns: int
    operation: MicroOperation
    qubits: tuple[int, ...]


class TimingControlUnit:
    """Deterministic issue of micro-operations with channel conflict checks."""

    def __init__(self, cycle_time_ns: int = 20, queue_capacity: int | None = None):
        if cycle_time_ns < 1:
            raise ValueError("cycle time must be at least 1 ns")
        self.cycle_time_ns = cycle_time_ns
        self.clock_ns = 0
        self.events: list[TimedEvent] = []
        self.queues = QueueSet(capacity=queue_capacity)
        self._channel_busy_until: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def advance(self, cycles: int) -> None:
        """Advance the global clock by an integer number of cycles."""
        if cycles < 0:
            raise ValueError("cannot advance time backwards")
        self.clock_ns += cycles * self.cycle_time_ns

    def issue(self, operations: list[MicroOperation], qubits: tuple[int, ...]) -> int:
        """Issue a bundle of micro-operations at the current clock.

        Returns the duration (ns) of the longest operation in the bundle.
        Raises ``ValueError`` when a channel is still busy — a timing
        violation that a correct schedule must never produce.
        """
        longest = 0
        for operation in operations:
            start = self.clock_ns + operation.offset_ns
            busy_until = self._channel_busy_until.get(operation.channel, 0)
            if start < busy_until:
                raise ValueError(
                    f"channel {operation.channel!r} busy until {busy_until} ns, "
                    f"cannot issue at {start} ns"
                )
            self._channel_busy_until[operation.channel] = start + operation.duration_ns
            self.queues.push(operation.channel, start, operation)
            self.events.append(TimedEvent(time_ns=start, operation=operation, qubits=qubits))
            longest = max(longest, operation.offset_ns + operation.duration_ns)
        return longest

    def wait_until_free(self, channels: list[str]) -> None:
        """Advance the clock until every listed channel is idle."""
        latest = max((self._channel_busy_until.get(c, 0) for c in channels), default=0)
        if latest > self.clock_ns:
            delta = latest - self.clock_ns
            cycles = -(-delta // self.cycle_time_ns)
            self.advance(cycles)

    # ------------------------------------------------------------------ #
    def trace(self) -> list[TimedEvent]:
        return sorted(self.events, key=lambda e: (e.time_ns, e.operation.channel))

    def total_duration_ns(self) -> int:
        return max(self._channel_busy_until.values(), default=self.clock_ns)

    def channel_utilisation(self) -> dict[str, float]:
        """Busy fraction per channel over the total execution window."""
        total = self.total_duration_ns()
        if total == 0:
            return {}
        busy: dict[str, int] = {}
        for event in self.events:
            busy[event.operation.channel] = busy.get(event.operation.channel, 0) + (
                event.operation.duration_ns
            )
        return {channel: duration / total for channel, duration in busy.items()}
