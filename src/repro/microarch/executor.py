"""The quantum accelerator executor.

Ties the full experimental stack of Figure 6 together: the eQASM program is
fetched bundle by bundle, expanded by the micro-code unit, issued by the
timing control unit, converted to pulses by the ADI, and — in place of the
physical chip — executed functionally by the QX simulator, whose measurement
results flow back to the classical side.  The executor therefore provides
both a *timing* view (cycles, pulses, channel utilisation) and a
*functional* view (measurement statistics) of a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.circuit import Circuit
from repro.eqasm.assembler import EqasmAssembler
from repro.eqasm.instructions import EqasmProgram, QuantumBundle
from repro.microarch.adi import AnalogDigitalInterface, Pulse
from repro.microarch.microcode import MicrocodeUnit
from repro.microarch.timing_control import TimingControlUnit
from repro.openql.platform import Platform
from repro.qx.error_models import error_model_for
from repro.qx.simulator import QXSimulator, SimulationResult


@dataclass
class ExecutionTrace:
    """Combined timing + functional record of one accelerator run."""

    platform_name: str
    total_duration_ns: int
    bundle_count: int
    pulse_count: int
    channel_utilisation: dict[str, float]
    result: SimulationResult | None = None
    pulses: list[Pulse] = field(default_factory=list)
    queue_max_depth: int = 0

    @property
    def wall_clock_us(self) -> float:
        return self.total_duration_ns / 1000.0


class QuantumAccelerator:
    """Full micro-architecture + device model for one platform."""

    def __init__(self, platform: Platform, seed: int | None = None):
        self.platform = platform
        self.microcode = MicrocodeUnit(platform)
        self.assembler = EqasmAssembler(platform)
        self.simulator = QXSimulator(
            num_qubits=platform.num_qubits,
            error_model=error_model_for(platform.qubit_model),
            seed=seed,
        )

    # ------------------------------------------------------------------ #
    def execute_circuit(self, circuit: Circuit, shots: int = 1) -> ExecutionTrace:
        """Assemble a compiled circuit to eQASM and execute it end to end."""
        program = self.assembler.assemble(circuit)
        return self.execute_eqasm(program, functional_circuit=circuit, shots=shots)

    def execute_eqasm(
        self,
        program: EqasmProgram,
        functional_circuit: Circuit | None = None,
        shots: int = 1,
    ) -> ExecutionTrace:
        """Drive the timing pipeline for an eQASM program.

        The timing pipeline (micro-code, timing control, queues, ADI) is
        always exercised; the functional result additionally requires the
        original circuit, which plays the role of the quantum chip contents.
        """
        timing = TimingControlUnit(cycle_time_ns=program.cycle_time_ns)
        for bundle in program.bundles:
            if not isinstance(bundle, QuantumBundle):
                continue
            timing.advance(bundle.wait_cycles)
            channels = []
            longest_ns = 0
            for instruction in bundle.operations:
                micro_ops = self.microcode.expand(instruction)
                channels.extend(op.channel for op in micro_ops)
                longest_ns = max(longest_ns, timing.issue(micro_ops, instruction.qubits))
            cycles = -(-longest_ns // program.cycle_time_ns) if longest_ns else 0
            timing.advance(cycles)

        adi = AnalogDigitalInterface()
        pulses = adi.convert(timing.trace())

        result = None
        if functional_circuit is not None:
            result = self.simulator.run(functional_circuit, shots=shots)

        return ExecutionTrace(
            platform_name=self.platform.name,
            total_duration_ns=timing.total_duration_ns(),
            bundle_count=len(program.quantum_bundles()),
            pulse_count=len(pulses),
            channel_utilisation=timing.channel_utilisation(),
            result=result,
            pulses=pulses,
            queue_max_depth=timing.queues.max_depth_seen(),
        )

    # ------------------------------------------------------------------ #
    def estimated_shot_duration_ns(self, circuit: Circuit) -> int:
        """Duration of one shot as determined by the eQASM timing."""
        program = self.assembler.assemble(circuit)
        return program.total_duration_ns()
