"""Operation queues feeding the analogue back-end.

Figures 6 and 7 of the paper show a set of queues between the micro-code
unit and the analogue-digital interface: codewords are pushed per control
channel and drained in timestamp order.  The queue model records occupancy
statistics so the benchmarks can report the buffering the micro-architecture
needs ("make sure that the quantum accelerator always has enough data to
process").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class QueueStatistics:
    """Occupancy statistics of one queue."""

    pushes: int = 0
    pops: int = 0
    max_depth: int = 0
    underruns: int = 0

    @property
    def current_depth(self) -> int:
        return self.pushes - self.pops


class OperationQueue:
    """FIFO of (timestamp, payload) entries for one control channel."""

    def __init__(self, name: str, capacity: int | None = None):
        self.name = name
        self.capacity = capacity
        self._entries: deque[tuple[int, object]] = deque()
        self.stats = QueueStatistics()

    def push(self, timestamp: int, payload: object) -> None:
        if self.capacity is not None and len(self._entries) >= self.capacity:
            raise OverflowError(f"queue {self.name!r} overflow (capacity {self.capacity})")
        self._entries.append((timestamp, payload))
        self.stats.pushes += 1
        self.stats.max_depth = max(self.stats.max_depth, len(self._entries))

    def pop(self) -> tuple[int, object]:
        if not self._entries:
            self.stats.underruns += 1
            raise IndexError(f"queue {self.name!r} underrun")
        self.stats.pops += 1
        return self._entries.popleft()

    def peek(self) -> tuple[int, object] | None:
        return self._entries[0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    def is_empty(self) -> bool:
        return not self._entries

    def drain(self) -> list[tuple[int, object]]:
        """Pop everything, in order."""
        items = []
        while self._entries:
            items.append(self.pop())
        return items


class QueueSet:
    """A bank of per-channel queues with aggregate statistics."""

    def __init__(self, capacity: int | None = None):
        self.capacity = capacity
        self.queues: dict[str, OperationQueue] = {}

    def queue(self, name: str) -> OperationQueue:
        if name not in self.queues:
            self.queues[name] = OperationQueue(name, capacity=self.capacity)
        return self.queues[name]

    def push(self, channel: str, timestamp: int, payload: object) -> None:
        self.queue(channel).push(timestamp, payload)

    def total_depth(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def max_depth_seen(self) -> int:
        return max((q.stats.max_depth for q in self.queues.values()), default=0)

    def busiest_channel(self) -> str | None:
        if not self.queues:
            return None
        return max(self.queues.values(), key=lambda q: q.stats.pushes).name
