"""Quantum algorithm library.

The algorithm layer of the stack: canonical quantum kernels built on the
circuit IR, ready to be compiled by OpenQL and executed on QX or the
micro-architecture.  Includes the primitives the paper's accelerators are
built from — Grover search (genome sequencing), QAOA (optimisation),
randomised benchmarking (superconducting control stack) — plus reference
algorithms used in tests and benchmarks.
"""

from repro.algorithms.grover import GroverSearch, grover_circuit, optimal_grover_iterations
from repro.algorithms.qft import quantum_fourier_transform, inverse_quantum_fourier_transform
from repro.algorithms.deutsch_jozsa import DeutschJozsa
from repro.algorithms.bernstein_vazirani import BernsteinVazirani
from repro.algorithms.qaoa import QAOA, QAOAResult
from repro.algorithms.vqe import VQE, VQEResult
from repro.algorithms.randomized_benchmarking import RandomizedBenchmarking, RBResult
from repro.algorithms.shor import shor_factor, period_finding_classical
from repro.algorithms.phase_estimation import (
    estimate_phase,
    phase_estimation_circuit,
    quantum_counting,
    PhaseEstimationResult,
    CountingResult,
)

__all__ = [
    "estimate_phase",
    "phase_estimation_circuit",
    "quantum_counting",
    "PhaseEstimationResult",
    "CountingResult",
    "GroverSearch",
    "grover_circuit",
    "optimal_grover_iterations",
    "quantum_fourier_transform",
    "inverse_quantum_fourier_transform",
    "DeutschJozsa",
    "BernsteinVazirani",
    "QAOA",
    "QAOAResult",
    "VQE",
    "VQEResult",
    "RandomizedBenchmarking",
    "RBResult",
    "shor_factor",
    "period_finding_classical",
]
