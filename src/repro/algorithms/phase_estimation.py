"""Quantum phase estimation (QPE) and quantum counting.

Phase estimation is the primitive behind Shor's order finding and quantum
counting; quantum counting estimates the number of marked database entries
before a Grover search, which the genome-sequencing accelerator needs to
pick the right number of amplification iterations when the multiplicity of
the nearest match is unknown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.qx.simulator import QXSimulator


def controlled_unitary_gate(unitary: np.ndarray, power: int = 1, name: str = "cu") -> Gate:
    """Two-qubit controlled version of a single-qubit unitary raised to ``power``.

    Operand 0 is the control (most significant bit of the gate index).
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.shape != (2, 2):
        raise ValueError("controlled_unitary_gate expects a single-qubit unitary")
    powered = np.linalg.matrix_power(unitary, power)
    matrix = np.eye(4, dtype=complex)
    matrix[2:, 2:] = powered
    return Gate(name, 2, matrix, duration=40)


@dataclass
class PhaseEstimationResult:
    """Outcome of a phase-estimation run."""

    estimated_phase: float
    raw_value: int
    counting_qubits: int
    probability: float

    def resolution(self) -> float:
        return 1.0 / 2 ** self.counting_qubits


def phase_estimation_circuit(
    unitary: np.ndarray,
    counting_qubits: int,
    prepare_one: bool = True,
) -> Circuit:
    """QPE circuit for a single-qubit unitary whose eigenvector is |1> (or |0>).

    Layout: qubits ``0 .. counting_qubits - 1`` form the counting register
    (qubit 0 = least significant), the last qubit is the target register.
    """
    if counting_qubits < 1 or counting_qubits > 10:
        raise ValueError("counting register limited to 1..10 qubits")
    total = counting_qubits + 1
    target = counting_qubits
    circuit = Circuit(total, f"qpe_{counting_qubits}")
    if prepare_one:
        circuit.x(target)
    for qubit in range(counting_qubits):
        circuit.h(qubit)
    for qubit in range(counting_qubits):
        gate = controlled_unitary_gate(unitary, power=2 ** qubit, name=f"cu_pow{2 ** qubit}")
        circuit.apply(gate, qubit, target)
    # Inverse QFT on the counting register.
    from repro.core.circuit import qft_circuit

    iqft = qft_circuit(counting_qubits).inverse()
    for op in iqft.operations:
        circuit.append(op)
    for qubit in range(counting_qubits):
        circuit.measure(qubit)
    return circuit


def estimate_phase(
    unitary: np.ndarray,
    counting_qubits: int = 5,
    shots: int = 256,
    seed: int | np.random.SeedSequence | None = None,
) -> PhaseEstimationResult:
    """Estimate the eigenphase of ``unitary`` on its |1> eigenvector."""
    circuit = phase_estimation_circuit(unitary, counting_qubits)
    result = QXSimulator(seed=seed).run(circuit, shots=shots)
    best = result.most_frequent()
    raw = int(best, 2)
    return PhaseEstimationResult(
        estimated_phase=raw / 2 ** counting_qubits,
        raw_value=raw,
        counting_qubits=counting_qubits,
        probability=result.probability(best),
    )


# ---------------------------------------------------------------------- #
# Quantum counting
# ---------------------------------------------------------------------- #
@dataclass
class CountingResult:
    """Estimate of the number of marked entries in a database."""

    estimated_solutions: float
    true_phase: float
    estimated_phase: float
    counting_qubits: int

    def rounded(self) -> int:
        return int(round(self.estimated_solutions))


def quantum_counting(
    database_size: int,
    num_marked: int,
    counting_qubits: int = 8,
    seed: int | np.random.SeedSequence | None = None,
) -> CountingResult:
    """Estimate the number of marked entries via QPE on the Grover operator.

    The Grover iteration acts as a rotation by ``2 * theta`` in the
    two-dimensional marked/unmarked subspace, with ``sin^2(theta) = M / N``.
    Phase estimation of that rotation therefore reveals M.  The measurement
    distribution of the counting register is computed exactly (the same
    phase-estimation kernel used by the Shor implementation) and sampled.
    """
    if not 0 < num_marked <= database_size:
        raise ValueError("need 0 < num_marked <= database_size")
    rng = np.random.default_rng(seed)
    theta = math.asin(math.sqrt(num_marked / database_size))
    true_phase = 2.0 * theta / (2.0 * math.pi)

    dim = 2 ** counting_qubits
    k_values = np.arange(dim)
    # Exact QPE outcome distribution for a single eigenphase.
    delta = true_phase * dim - k_values
    numerator = np.sin(np.pi * delta)
    denominator = np.sin(np.pi * delta / dim)
    with np.errstate(divide="ignore", invalid="ignore"):
        amplitude = np.where(np.abs(denominator) < 1e-12, 1.0, numerator / (dim * denominator))
    probabilities = amplitude ** 2
    probabilities = probabilities / probabilities.sum()

    sample = int(rng.choice(dim, p=probabilities))
    estimated_phase = sample / dim
    estimated_theta = math.pi * estimated_phase
    estimated_m = database_size * math.sin(estimated_theta) ** 2
    return CountingResult(
        estimated_solutions=float(estimated_m),
        true_phase=true_phase,
        estimated_phase=estimated_phase,
        counting_qubits=counting_qubits,
    )
