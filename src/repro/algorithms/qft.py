"""Quantum Fourier transform kernels."""

from __future__ import annotations

import math

from repro.core.circuit import Circuit, qft_circuit


def quantum_fourier_transform(num_qubits: int, with_swaps: bool = True) -> Circuit:
    """QFT circuit implementing the DFT matrix in little-endian ordering."""
    return qft_circuit(num_qubits, with_swaps=with_swaps)


def inverse_quantum_fourier_transform(num_qubits: int, with_swaps: bool = True) -> Circuit:
    """Inverse QFT: the adjoint of :func:`quantum_fourier_transform`."""
    circuit = quantum_fourier_transform(num_qubits, with_swaps=with_swaps).inverse()
    circuit.name = f"iqft_{num_qubits}"
    return circuit


def phase_estimation_rotation_count(num_qubits: int) -> int:
    """Number of controlled rotations in an n-qubit QFT (n*(n-1)/2)."""
    return num_qubits * (num_qubits - 1) // 2


def approximate_qft(num_qubits: int, max_k: int = 4) -> Circuit:
    """Approximate QFT dropping controlled rotations smaller than 2*pi/2^max_k.

    The standard linear-depth approximation: rotations with k > ``max_k``
    contribute phases below the realistic-qubit error floor and can be
    omitted, cutting the two-qubit gate count from O(n^2) to O(n * max_k).
    """
    circuit = Circuit(num_qubits, f"aqft_{num_qubits}")
    for target in reversed(range(num_qubits)):
        circuit.h(target)
        for offset, control in enumerate(reversed(range(target)), start=2):
            if offset > max_k:
                continue
            circuit.cr(control, target, 2.0 * math.pi / (2 ** offset))
    for qubit in range(num_qubits // 2):
        circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit
