"""Bernstein-Vazirani algorithm: recover a hidden bit-string in one query."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.qx.simulator import QXSimulator


@dataclass
class BernsteinVaziraniResult:
    recovered: int
    secret: int
    success: bool
    oracle_queries: int = 1


class BernsteinVazirani:
    """Find the secret string s of f(x) = s.x (mod 2) with one oracle query."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1 or num_qubits > 20:
            raise ValueError("BernsteinVazirani supports 1 to 20 qubits")
        self.num_qubits = num_qubits

    def circuit(self, secret: int) -> Circuit:
        """H-layer, phase oracle encoding the secret, H-layer, measure."""
        if not 0 <= secret < 2 ** self.num_qubits:
            raise ValueError("secret out of range")
        circuit = Circuit(self.num_qubits, f"bv_{self.num_qubits}")
        for qubit in range(self.num_qubits):
            circuit.h(qubit)
        for qubit in range(self.num_qubits):
            if (secret >> qubit) & 1:
                circuit.z(qubit)
        for qubit in range(self.num_qubits):
            circuit.h(qubit)
        for qubit in range(self.num_qubits):
            circuit.measure(qubit)
        return circuit

    def run(self, secret: int, seed: int | None = None) -> BernsteinVaziraniResult:
        result = QXSimulator(seed=seed).run(self.circuit(secret), shots=1)
        bits = result.most_frequent()
        # Bit-string is printed with qubit 0 rightmost.
        recovered = int(bits, 2)
        return BernsteinVaziraniResult(
            recovered=recovered, secret=secret, success=(recovered == secret)
        )

    @staticmethod
    def classical_queries(num_qubits: int) -> int:
        """A classical algorithm needs n queries (one per bit)."""
        return num_qubits
