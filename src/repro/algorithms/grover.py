"""Grover's unstructured search.

"The quantum search primitive (Grover's search) itself is provably optimal
over any other classical or quantum unstructured search algorithm"
(Section 2.3).  The implementation provides

* a gate-level circuit construction (phase oracle + diffusion operator)
  suitable for compilation through the OpenQL stack, and
* an efficient statevector-level implementation used for larger databases
  (the genome-sequencing accelerator) where building the multi-controlled
  gates explicitly would be wasteful.

The oracle-query counting (quadratic speedup, experiment E10) is exposed via
:func:`optimal_grover_iterations` and :class:`GroverSearch.query_count`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.circuit import Circuit


def optimal_grover_iterations(database_size: int, num_solutions: int = 1) -> int:
    """Optimal number of Grover iterations ~ (pi/4) sqrt(N / M)."""
    if database_size < 1 or num_solutions < 1 or num_solutions > database_size:
        raise ValueError("need 1 <= num_solutions <= database_size")
    if num_solutions * 4 >= database_size:
        return 1
    angle = math.asin(math.sqrt(num_solutions / database_size))
    return max(1, int(round(math.pi / (4.0 * angle) - 0.5)))


def classical_search_queries(database_size: int, num_solutions: int = 1) -> float:
    """Expected oracle queries of classical exhaustive search."""
    return (database_size + 1) / (num_solutions + 1)


# ---------------------------------------------------------------------- #
# Gate-level construction
# ---------------------------------------------------------------------- #
def _multi_controlled_z(circuit: Circuit, qubits: list[int]) -> None:
    """Apply a Z gate controlled on all listed qubits being |1>.

    Uses the textbook recursive construction with Toffoli gates for up to
    three qubits and falls back to the phase-oracle trick (H-sandwiched
    multi-controlled X built from Toffolis and a work-free relative-phase
    cascade) for more qubits.  Only used for small gate-level demos; the
    statevector path handles large registers.
    """
    if len(qubits) == 1:
        circuit.z(qubits[0])
        return
    if len(qubits) == 2:
        circuit.cz(qubits[0], qubits[1])
        return
    if len(qubits) == 3:
        # CCZ = H on target, Toffoli, H on target.
        a, b, c = qubits
        circuit.h(c)
        circuit.toffoli(a, b, c)
        circuit.h(c)
        return
    raise ValueError(
        "gate-level Grover supports at most 3 qubits per oracle; use GroverSearch "
        "for larger databases"
    )


def grover_circuit(num_qubits: int, marked_state: int, iterations: int | None = None) -> Circuit:
    """Gate-level Grover circuit marking one computational basis state.

    Limited to 3 qubits (8-entry database) because the multi-controlled
    phase is built from Toffoli gates without ancillas; larger searches use
    :class:`GroverSearch`.
    """
    if not 1 <= num_qubits <= 3:
        raise ValueError("grover_circuit supports 1 to 3 qubits")
    if not 0 <= marked_state < 2 ** num_qubits:
        raise ValueError("marked state out of range")
    if iterations is None:
        iterations = optimal_grover_iterations(2 ** num_qubits)
    qubits = list(range(num_qubits))
    circuit = Circuit(num_qubits, f"grover_{num_qubits}q")
    for q in qubits:
        circuit.h(q)
    for _ in range(iterations):
        # Phase oracle: flip the sign of |marked_state>.
        zeros = [q for q in qubits if not (marked_state >> q) & 1]
        for q in zeros:
            circuit.x(q)
        _multi_controlled_z(circuit, qubits)
        for q in zeros:
            circuit.x(q)
        # Diffusion operator: inversion about the mean.
        for q in qubits:
            circuit.h(q)
            circuit.x(q)
        _multi_controlled_z(circuit, qubits)
        for q in qubits:
            circuit.x(q)
            circuit.h(q)
    return circuit


# ---------------------------------------------------------------------- #
# Statevector-level implementation
# ---------------------------------------------------------------------- #
@dataclass
class GroverResult:
    """Outcome of a Grover search run."""

    best_index: int
    success_probability: float
    iterations: int
    oracle_queries: int
    probabilities: np.ndarray


class GroverSearch:
    """Amplitude-amplification search over an N-entry database."""

    def __init__(self, num_qubits: int, rng: np.random.Generator | None = None):
        if num_qubits < 1 or num_qubits > 24:
            raise ValueError("GroverSearch supports 1 to 24 address qubits")
        self.num_qubits = num_qubits
        self.database_size = 2 ** num_qubits
        self.rng = rng if rng is not None else np.random.default_rng()
        self.oracle_queries = 0

    # ------------------------------------------------------------------ #
    def run(
        self,
        marked: set[int] | list[int] | int,
        iterations: int | None = None,
        initial_amplitudes: np.ndarray | None = None,
    ) -> GroverResult:
        """Amplify the amplitude of the marked indices and return statistics."""
        marked_set = {marked} if isinstance(marked, int) else set(marked)
        if not marked_set:
            raise ValueError("need at least one marked entry")
        for index in marked_set:
            if not 0 <= index < self.database_size:
                raise IndexError(f"marked index {index} out of range")
        if iterations is None:
            iterations = optimal_grover_iterations(self.database_size, len(marked_set))

        if initial_amplitudes is None:
            state = np.full(
                self.database_size, 1.0 / math.sqrt(self.database_size), dtype=complex
            )
        else:
            state = np.asarray(initial_amplitudes, dtype=complex)
            state = state / np.linalg.norm(state)

        marked_indices = np.array(sorted(marked_set))
        self.oracle_queries = 0
        for _ in range(iterations):
            # Oracle: phase flip on marked entries.
            state[marked_indices] *= -1.0
            self.oracle_queries += 1
            # Diffusion: reflect about the uniform superposition.
            mean = np.mean(state)
            state = 2.0 * mean - state

        probabilities = np.abs(state) ** 2
        success = float(np.sum(probabilities[marked_indices]))
        best = int(np.argmax(probabilities))
        return GroverResult(
            best_index=best,
            success_probability=success,
            iterations=iterations,
            oracle_queries=self.oracle_queries,
            probabilities=probabilities,
        )

    def sample(self, result: GroverResult, shots: int = 1) -> list[int]:
        """Sample measurement outcomes from the amplified distribution."""
        probs = result.probabilities / result.probabilities.sum()
        return [int(v) for v in self.rng.choice(self.database_size, size=shots, p=probs)]

    def query_count(self, num_solutions: int = 1) -> int:
        """Oracle queries Grover needs for this database size."""
        return optimal_grover_iterations(self.database_size, num_solutions)
