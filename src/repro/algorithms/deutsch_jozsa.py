"""Deutsch-Jozsa algorithm.

Decides whether a promise function f: {0,1}^n -> {0,1} is constant or
balanced with a single oracle query; classically 2^(n-1) + 1 queries are
needed in the worst case.  Used as a stack smoke-test kernel and in the
compiler benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.qx.simulator import QXSimulator


@dataclass
class DeutschJozsaResult:
    is_constant: bool
    measured_bits: str
    oracle_queries: int = 1


class DeutschJozsa:
    """Deutsch-Jozsa with phase oracles for constant / balanced functions."""

    def __init__(self, num_qubits: int):
        if num_qubits < 1 or num_qubits > 16:
            raise ValueError("DeutschJozsa supports 1 to 16 input qubits")
        self.num_qubits = num_qubits

    # ------------------------------------------------------------------ #
    def circuit(self, oracle: str = "balanced", mask: int | None = None) -> Circuit:
        """Build the algorithm circuit with a built-in oracle.

        ``oracle='constant'`` uses f(x) = 0; ``oracle='balanced'`` uses
        f(x) = parity of (x & mask), a standard balanced family.
        """
        if oracle not in ("constant", "balanced"):
            raise ValueError("oracle must be 'constant' or 'balanced'")
        if mask is None:
            mask = (1 << self.num_qubits) - 1
        circuit = Circuit(self.num_qubits, f"dj_{oracle}_{self.num_qubits}")
        for qubit in range(self.num_qubits):
            circuit.h(qubit)
        if oracle == "balanced":
            # Phase oracle for f(x) = parity(x & mask): Z on each masked qubit.
            for qubit in range(self.num_qubits):
                if (mask >> qubit) & 1:
                    circuit.z(qubit)
        for qubit in range(self.num_qubits):
            circuit.h(qubit)
        for qubit in range(self.num_qubits):
            circuit.measure(qubit)
        return circuit

    def run(self, oracle: str = "balanced", mask: int | None = None, seed: int | None = None) -> DeutschJozsaResult:
        """Execute on the QX simulator and interpret the measurement."""
        circuit = self.circuit(oracle, mask)
        result = QXSimulator(seed=seed).run(circuit, shots=1)
        bits = result.most_frequent()
        return DeutschJozsaResult(is_constant=(set(bits) == {"0"}), measured_bits=bits)

    @staticmethod
    def classical_worst_case_queries(num_qubits: int) -> int:
        """Deterministic classical query complexity: 2^(n-1) + 1."""
        return 2 ** (num_qubits - 1) + 1
