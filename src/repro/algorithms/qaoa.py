"""Quantum Approximate Optimisation Algorithm (QAOA).

The gate-model route to QUBO problems in Section 3.3: "QAOA is a variational
algorithm where the classical optimiser specifies a low-depth quantum
circuit to find the lowest energy configuration of a problem Hamiltonian."
The implementation is a full hybrid quantum-classical loop: the parameterised
circuit is built on the circuit IR, executed on the QX simulator, and the
parameters are optimised by a classical optimiser (scipy or a built-in
coordinate search) running in the host CPU.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from repro.annealing.ising import IsingModel
from repro.annealing.qubo import QUBO
from repro.core.circuit import Circuit
from repro.qx.statevector import StateVector


@dataclass
class QAOAResult:
    """Outcome of a QAOA optimisation run."""

    best_bitstring: np.ndarray
    best_energy: float
    expectation: float
    parameters: np.ndarray
    iterations: int
    circuit_executions: int
    history: list[float] = field(default_factory=list)
    #: Most probable computational basis states of the final circuit, as
    #: (bitstring array, probability) pairs sorted by decreasing probability.
    top_bitstrings: list[tuple[np.ndarray, float]] = field(default_factory=list)

    def approximation_ratio(self, optimal_energy: float, worst_energy: float) -> float:
        """Quality of the expectation relative to the exact optimum."""
        if abs(worst_energy - optimal_energy) < 1e-12:
            return 1.0
        return (worst_energy - self.expectation) / (worst_energy - optimal_energy)


class QAOA:
    """Depth-p QAOA for Ising / QUBO Hamiltonians."""

    def __init__(
        self,
        depth: int = 1,
        optimizer: str = "cobyla",
        max_iterations: int = 150,
        shots: int | None = None,
        seed: int | np.random.SeedSequence | None = None,
    ):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if optimizer not in ("cobyla", "nelder-mead", "grid"):
            raise ValueError("optimizer must be 'cobyla', 'nelder-mead' or 'grid'")
        self.depth = depth
        self.optimizer = optimizer
        self.max_iterations = max_iterations
        self.shots = shots
        self.rng = np.random.default_rng(seed)
        self._executions = 0

    # ------------------------------------------------------------------ #
    # Circuit construction
    # ------------------------------------------------------------------ #
    def circuit(self, model: IsingModel, gammas: np.ndarray, betas: np.ndarray) -> Circuit:
        """Build the depth-p QAOA circuit for an Ising Hamiltonian."""
        n = model.num_spins
        circuit = Circuit(n, f"qaoa_p{self.depth}")
        for qubit in range(n):
            circuit.h(qubit)
        for layer in range(self.depth):
            gamma = float(gammas[layer])
            beta = float(betas[layer])
            # Problem unitary: exp(-i gamma H_problem).
            for i in range(n):
                if model.h[i] != 0.0:
                    circuit.rz(i, 2.0 * gamma * model.h[i])
            for (i, j) in model.edges():
                weight = model.couplings[i, j]
                circuit.cnot(i, j)
                circuit.rz(j, 2.0 * gamma * weight)
                circuit.cnot(i, j)
            # Mixer unitary: exp(-i beta sum X).
            for qubit in range(n):
                circuit.rx(qubit, 2.0 * beta)
        return circuit

    # ------------------------------------------------------------------ #
    # Expectation evaluation
    # ------------------------------------------------------------------ #
    def _expectation(self, model: IsingModel, params: np.ndarray) -> float:
        gammas = params[: self.depth]
        betas = params[self.depth :]
        circuit = self.circuit(model, gammas, betas)
        state = StateVector(model.num_spins, rng=self.rng)
        for op in circuit.gate_operations():
            state.apply_gate(op.gate.matrix, op.qubits)
        self._executions += 1
        probabilities = state.probabilities()
        if self.shots is not None:
            sampled = self.rng.choice(probabilities.size, size=self.shots, p=probabilities)
            counts = np.bincount(sampled, minlength=probabilities.size)
            probabilities = counts / self.shots
        energies = _all_energies(model)
        return float(np.dot(probabilities, energies))

    # ------------------------------------------------------------------ #
    def solve_ising(self, model: IsingModel) -> QAOAResult:
        """Run the hybrid optimisation loop and return the best sample."""
        if model.num_spins > 20:
            raise ValueError("QAOA statevector evaluation limited to 20 spins")
        self._executions = 0
        history: list[float] = []

        def objective(params: np.ndarray) -> float:
            value = self._expectation(model, np.asarray(params))
            history.append(value)
            return value

        initial = np.concatenate(
            [
                self.rng.uniform(0.1, math.pi / 2, size=self.depth),
                self.rng.uniform(0.1, math.pi / 4, size=self.depth),
            ]
        )
        if self.optimizer == "grid" or self.depth == 1 and self.optimizer == "grid":
            best_params, best_value = self._grid_search(objective)
            iterations = len(history)
        else:
            method = "COBYLA" if self.optimizer == "cobyla" else "Nelder-Mead"
            result = optimize.minimize(
                objective,
                initial,
                method=method,
                options={"maxiter": self.max_iterations},
            )
            best_params, best_value = result.x, float(result.fun)
            iterations = int(result.get("nit", len(history)))

        # Sample the final circuit for the best bit-string.
        gammas = best_params[: self.depth]
        betas = best_params[self.depth :]
        circuit = self.circuit(model, np.asarray(gammas), np.asarray(betas))
        state = StateVector(model.num_spins, rng=self.rng)
        for op in circuit.gate_operations():
            state.apply_gate(op.gate.matrix, op.qubits)
        probabilities = state.probabilities()
        energies = _all_energies(model)
        # Among high-probability states pick the lowest energy.
        threshold = probabilities.max() * 0.05
        candidates = np.nonzero(probabilities >= threshold)[0]
        best_index = int(candidates[np.argmin(energies[candidates])])
        bitstring = np.array(
            [(best_index >> q) & 1 for q in range(model.num_spins)], dtype=int
        )
        spins = 2 * bitstring - 1
        top_order = np.argsort(probabilities)[::-1][:64]
        top_bitstrings = [
            (
                np.array([(int(idx) >> q) & 1 for q in range(model.num_spins)], dtype=int),
                float(probabilities[idx]),
            )
            for idx in top_order
            if probabilities[idx] > 1e-9
        ]
        return QAOAResult(
            best_bitstring=bitstring,
            best_energy=float(model.energy(spins)),
            expectation=float(best_value),
            parameters=np.asarray(best_params),
            iterations=iterations,
            circuit_executions=self._executions,
            history=history,
            top_bitstrings=top_bitstrings,
        )

    def solve_qubo(self, qubo: QUBO) -> QAOAResult:
        """Solve a QUBO by conversion to Ising (energies reported in QUBO units)."""
        ising, offset = qubo.to_ising()
        result = self.solve_ising(ising)
        result.best_energy += offset
        result.expectation += offset
        return result

    # ------------------------------------------------------------------ #
    def _grid_search(self, objective, resolution: int = 12):
        """Coarse grid search over (gamma, beta) for depth-1 QAOA."""
        best_value = np.inf
        best_params = np.zeros(2 * self.depth)
        gammas = np.linspace(0.05, math.pi, resolution)
        betas = np.linspace(0.05, math.pi / 2, resolution)
        for gamma in gammas:
            for beta in betas:
                params = np.array([gamma] * self.depth + [beta] * self.depth)
                value = objective(params)
                if value < best_value:
                    best_value = value
                    best_params = params
        return best_params, float(best_value)


def _all_energies(model: IsingModel) -> np.ndarray:
    """Ising energy of every computational basis state (qubit q -> spin via bit q)."""
    n = model.num_spins
    indices = np.arange(2 ** n)
    spins = np.empty((2 ** n, n))
    for qubit in range(n):
        spins[:, qubit] = 2.0 * ((indices >> qubit) & 1) - 1.0
    linear = spins @ model.h
    quadratic = np.einsum("bi,ij,bj->b", spins, model.couplings, spins)
    return linear + quadratic
