"""Variational Quantum Eigensolver (VQE).

A second hybrid quantum-classical kernel for the near-term accelerator model
of Section 3.3: a hardware-efficient ansatz (layers of Ry rotations and a
CNOT entangler ladder) is optimised to minimise the expectation value of a
Pauli-string Hamiltonian.  Used in the hybrid-accelerator example and the
optimisation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from repro.core.circuit import Circuit
from repro.qx.statevector import StateVector


@dataclass
class PauliTerm:
    """A weighted Pauli string, e.g. 0.5 * Z0 Z1."""

    coefficient: float
    paulis: dict[int, str]

    def __post_init__(self) -> None:
        for qubit, pauli in self.paulis.items():
            if pauli not in ("x", "y", "z"):
                raise ValueError(f"invalid Pauli {pauli!r} on qubit {qubit}")


@dataclass
class VQEResult:
    energy: float
    parameters: np.ndarray
    iterations: int
    circuit_executions: int
    history: list[float] = field(default_factory=list)


_PAULI_MATRICES = {
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class VQE:
    """Hardware-efficient-ansatz VQE with an exact expectation evaluator."""

    def __init__(
        self,
        num_qubits: int,
        layers: int = 2,
        max_iterations: int = 200,
        seed: int | np.random.SeedSequence | None = None,
    ):
        if num_qubits < 1 or num_qubits > 12:
            raise ValueError("VQE supports 1 to 12 qubits")
        self.num_qubits = num_qubits
        self.layers = layers
        self.max_iterations = max_iterations
        self.rng = np.random.default_rng(seed)
        self._executions = 0

    @property
    def num_parameters(self) -> int:
        return self.num_qubits * (self.layers + 1)

    # ------------------------------------------------------------------ #
    def ansatz(self, parameters: np.ndarray) -> Circuit:
        """Hardware-efficient ansatz: Ry layers separated by CNOT ladders."""
        parameters = np.asarray(parameters, dtype=float)
        if parameters.size != self.num_parameters:
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {parameters.size}"
            )
        circuit = Circuit(self.num_qubits, f"vqe_ansatz_l{self.layers}")
        index = 0
        for qubit in range(self.num_qubits):
            circuit.ry(qubit, float(parameters[index]))
            index += 1
        for _ in range(self.layers):
            for qubit in range(self.num_qubits - 1):
                circuit.cnot(qubit, qubit + 1)
            for qubit in range(self.num_qubits):
                circuit.ry(qubit, float(parameters[index]))
                index += 1
        return circuit

    # ------------------------------------------------------------------ #
    def expectation(self, hamiltonian: list[PauliTerm], parameters: np.ndarray) -> float:
        """<psi(theta)| H |psi(theta)> evaluated on the statevector."""
        circuit = self.ansatz(parameters)
        state = StateVector(self.num_qubits, rng=self.rng)
        for op in circuit.gate_operations():
            state.apply_gate(op.gate.matrix, op.qubits)
        self._executions += 1
        psi = state.amplitudes
        total = 0.0
        for term in hamiltonian:
            phi = psi.copy().reshape([2] * self.num_qubits)
            for qubit, pauli in term.paulis.items():
                axis = self.num_qubits - 1 - qubit
                phi = np.moveaxis(phi, axis, 0)
                phi = np.tensordot(_PAULI_MATRICES[pauli], phi, axes=(1, 0))
                phi = np.moveaxis(phi, 0, axis)
            total += term.coefficient * float(np.real(np.vdot(psi, phi.reshape(-1))))
        return total

    def minimize(self, hamiltonian: list[PauliTerm]) -> VQEResult:
        """Run the classical optimisation loop."""
        self._executions = 0
        history: list[float] = []

        def objective(params: np.ndarray) -> float:
            value = self.expectation(hamiltonian, params)
            history.append(value)
            return value

        initial = self.rng.uniform(-0.5, 0.5, size=self.num_parameters)
        result = optimize.minimize(
            objective,
            initial,
            method="COBYLA",
            options={"maxiter": self.max_iterations},
        )
        return VQEResult(
            energy=float(result.fun),
            parameters=np.asarray(result.x),
            iterations=int(result.get("nit", len(history))),
            circuit_executions=self._executions,
            history=history,
        )


def ising_hamiltonian(h: np.ndarray, couplings: np.ndarray) -> list[PauliTerm]:
    """Pauli-term representation of an Ising Hamiltonian (for VQE)."""
    terms: list[PauliTerm] = []
    n = len(h)
    for i in range(n):
        if h[i] != 0.0:
            terms.append(PauliTerm(float(h[i]), {i: "z"}))
    for i in range(n):
        for j in range(i + 1, n):
            if couplings[i, j] != 0.0:
                terms.append(PauliTerm(float(couplings[i, j]), {i: "z", j: "z"}))
    return terms
