"""Randomised benchmarking (RB).

The experimental kernel of the superconducting full stack (Section 3.1):
"We have been focusing on randomised bench-marking experiments for one or
two qubits which was written in OpenQL."  A random sequence of m Clifford
gates followed by the recovery Clifford ideally returns the qubit to |0>;
with realistic qubits the survival probability decays as A * p^m + B, and
the decay constant p yields the average error per Clifford.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.circuit import Circuit
from repro.qx.error_models import ErrorModel, NoError
from repro.qx.simulator import QXSimulator

#: The 24 single-qubit Cliffords as pulse sequences over {X, Y, +/-90-degree
#: X and Y rotations} — the standard decomposition used by superconducting
#: control software (applied left to right in circuit order).
_CLIFFORD_SEQUENCES: list[list[str]] = [
    [],                        # 0: I
    ["x"],                     # 1: X
    ["y"],                     # 2: Y
    ["y", "x"],                # 3: Z (up to phase)
    ["x90", "y90"],            # 4
    ["x90", "my90"],           # 5
    ["mx90", "y90"],           # 6
    ["mx90", "my90"],          # 7
    ["y90", "x90"],            # 8
    ["y90", "mx90"],           # 9
    ["my90", "x90"],           # 10
    ["my90", "mx90"],          # 11
    ["x90"],                   # 12
    ["mx90"],                  # 13
    ["y90"],                   # 14
    ["my90"],                  # 15
    ["mx90", "y90", "x90"],    # 16
    ["mx90", "my90", "x90"],   # 17
    ["x", "y90"],              # 18
    ["x", "my90"],             # 19
    ["y", "x90"],              # 20
    ["y", "mx90"],             # 21
    ["x90", "y90", "x90"],     # 22
    ["mx90", "y90", "mx90"],   # 23
]


@dataclass
class RBResult:
    """Survival-probability decay curve and fitted error per Clifford."""

    sequence_lengths: list[int]
    survival_probabilities: list[float]
    decay_constant: float
    error_per_clifford: float
    amplitude: float = 0.0
    offset: float = 0.0
    shots_per_point: int = 0

    def as_rows(self) -> list[tuple[int, float]]:
        return list(zip(self.sequence_lengths, self.survival_probabilities, strict=True))


class RandomizedBenchmarking:
    """Single-qubit randomised benchmarking on the QX simulator."""

    def __init__(
        self,
        error_model: ErrorModel | None = None,
        seed: int | np.random.SeedSequence | None = None,
    ):
        self.error_model = error_model or NoError()
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def clifford_circuit(self, index: int, qubit: int, circuit: Circuit) -> None:
        """Append Clifford ``index`` (0..23) to a circuit."""
        for name in _CLIFFORD_SEQUENCES[index % len(_CLIFFORD_SEQUENCES)]:
            circuit.add_gate(name, qubit)

    def sequence_circuit(self, length: int, qubit: int = 0, num_qubits: int = 1) -> Circuit:
        """Random RB sequence of ``length`` Cliffords plus the recovery Clifford.

        The recovery element is found by searching the Clifford table for the
        element equal (up to global phase) to the inverse of the accumulated
        unitary, so the emitted circuit contains native pulses only and can be
        compiled and executed by the hardware-like platforms unchanged.
        """
        circuit = Circuit(num_qubits, f"rb_m{length}")
        unitary = np.eye(2, dtype=complex)
        for _ in range(length):
            index = int(self.rng.integers(len(_CLIFFORD_SEQUENCES)))
            self.clifford_circuit(index, qubit, circuit)
            unitary = _sequence_unitary(_CLIFFORD_SEQUENCES[index]) @ unitary
        recovery_index = _inverse_clifford_index(unitary)
        self.clifford_circuit(recovery_index, qubit, circuit)
        circuit.measure(qubit)
        return circuit

    # ------------------------------------------------------------------ #
    def run(
        self,
        sequence_lengths: list[int] | None = None,
        shots: int = 200,
        sequences_per_length: int = 5,
    ) -> RBResult:
        """Measure the survival probability versus sequence length and fit it."""
        lengths = sequence_lengths or [1, 2, 4, 8, 16, 32]
        survival: list[float] = []
        for length in lengths:
            probabilities = []
            for _ in range(sequences_per_length):
                circuit = self.sequence_circuit(length)
                simulator = QXSimulator(
                    error_model=self.error_model,
                    seed=int(self.rng.integers(2 ** 31)),
                )
                result = simulator.run(circuit, shots=shots)
                probabilities.append(result.counts.get("0", 0) / shots)
            survival.append(float(np.mean(probabilities)))
        decay, amplitude, offset = _fit_exponential(lengths, survival)
        error_per_clifford = (1.0 - decay) / 2.0
        return RBResult(
            sequence_lengths=list(lengths),
            survival_probabilities=survival,
            decay_constant=decay,
            error_per_clifford=error_per_clifford,
            amplitude=amplitude,
            offset=offset,
            shots_per_point=shots,
        )


def _sequence_unitary(names: list[str]) -> np.ndarray:
    from repro.core.gates import build_gate

    unitary = np.eye(2, dtype=complex)
    for name in names:
        unitary = build_gate(name).matrix @ unitary
    return unitary


def _inverse_clifford_index(unitary: np.ndarray) -> int:
    """Index of the Clifford equal to the inverse of ``unitary`` up to phase."""
    target = unitary.conj().T
    for index, sequence in enumerate(_CLIFFORD_SEQUENCES):
        candidate = _sequence_unitary(sequence)
        overlap = abs(np.trace(candidate.conj().T @ target)) / 2.0
        if overlap > 1.0 - 1e-9:
            return index
    raise RuntimeError("accumulated RB unitary is not a Clifford (table inconsistent)")


def _fit_exponential(lengths: list[int], survival: list[float]) -> tuple[float, float, float]:
    """Fit survival = A * p^m + B; returns (p, A, B).

    Uses a log-linear fit on (survival - B) with B fixed to 0.5 (the fully
    depolarised limit), falling back to a robust two-point estimate when the
    data is too flat or too noisy for the fit.
    """
    lengths_arr = np.asarray(lengths, dtype=float)
    survival_arr = np.asarray(survival, dtype=float)
    offset = 0.5
    shifted = survival_arr - offset
    positive = shifted > 1e-6
    if np.count_nonzero(positive) >= 2:
        coeffs = np.polyfit(lengths_arr[positive], np.log(shifted[positive]), 1)
        decay = float(np.exp(coeffs[0]))
        amplitude = float(np.exp(coeffs[1]))
    else:
        decay = 0.0
        amplitude = 0.5
    decay = min(max(decay, 0.0), 1.0)
    return decay, amplitude, offset
