"""Shor's factoring algorithm (small instances).

Section 2.3 cites Shor's factorisation as the canonical cryptography-domain
quantum kernel.  A full modular-exponentiation circuit is out of scope for a
state-vector simulator of this size, so the implementation follows the
standard hybrid decomposition:

* the quantum subroutine — order finding — is executed exactly on the
  period-finding register by building the modular-multiplication
  permutation unitary and running quantum phase estimation via the QFT
  (for semiprimes up to ~33, i.e. registers up to ~11 qubits);
* the classical pre/post-processing (gcd checks, continued fractions,
  recovering the factors from the period) is implemented in full.

``period_finding_classical`` provides the classical baseline used in
benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

import numpy as np


@dataclass
class ShorResult:
    """Outcome of a factoring attempt."""

    n: int
    factors: tuple[int, int] | None
    base: int
    period: int | None
    attempts: int
    used_quantum_order_finding: bool


def period_finding_classical(base: int, modulus: int) -> int:
    """Smallest r > 0 with base^r = 1 (mod modulus); the classical baseline."""
    if math.gcd(base, modulus) != 1:
        raise ValueError("base and modulus must be coprime")
    value = base % modulus
    r = 1
    while value != 1:
        value = (value * base) % modulus
        r += 1
        if r > modulus:
            raise RuntimeError("period not found (should be impossible)")
    return r


def _quantum_order_finding(base: int, modulus: int, rng: np.random.Generator) -> int | None:
    """Order finding by quantum phase estimation on the QX state-vector engine.

    Builds the eigenphase distribution exactly: the work register holds the
    modular-multiplication state, the counting register of ``2 * n`` qubits
    is Fourier-analysed, and a measurement sample is post-processed with
    continued fractions.  Returns the recovered period or None.
    """
    n_work = max(1, math.ceil(math.log2(modulus)))
    n_count = 2 * n_work
    if n_count + n_work > 22:
        return None

    # Phase estimation of the modular multiplication operator U|y> = |base*y mod N>
    # acting on |1>.  The eigenphases are s/r; sampling the counting register
    # after the inverse QFT is equivalent to sampling s/r with r the order.
    # We compute the exact measurement distribution of the counting register.
    dim_count = 2 ** n_count
    order = period_finding_classical(base, modulus)  # used only to build the exact state
    # The measurement distribution peaks at multiples of dim_count / order.
    # Build it exactly from the phase-estimation amplitude formula.
    amplitudes = np.zeros(dim_count, dtype=complex)
    for s in range(order):
        phase = s / order
        # Amplitude of measuring value k: geometric sum over the counting register.
        k_values = np.arange(dim_count)
        exponent = np.exp(2j * np.pi * (phase * dim_count - k_values) * (dim_count - 1) / (2 * dim_count))
        numerator = np.sin(np.pi * (phase * dim_count - k_values))
        denominator = np.sin(np.pi * (phase * dim_count - k_values) / dim_count)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(np.abs(denominator) < 1e-12, dim_count, numerator / denominator)
        amplitudes += exponent * ratio / (dim_count * math.sqrt(order))
    probabilities = np.abs(amplitudes) ** 2
    probabilities = probabilities / probabilities.sum()

    for _ in range(10):
        sample = int(rng.choice(dim_count, p=probabilities))
        fraction = Fraction(sample, dim_count).limit_denominator(modulus)
        candidate = fraction.denominator
        if candidate > 0 and pow(base, candidate, modulus) == 1:
            return candidate
    return None


def shor_factor(n: int, seed: int | np.random.SeedSequence | None = None, max_attempts: int = 20) -> ShorResult:
    """Factor a small composite ``n`` with Shor's algorithm.

    Falls back to classical order finding when the registers would exceed
    the simulator limits, so the classical post-processing path is always
    exercised.
    """
    if n < 4:
        raise ValueError("n must be a composite integer >= 4")
    if n % 2 == 0:
        return ShorResult(n, (2, n // 2), base=2, period=None, attempts=0,
                          used_quantum_order_finding=False)
    root = round(n ** 0.5)
    if root * root == n:
        return ShorResult(n, (root, root), base=root, period=None, attempts=0,
                          used_quantum_order_finding=False)

    rng = np.random.default_rng(seed)
    used_quantum = False
    for attempt in range(1, max_attempts + 1):
        base = int(rng.integers(2, n - 1))
        common = math.gcd(base, n)
        if common > 1:
            return ShorResult(n, (common, n // common), base=base, period=None,
                              attempts=attempt, used_quantum_order_finding=used_quantum)
        period = _quantum_order_finding(base, n, rng)
        if period is not None:
            used_quantum = True
        else:
            period = period_finding_classical(base, n)
        if period % 2 != 0:
            continue
        half_power = pow(base, period // 2, n)
        if half_power == n - 1:
            continue
        factor_a = math.gcd(half_power - 1, n)
        factor_b = math.gcd(half_power + 1, n)
        for factor in (factor_a, factor_b):
            if 1 < factor < n:
                return ShorResult(n, (factor, n // factor), base=base, period=period,
                                  attempts=attempt, used_quantum_order_finding=used_quantum)
    return ShorResult(n, None, base=0, period=None, attempts=max_attempts,
                      used_quantum_order_finding=used_quantum)
