"""Travelling Salesman Problem optimisation accelerator (Section 3.3, Figure 9).

The TSP is the paper's worked QUBO use-case: a route-planning instance over
four Dutch cities is reduced to a 16-variable QUBO, solved by enumeration
(optimal cost 1.42), by QAOA on the gate model, and by (simulated) quantum
annealing; the embedding capacity of Chimera versus fully connected hardware
bounds how many cities each machine can handle.
"""

from repro.apps.tsp.tsp import TSPInstance, netherlands_tsp, random_tsp
from repro.apps.tsp.tsp_qubo import tsp_to_qubo, decode_tour, tour_is_valid
from repro.apps.tsp.solvers import (
    brute_force_tsp,
    nearest_neighbour_tsp,
    two_opt_tsp,
    monte_carlo_tsp,
    solve_tsp_with_annealer,
    solve_tsp_with_qaoa,
)

__all__ = [
    "TSPInstance",
    "netherlands_tsp",
    "random_tsp",
    "tsp_to_qubo",
    "decode_tour",
    "tour_is_valid",
    "brute_force_tsp",
    "nearest_neighbour_tsp",
    "two_opt_tsp",
    "monte_carlo_tsp",
    "solve_tsp_with_annealer",
    "solve_tsp_with_qaoa",
]
