"""TSP -> QUBO reduction (Section 3.3).

Variables ``x[(c, t)]`` indicate that city ``c`` is visited at time slot
``t``; there are N^2 of them ("We need 16 qubits to encode the example TSP
into a QUBO", and "the amount of qubits needed to solve the problem grows as
N^2").  The QUBO interactions follow the paper's four categories:

  (i)   every node must be assigned (reward for assigning each city once),
  (ii)  the same node assigned to two different time slots is penalised,
  (iii) the same time slot assigned to two different nodes is penalised,
  (iv)  the cost of the edge between consecutive time slots is added.
"""

from __future__ import annotations

import numpy as np

from repro.annealing.qubo import QUBO
from repro.apps.tsp.tsp import TSPInstance


def variable_index(city: int, time: int, num_cities: int) -> int:
    """Linear index of x[(city, time)]."""
    return city * num_cities + time


def tsp_to_qubo(instance: TSPInstance, penalty: float | None = None) -> QUBO:
    """Encode a TSP instance as a QUBO with one-hot city/time constraints."""
    n = instance.num_cities
    if penalty is None:
        # A constraint violation must always cost more than any tour edge.
        penalty = 2.0 * float(np.max(instance.weights)) * n
    qubo = QUBO.empty(n * n)

    # (i) + (ii): each city appears in exactly one time slot:
    # penalty * (sum_t x[c,t] - 1)^2 expanded into QUBO terms.
    for city in range(n):
        for t1 in range(n):
            index_1 = variable_index(city, t1, n)
            qubo.add_term(index_1, index_1, -penalty)
            for t2 in range(t1 + 1, n):
                index_2 = variable_index(city, t2, n)
                qubo.add_term(index_1, index_2, 2.0 * penalty)

    # (iii): each time slot holds exactly one city.
    for time in range(n):
        for c1 in range(n):
            index_1 = variable_index(c1, time, n)
            qubo.add_term(index_1, index_1, -penalty)
            for c2 in range(c1 + 1, n):
                index_2 = variable_index(c2, time, n)
                qubo.add_term(index_1, index_2, 2.0 * penalty)

    # (iv): tour cost between consecutive time slots (cyclic).
    for c1 in range(n):
        for c2 in range(n):
            if c1 == c2:
                continue
            weight = float(instance.weights[c1, c2])
            if weight == 0.0:
                continue
            for time in range(n):
                next_time = (time + 1) % n
                qubo.add_term(
                    variable_index(c1, time, n),
                    variable_index(c2, next_time, n),
                    weight,
                )
    return qubo


def qubo_constant_offset(instance: TSPInstance, penalty: float | None = None) -> float:
    """Constant dropped by the QUBO expansion of the one-hot constraints.

    ``(sum x - 1)^2`` contributes a constant ``penalty`` per constraint, so
    the true tour cost of a feasible assignment is
    ``qubo.energy(x) + 2 * n * penalty``.
    """
    n = instance.num_cities
    if penalty is None:
        penalty = 2.0 * float(np.max(instance.weights)) * n
    return 2.0 * n * penalty


def decode_tour(assignment: np.ndarray, num_cities: int) -> list[int] | None:
    """Decode a binary assignment into a tour (None when constraints are violated)."""
    assignment = np.asarray(assignment).reshape(num_cities, num_cities)
    tour: list[int] = []
    for time in range(num_cities):
        cities = np.nonzero(assignment[:, time])[0]
        if cities.size != 1:
            return None
        tour.append(int(cities[0]))
    if sorted(tour) != list(range(num_cities)):
        return None
    return tour


def tour_is_valid(assignment: np.ndarray, num_cities: int) -> bool:
    return decode_tour(assignment, num_cities) is not None


def tour_to_assignment(tour: list[int], num_cities: int) -> np.ndarray:
    """One-hot encoding of a tour (inverse of :func:`decode_tour`)."""
    assignment = np.zeros(num_cities * num_cities, dtype=int)
    for time, city in enumerate(tour):
        assignment[variable_index(city, time, num_cities)] = 1
    return assignment
