"""TSP instances, including the paper's four-city Netherlands example.

"In our example, we search the shortest route between four cities in the
Netherlands.  The TSP graph is made from the scaled Euclidean distance.  We
enumerate all possible solutions and find an optimal solution for this TSP
with a cost of 1.42." (Section 3.3, Figure 9)
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np


@dataclass
class TSPInstance:
    """A symmetric TSP over a complete weighted graph."""

    names: list[str]
    weights: np.ndarray
    coordinates: list[tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=float)
        n = len(self.names)
        if weights.shape != (n, n):
            raise ValueError("weight matrix shape does not match city count")
        if not np.allclose(weights, weights.T):
            raise ValueError("weight matrix must be symmetric")
        if np.any(np.diag(weights) != 0):
            raise ValueError("self-distances must be zero")
        self.weights = weights

    @property
    def num_cities(self) -> int:
        return len(self.names)

    # ------------------------------------------------------------------ #
    def tour_cost(self, tour: list[int]) -> float:
        """Cost of a closed tour visiting the listed cities in order."""
        if sorted(tour) != list(range(self.num_cities)):
            raise ValueError("tour must visit every city exactly once")
        total = 0.0
        for index, city in enumerate(tour):
            nxt = tour[(index + 1) % len(tour)]
            total += self.weights[city, nxt]
        return float(total)

    def all_tours(self) -> list[list[int]]:
        """Every distinct tour starting at city 0 (the enumeration of Figure 9)."""
        return [[0, *perm] for perm in itertools.permutations(range(1, self.num_cities))]

    def qubit_requirement(self) -> int:
        """Number of QUBO variables / qubits: N^2 (the paper's scaling law)."""
        return self.num_cities ** 2

    def scaled(self, factor: float) -> "TSPInstance":
        return TSPInstance(
            names=list(self.names),
            weights=self.weights * factor,
            coordinates=list(self.coordinates),
        )


#: Approximate (latitude, longitude) of the four cities of Figure 9.
_NETHERLANDS_CITIES = {
    "Amsterdam": (52.3676, 4.9041),
    "Utrecht": (52.0907, 5.1214),
    "Rotterdam": (51.9244, 4.4777),
    "Eindhoven": (51.4416, 5.4697),
}

#: Optimal tour cost reported in the paper for the scaled 4-city instance.
PAPER_OPTIMAL_COST = 1.42


def _planar_distance(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Kilometre distance from latitude/longitude via the local planar approximation."""
    lat_scale = 111.0
    lon_scale = 111.0 * math.cos(math.radians((a[0] + b[0]) / 2.0))
    d_lat = (a[0] - b[0]) * lat_scale
    d_lon = (a[1] - b[1]) * lon_scale
    return math.hypot(d_lat, d_lon)


def netherlands_tsp() -> TSPInstance:
    """The paper's four-city route-planning instance.

    Distances are the Euclidean (planar-approximation) distances between the
    four cities, scaled by a single constant so that the optimal tour cost
    equals the paper's reported value of 1.42.
    """
    names = list(_NETHERLANDS_CITIES)
    coords = [_NETHERLANDS_CITIES[name] for name in names]
    n = len(names)
    weights = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            distance = _planar_distance(coords[i], coords[j])
            weights[i, j] = weights[j, i] = distance
    instance = TSPInstance(names=names, weights=weights, coordinates=coords)
    # Scale so the optimum matches the paper's reported 1.42.
    best_cost = min(instance.tour_cost(tour) for tour in instance.all_tours())
    return instance.scaled(PAPER_OPTIMAL_COST / best_cost)


def random_tsp(num_cities: int, seed: int | np.random.SeedSequence | None = None, box: float = 1.0) -> TSPInstance:
    """Random Euclidean TSP instance in a unit box (for the scaling benchmarks)."""
    if num_cities < 2:
        raise ValueError("need at least two cities")
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, box, size=(num_cities, 2))
    weights = np.zeros((num_cities, num_cities))
    for i in range(num_cities):
        for j in range(i + 1, num_cities):
            weights[i, j] = weights[j, i] = float(np.hypot(*(points[i] - points[j])))
    names = [f"city_{i}" for i in range(num_cities)]
    return TSPInstance(names=names, weights=weights, coordinates=[tuple(p) for p in points])
