"""TSP solvers: classical baselines and quantum-accelerated paths.

Classical: exact enumeration / branch-and-bound style pruning, the
nearest-neighbour constructive heuristic, 2-opt local search and Monte-Carlo
annealing ("Heuristics like Monte Carlo methods are used for larger
inputs").  Quantum-accelerated: QUBO + (simulated quantum) annealing, and
QUBO + QAOA on the gate model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.annealing.simulated_annealing import SimulatedAnnealer
from repro.apps.tsp.tsp import TSPInstance
from repro.apps.tsp.tsp_qubo import decode_tour, tsp_to_qubo


@dataclass
class TSPSolution:
    """A tour plus bookkeeping about how it was obtained."""

    tour: list[int]
    cost: float
    solver: str
    evaluations: int = 0
    valid: bool = True

    def gap_to(self, optimal_cost: float) -> float:
        """Relative excess cost over the optimum."""
        if optimal_cost <= 0:
            return 0.0
        return self.cost / optimal_cost - 1.0


# ---------------------------------------------------------------------- #
# Classical solvers
# ---------------------------------------------------------------------- #
def brute_force_tsp(instance: TSPInstance) -> TSPSolution:
    """Exact optimum by enumerating all (n-1)! tours (Figure 9's method)."""
    best_tour: list[int] | None = None
    best_cost = np.inf
    evaluations = 0
    for perm in itertools.permutations(range(1, instance.num_cities)):
        tour = [0, *perm]
        cost = instance.tour_cost(tour)
        evaluations += 1
        if cost < best_cost:
            best_cost = cost
            best_tour = tour
    assert best_tour is not None
    return TSPSolution(tour=best_tour, cost=float(best_cost), solver="brute_force",
                       evaluations=evaluations)


def branch_and_bound_tsp(instance: TSPInstance) -> TSPSolution:
    """Depth-first branch and bound with a running-cost prune.

    The exact method the paper attributes the classical 85 900-city record
    to (in spirit): explores partial tours and prunes branches whose partial
    cost already exceeds the best complete tour found so far.
    """
    n = instance.num_cities
    best_cost = np.inf
    best_tour: list[int] | None = None
    evaluations = 0

    def recurse(partial: list[int], cost: float) -> None:
        nonlocal best_cost, best_tour, evaluations
        if cost >= best_cost:
            return
        if len(partial) == n:
            total = cost + instance.weights[partial[-1], partial[0]]
            evaluations += 1
            if total < best_cost:
                best_cost = total
                best_tour = list(partial)
            return
        last = partial[-1]
        remaining = sorted(
            (city for city in range(n) if city not in partial),
            key=lambda city: instance.weights[last, city],
        )
        for city in remaining:
            recurse(partial + [city], cost + instance.weights[last, city])

    recurse([0], 0.0)
    assert best_tour is not None
    return TSPSolution(tour=best_tour, cost=float(best_cost), solver="branch_and_bound",
                       evaluations=evaluations)


def nearest_neighbour_tsp(instance: TSPInstance, start: int = 0) -> TSPSolution:
    """Greedy constructive heuristic."""
    n = instance.num_cities
    tour = [start]
    unvisited = set(range(n)) - {start}
    evaluations = 0
    while unvisited:
        last = tour[-1]
        next_city = min(unvisited, key=lambda city: instance.weights[last, city])
        evaluations += len(unvisited)
        tour.append(next_city)
        unvisited.discard(next_city)
    return TSPSolution(tour=tour, cost=instance.tour_cost(tour), solver="nearest_neighbour",
                       evaluations=evaluations)


def two_opt_tsp(instance: TSPInstance, start_tour: list[int] | None = None) -> TSPSolution:
    """2-opt local search started from the nearest-neighbour tour."""
    tour = list(start_tour) if start_tour else nearest_neighbour_tsp(instance).tour
    n = len(tour)
    evaluations = 0
    improved = True
    while improved:
        improved = False
        for i in range(1, n - 1):
            for j in range(i + 1, n):
                evaluations += 1
                candidate = tour[:i] + tour[i : j + 1][::-1] + tour[j + 1 :]
                if instance.tour_cost(candidate) < instance.tour_cost(tour) - 1e-12:
                    tour = candidate
                    improved = True
    return TSPSolution(tour=tour, cost=instance.tour_cost(tour), solver="two_opt",
                       evaluations=evaluations)


def monte_carlo_tsp(
    instance: TSPInstance,
    iterations: int = 5000,
    temperature: float = 1.0,
    cooling: float = 0.999,
    seed: int | np.random.SeedSequence | None = None,
) -> TSPSolution:
    """Simulated-annealing Monte Carlo over tour permutations (swap moves)."""
    rng = np.random.default_rng(seed)
    n = instance.num_cities
    tour = list(rng.permutation(n))
    cost = instance.tour_cost(tour)
    best_tour, best_cost = list(tour), cost
    evaluations = 0
    for _ in range(iterations):
        i, j = sorted(rng.choice(n, size=2, replace=False))
        candidate = tour[:i] + tour[i : j + 1][::-1] + tour[j + 1 :]
        candidate_cost = instance.tour_cost(candidate)
        evaluations += 1
        delta = candidate_cost - cost
        if delta <= 0 or rng.random() < np.exp(-delta / max(temperature, 1e-9)):
            tour, cost = candidate, candidate_cost
            if cost < best_cost:
                best_tour, best_cost = list(tour), cost
        temperature *= cooling
    return TSPSolution(tour=best_tour, cost=float(best_cost), solver="monte_carlo",
                       evaluations=evaluations)


# ---------------------------------------------------------------------- #
# Quantum-accelerated solvers
# ---------------------------------------------------------------------- #
def solve_tsp_with_annealer(
    instance: TSPInstance,
    annealer=None,
    penalty: float | None = None,
) -> TSPSolution:
    """QUBO + annealing path (quantum annealer accelerator model).

    ``annealer`` may be any object with ``solve_qubo(qubo) -> AnnealResult``
    (simulated annealing, simulated quantum annealing or the digital
    annealer); defaults to :class:`SimulatedAnnealer`.
    """
    qubo = tsp_to_qubo(instance, penalty=penalty)
    solver = annealer if annealer is not None else SimulatedAnnealer(num_sweeps=400, num_reads=20, seed=0)
    result = solver.solve_qubo(qubo)
    assignment = result.binary()
    tour = decode_tour(assignment, instance.num_cities)
    if tour is None:
        # Constraint violation: report the nearest-neighbour repair so the
        # caller still gets a tour, flagged as invalid.
        repair = nearest_neighbour_tsp(instance)
        return TSPSolution(tour=repair.tour, cost=repair.cost,
                           solver=f"annealer[{result.solver}]+repair",
                           evaluations=result.num_sweeps * result.num_reads, valid=False)
    return TSPSolution(tour=tour, cost=instance.tour_cost(tour),
                       solver=f"annealer[{result.solver}]",
                       evaluations=result.num_sweeps * result.num_reads)


def solve_tsp_with_qaoa(
    instance: TSPInstance,
    depth: int = 2,
    seed: int | np.random.SeedSequence | None = None,
    max_iterations: int = 60,
    penalty: float | None = None,
) -> TSPSolution:
    """QUBO + QAOA path (gate-model accelerator).

    Statevector QAOA is limited to 20 qubits, i.e. TSP instances of at most
    4 cities (16 QUBO variables) — exactly the scale of the paper's example.
    """
    from repro.algorithms.qaoa import QAOA

    if instance.qubit_requirement() > 20:
        raise ValueError(
            f"QAOA path needs {instance.qubit_requirement()} qubits; "
            "only instances up to 4 cities are simulable"
        )
    qubo = tsp_to_qubo(instance, penalty=penalty)
    qaoa = QAOA(depth=depth, seed=seed, max_iterations=max_iterations)
    result = qaoa.solve_qubo(qubo)
    # Scan the most probable measurement outcomes for the best valid tour —
    # this is the "aggregating the measurements over multiple runs" step the
    # paper assigns to the accelerator's classical logic.
    best_tour: list[int] | None = None
    best_cost = np.inf
    candidates = [(result.best_bitstring, 1.0)] + list(result.top_bitstrings)
    for bitstring, _probability in candidates:
        tour = decode_tour(bitstring, instance.num_cities)
        if tour is None:
            continue
        cost = instance.tour_cost(tour)
        if cost < best_cost:
            best_cost = cost
            best_tour = tour
    if best_tour is None:
        repair = nearest_neighbour_tsp(instance)
        return TSPSolution(tour=repair.tour, cost=repair.cost, solver="qaoa+repair",
                           evaluations=result.circuit_executions, valid=False)
    return TSPSolution(tour=best_tour, cost=float(best_cost), solver="qaoa",
                       evaluations=result.circuit_executions)
