"""Classical read-alignment baselines.

Two baselines for the comparison benchmarks (experiment E7):

* :class:`ClassicalAligner` — exhaustive scan of every reference position,
  the unstructured-search baseline whose query count is the N that Grover
  turns into sqrt(N);
* :class:`IndexedAligner` — a hash-index aligner (exact-match seed lookup
  with mismatch fallback), representative of the classical BWA-style tools
  the paper cites for GPU/FPGA acceleration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.qgs.dna import Read, hamming_distance


@dataclass
class ClassicalAlignmentResult:
    read: Read
    reported_position: int
    correct: bool
    comparisons: int
    mismatches: int


class ClassicalAligner:
    """Exhaustive scan: compare the read against every reference position."""

    def __init__(self, reference: str, read_length: int):
        self.reference = reference
        self.read_length = read_length
        self.slices = [
            reference[i : i + read_length]
            for i in range(len(reference) - read_length + 1)
        ]

    @property
    def database_size(self) -> int:
        return len(self.slices)

    def align(self, read: Read | str) -> ClassicalAlignmentResult:
        sequence = read.sequence if isinstance(read, Read) else read
        read_obj = read if isinstance(read, Read) else Read(sequence=sequence, true_position=-1)
        best_position = 0
        best_distance = len(sequence) + 1
        comparisons = 0
        for position, candidate in enumerate(self.slices):
            comparisons += 1
            distance = hamming_distance(candidate, sequence)
            if distance < best_distance:
                best_distance = distance
                best_position = position
                if distance == 0:
                    break
        correct = (
            best_position == read_obj.true_position
            or (read_obj.true_position >= 0
                and self.slices[best_position] == self.slices[read_obj.true_position])
            or read_obj.true_position < 0
        )
        return ClassicalAlignmentResult(
            read=read_obj,
            reported_position=best_position,
            correct=bool(correct),
            comparisons=comparisons,
            mismatches=best_distance,
        )

    def align_all(self, reads: list[Read]) -> list[ClassicalAlignmentResult]:
        return [self.align(read) for read in reads]

    def total_comparisons(self, results: list[ClassicalAlignmentResult]) -> int:
        return sum(r.comparisons for r in results)


class IndexedAligner:
    """Hash-index aligner: exact k-mer lookup with linear mismatch fallback."""

    def __init__(self, reference: str, read_length: int):
        self.reference = reference
        self.read_length = read_length
        self.exhaustive = ClassicalAligner(reference, read_length)
        self.index: dict[str, list[int]] = {}
        for position, candidate in enumerate(self.exhaustive.slices):
            self.index.setdefault(candidate, []).append(position)

    def align(self, read: Read | str) -> ClassicalAlignmentResult:
        sequence = read.sequence if isinstance(read, Read) else read
        read_obj = read if isinstance(read, Read) else Read(sequence=sequence, true_position=-1)
        positions = self.index.get(sequence)
        if positions:
            best_position = positions[0]
            if read_obj.true_position in positions:
                best_position = read_obj.true_position
            return ClassicalAlignmentResult(
                read=read_obj,
                reported_position=best_position,
                correct=read_obj.true_position < 0 or read_obj.true_position in positions,
                comparisons=1,
                mismatches=0,
            )
        # Fall back to the exhaustive scan when the read contains errors.
        return self.exhaustive.align(read_obj)

    def align_all(self, reads: list[Read]) -> list[ClassicalAlignmentResult]:
        return [self.align(read) for read in reads]
