"""Micro-architecture for the quantum genome sequencing accelerator (Figure 7).

The QGS accelerator is not a bare simulator call: Figure 7 shows a dedicated
micro-architecture in which the DNA data set is fetched from an external
classical database into a local memory, streamed through a set of queues to
the quantum device (the QX simulator), and the measured indices flow back to
the run-time logic that aggregates them into alignment decisions.  This
module models those blocks and accounts for the data movement and timing of
a full alignment batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.qgs.dna import Read
from repro.apps.qgs.quantum_alignment import AlignmentResult, QuantumAligner
from repro.microarch.queues import OperationQueue


@dataclass
class QGSExecutionReport:
    """Accounting of one alignment batch through the QGS micro-architecture."""

    reads_processed: int
    correct_alignments: int
    total_oracle_queries: int
    total_classical_query_equivalent: float
    database_size: int
    qubits_used: int
    local_memory_bytes: int
    queue_max_depth: int
    estimated_runtime_ns: int

    @property
    def accuracy(self) -> float:
        if self.reads_processed == 0:
            return 0.0
        return self.correct_alignments / self.reads_processed

    @property
    def quantum_speedup_in_queries(self) -> float:
        """Classical / quantum query ratio for the batch (the sqrt(N) headline)."""
        if self.total_oracle_queries == 0:
            return 1.0
        return self.total_classical_query_equivalent / self.total_oracle_queries


class QGSMicroArchitecture:
    """DNA local memory + read queues + quantum alignment unit + result path."""

    #: Nanoseconds charged per oracle query issued to the quantum device:
    #: one Grover iteration is a handful of multi-qubit operations.
    NS_PER_ORACLE_QUERY = 400
    #: Nanoseconds to move one read from local memory into the accelerator queues.
    NS_PER_READ_TRANSFER = 50

    def __init__(self, reference: str, read_length: int, seed: int | None = None):
        self.aligner = QuantumAligner(reference, read_length, seed=seed)
        self.read_length = read_length
        #: Local memory holding the sliced reference (2 bits per base).
        self.local_memory_bytes = (len(reference) * 2 + 7) // 8
        self.read_queue = OperationQueue("qgs_read_queue")
        self.result_queue = OperationQueue("qgs_result_queue")

    # ------------------------------------------------------------------ #
    def load_reads(self, reads: list[Read]) -> None:
        """Transfer a batch of reads from the host database into the local queue."""
        for index, read in enumerate(reads):
            self.read_queue.push(index * self.NS_PER_READ_TRANSFER, read)

    def process_batch(self, max_mismatches: int = 1) -> QGSExecutionReport:
        """Drain the read queue through the quantum alignment unit."""
        results: list[AlignmentResult] = []
        timestamp = 0
        while not self.read_queue.is_empty():
            arrival, read = self.read_queue.pop()
            timestamp = max(timestamp, arrival)
            result = self.aligner.align(read, max_mismatches=max_mismatches)
            timestamp += result.oracle_queries * self.NS_PER_ORACLE_QUERY
            self.result_queue.push(timestamp, result)
            results.append(result)

        return QGSExecutionReport(
            reads_processed=len(results),
            correct_alignments=sum(1 for r in results if r.correct),
            total_oracle_queries=sum(r.oracle_queries for r in results),
            total_classical_query_equivalent=sum(
                r.classical_queries_equivalent for r in results
            ),
            database_size=self.aligner.database_size,
            qubits_used=self.aligner.qubits_used,
            local_memory_bytes=self.local_memory_bytes,
            queue_max_depth=self.read_queue.stats.max_depth,
            estimated_runtime_ns=timestamp,
        )

    def align_batch(self, reads: list[Read], max_mismatches: int = 1) -> QGSExecutionReport:
        """Convenience: load and process a batch in one call."""
        self.load_reads(reads)
        return self.process_batch(max_mismatches=max_mismatches)
