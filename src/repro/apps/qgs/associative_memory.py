"""Quantum associative memory for the sliced reference database.

The reference genome is sliced into k-mers and stored as an
index-entangled superposition

    |DB> = (1/sqrt(M)) * sum_i |i>_index (x) |slice_i>_data

so that a pattern query can amplify the index of the closest match
("Due to the reference database and index being entangled, the
closest-match index can be estimated", Section 3.2).  The memory is backed
by the state-vector engine, so storage and recall both run on the QX layer.
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.qgs.dna import encode_sequence, hamming_distance
from repro.qx.statevector import StateVector


class QuantumAssociativeMemory:
    """Index-entangled superposed storage of equal-length DNA slices."""

    def __init__(self, slices: list[str], rng: np.random.Generator | None = None):
        if not slices:
            raise ValueError("need at least one slice to store")
        lengths = {len(s) for s in slices}
        if len(lengths) != 1:
            raise ValueError("all slices must have equal length")
        self.slices = list(slices)
        self.slice_length = lengths.pop()
        self.num_entries = len(slices)
        self.address_qubits = max(1, math.ceil(math.log2(self.num_entries)))
        self.data_qubits = 2 * self.slice_length
        self.total_qubits = self.address_qubits + self.data_qubits
        if self.total_qubits > 24:
            raise ValueError(
                f"database needs {self.total_qubits} qubits; reduce genome or slice size"
            )
        self.rng = rng if rng is not None else np.random.default_rng()
        self._state = self._build_state()

    # ------------------------------------------------------------------ #
    def _basis_index(self, address: int, data_code: int) -> int:
        """Address register in the low qubits, data register in the high qubits."""
        return address | (data_code << self.address_qubits)

    def _build_state(self) -> StateVector:
        state = StateVector(self.total_qubits, rng=self.rng)
        amplitudes = np.zeros(2 ** self.total_qubits, dtype=complex)
        normalisation = 1.0 / math.sqrt(self.num_entries)
        for address, sequence in enumerate(self.slices):
            code = encode_sequence(sequence)
            amplitudes[self._basis_index(address, code)] = normalisation
        state.set_state(amplitudes)
        return state

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> StateVector:
        return self._state

    def amplitudes(self) -> np.ndarray:
        return self._state.amplitudes.copy()

    def memory_utilisation(self) -> float:
        """Stored entries as a fraction of the address space."""
        return self.num_entries / 2 ** self.address_qubits

    def capacity_advantage(self) -> float:
        """Classical bits needed to store the database per qubit used.

        The headline "exponential increase in capacity": M slices of L bases
        occupy M * 2L classical bits but only ceil(log2 M) + 2L qubits.
        """
        classical_bits = self.num_entries * 2 * self.slice_length
        return classical_bits / self.total_qubits

    # ------------------------------------------------------------------ #
    def marked_addresses(self, query: str, max_mismatches: int = 0) -> list[int]:
        """Addresses whose stored slice is within ``max_mismatches`` of the query."""
        if len(query) != self.slice_length:
            raise ValueError("query length must equal the slice length")
        return [
            address
            for address, sequence in enumerate(self.slices)
            if hamming_distance(sequence, query) <= max_mismatches
        ]

    def oracle_phase_flip(self, amplitudes: np.ndarray, addresses: list[int]) -> np.ndarray:
        """Flip the phase of every database entry whose address is marked.

        This is the content-addressable oracle: it acts on the joint
        index (x) data state produced by :meth:`_build_state`.
        """
        flipped = amplitudes.copy()
        for address, sequence in enumerate(self.slices):
            if address in set(addresses):
                code = encode_sequence(sequence)
                flipped[self._basis_index(address, code)] *= -1.0
        return flipped

    def measure_address(self, amplitudes: np.ndarray) -> int:
        """Sample the address register from a (possibly amplified) state."""
        probabilities = np.abs(amplitudes) ** 2
        probabilities = probabilities / probabilities.sum()
        outcome = int(self.rng.choice(probabilities.size, p=probabilities))
        return outcome & ((1 << self.address_qubits) - 1)
