"""Grover-amplified approximate read alignment.

The quantum alignment kernel of the genome-sequencing accelerator
(Section 3.2 and [Sarkar et al. 2019]): the reference is held in the
quantum associative memory, the oracle marks every database entry within a
Hamming tolerance of the query read ("incorporating the requirement for
approximate optimal matching"), and Grover amplification boosts the
measurement probability of the matching index.  The reported oracle-query
count is the sqrt(N) figure the accelerator's speed-up claim rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.grover import classical_search_queries, optimal_grover_iterations
from repro.apps.qgs.associative_memory import QuantumAssociativeMemory
from repro.apps.qgs.dna import Read, encode_sequence, hamming_distance


@dataclass
class AlignmentResult:
    """Outcome of aligning one read."""

    read: Read
    reported_position: int
    correct: bool
    success_probability: float
    oracle_queries: int
    classical_queries_equivalent: float
    mismatches_allowed: int


class QuantumAligner:
    """Align reads against a reference using associative memory + Grover."""

    def __init__(self, reference: str, read_length: int, seed: int | np.random.SeedSequence | None = None):
        if read_length < 1 or read_length > len(reference):
            raise ValueError("invalid read length")
        self.reference = reference
        self.read_length = read_length
        self.rng = np.random.default_rng(seed)
        slices = [
            reference[i : i + read_length]
            for i in range(len(reference) - read_length + 1)
        ]
        self.memory = QuantumAssociativeMemory(slices, rng=self.rng)
        # Pre-compute the basis index of every stored entry once.
        self._entry_indices = np.array(
            [
                self.memory._basis_index(address, encode_sequence(sequence))
                for address, sequence in enumerate(self.memory.slices)
            ]
        )

    # ------------------------------------------------------------------ #
    @property
    def database_size(self) -> int:
        return self.memory.num_entries

    @property
    def qubits_used(self) -> int:
        return self.memory.total_qubits

    # ------------------------------------------------------------------ #
    def align(self, read: Read | str, max_mismatches: int = 0) -> AlignmentResult:
        """Align one read by amplifying the *nearest* matches in the database.

        The oracle marks the database entries at the minimum Hamming distance
        from the query ("amplifies the measurement probability of the nearest
        match"); ``max_mismatches`` only sets the tolerance the caller hoped
        for — when no entry is that close, the tolerance widens automatically
        to the actual nearest distance.
        """
        sequence = read.sequence if isinstance(read, Read) else read
        read_obj = read if isinstance(read, Read) else Read(sequence=sequence, true_position=-1)
        if len(sequence) != self.read_length:
            raise ValueError("read length does not match the aligner's slice length")

        distances = [hamming_distance(s, sequence) for s in self.memory.slices]
        nearest = min(distances)
        tolerance = max(max_mismatches, nearest)
        marked = [address for address, d in enumerate(distances) if d == nearest]

        amplitudes, oracle_queries = self._amplify(marked)
        probabilities = np.abs(amplitudes) ** 2
        success_probability = float(np.sum(probabilities[self._entry_indices[marked]]))

        reported = self.memory.measure_address(amplitudes)
        reported = min(reported, self.database_size - 1)
        correct = distances[reported] == nearest

        return AlignmentResult(
            read=read_obj,
            reported_position=int(reported),
            correct=correct,
            success_probability=success_probability,
            oracle_queries=oracle_queries,
            classical_queries_equivalent=classical_search_queries(
                self.database_size, max(1, len(marked))
            ),
            mismatches_allowed=tolerance,
        )

    def align_all(self, reads: list[Read], max_mismatches: int = 1) -> list[AlignmentResult]:
        return [self.align(read, max_mismatches=max_mismatches) for read in reads]

    # ------------------------------------------------------------------ #
    def _amplify(self, marked: list[int]) -> tuple[np.ndarray, int]:
        """Grover amplification restricted to the stored-entry subspace."""
        amplitudes = self.memory.amplitudes()
        iterations = optimal_grover_iterations(self.database_size, max(1, len(marked)))
        stored = self._entry_indices
        queries = 0
        for _ in range(iterations):
            amplitudes = self.memory.oracle_phase_flip(amplitudes, marked)
            queries += 1
            # Diffusion: inversion about the mean of the database entries.
            mean = amplitudes[stored].mean()
            amplitudes[stored] = 2.0 * mean - amplitudes[stored]
        return amplitudes, queries

    # ------------------------------------------------------------------ #
    def accuracy(self, results: list[AlignmentResult]) -> float:
        if not results:
            return 0.0
        return sum(1 for r in results if r.correct) / len(results)

    def total_oracle_queries(self, results: list[AlignmentResult]) -> int:
        return sum(r.oracle_queries for r in results)
