"""Quantum genome sequencing accelerator (Section 3.2, Figure 7).

"The reference DNA is sliced and stored as indexed entries in a superposed
quantum database giving exponential increase in capacity ... A quantum
search on the database amplifies the measurement probability of the nearest
match to the query and thereby of the corresponding index."

Components:

* :mod:`repro.apps.qgs.dna` — artificial DNA generation "that preserves the
  statistical and entropic complexity of the base pairs", read sampling with
  configurable sequencing error, and binary encoding;
* :mod:`repro.apps.qgs.associative_memory` — the superposed quantum database
  of reference slices (quantum associative memory);
* :mod:`repro.apps.qgs.quantum_alignment` — Grover-amplified approximate
  read alignment returning the closest reference index;
* :mod:`repro.apps.qgs.classical_alignment` — the classical baselines
  (exhaustive scan and an indexed aligner) used for the comparison
  benchmarks.
"""

from repro.apps.qgs.dna import ArtificialGenome, Read, encode_sequence, decode_sequence
from repro.apps.qgs.associative_memory import QuantumAssociativeMemory
from repro.apps.qgs.quantum_alignment import QuantumAligner, AlignmentResult
from repro.apps.qgs.classical_alignment import ClassicalAligner, IndexedAligner

__all__ = [
    "ArtificialGenome",
    "Read",
    "encode_sequence",
    "decode_sequence",
    "QuantumAssociativeMemory",
    "QuantumAligner",
    "AlignmentResult",
    "ClassicalAligner",
    "IndexedAligner",
]
