"""Artificial DNA generation, read sampling and binary encoding.

"For testing the functionality of the algorithm, we use artificial DNA
sequences that preserve the statistical and entropic complexity of the base
pairs in biological genomes; yet in a reduced size so that they can be
efficiently simulated in a classical architecture with qubit limitations."
(Section 3.2)

The generator uses a first-order Markov chain over the four bases with
transition statistics representative of the human genome (CpG suppression,
mild AT richness), which reproduces the dinucleotide entropy structure of
real sequences at any length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

BASES = "ACGT"
_BASE_TO_BITS = {"A": (0, 0), "C": (0, 1), "G": (1, 0), "T": (1, 1)}
_BITS_TO_BASE = {bits: base for base, bits in _BASE_TO_BITS.items()}

#: First-order transition matrix (rows: from-base A,C,G,T) with the CpG
#: suppression characteristic of mammalian genomes (low C->G probability).
_HUMAN_LIKE_TRANSITIONS = np.array(
    [
        [0.33, 0.17, 0.28, 0.22],  # from A
        [0.35, 0.25, 0.05, 0.35],  # from C  (suppressed C->G)
        [0.28, 0.21, 0.25, 0.26],  # from G
        [0.22, 0.20, 0.25, 0.33],  # from T
    ]
)


def encode_sequence(sequence: str) -> int:
    """Pack a DNA string into an integer, two bits per base (A=00, C=01, G=10, T=11).

    The first base occupies the most significant bit pair so that
    lexicographic order of sequences matches numeric order of codes.
    """
    value = 0
    for base in sequence.upper():
        if base not in _BASE_TO_BITS:
            raise ValueError(f"invalid base {base!r}")
        high, low = _BASE_TO_BITS[base]
        value = (value << 2) | (high << 1) | low
    return value


def decode_sequence(value: int, length: int) -> str:
    """Inverse of :func:`encode_sequence`."""
    bases = []
    for position in range(length):
        shift = 2 * (length - 1 - position)
        bits = (value >> shift) & 0b11
        bases.append(_BITS_TO_BASE[((bits >> 1) & 1, bits & 1)])
    return "".join(bases)


def hamming_distance(seq_a: str, seq_b: str) -> int:
    """Number of mismatching positions between two equal-length sequences."""
    if len(seq_a) != len(seq_b):
        raise ValueError("sequences must have equal length")
    return sum(1 for a, b in zip(seq_a, seq_b, strict=False) if a != b)


@dataclass
class Read:
    """A short read sampled from a genome."""

    sequence: str
    true_position: int
    errors: int = 0

    def __len__(self) -> int:
        return len(self.sequence)


class ArtificialGenome:
    """Markov-chain artificial genome with read sampling."""

    def __init__(
        self,
        length: int,
        seed: int | np.random.SeedSequence | None = None,
        transitions: np.ndarray | None = None,
    ):
        if length < 4:
            raise ValueError("genome length must be at least 4")
        self.length = length
        self.rng = np.random.default_rng(seed)
        self.transitions = (
            np.asarray(transitions) if transitions is not None else _HUMAN_LIKE_TRANSITIONS
        )
        if self.transitions.shape != (4, 4):
            raise ValueError("transition matrix must be 4x4")
        self.sequence = self._generate()

    def _generate(self) -> str:
        bases = [int(self.rng.integers(4))]
        for _ in range(self.length - 1):
            current = bases[-1]
            probs = self.transitions[current]
            bases.append(int(self.rng.choice(4, p=probs / probs.sum())))
        return "".join(BASES[b] for b in bases)

    # ------------------------------------------------------------------ #
    def slice_reference(self, slice_length: int) -> list[str]:
        """All overlapping slices (k-mers) of the reference, index = position."""
        if slice_length > self.length:
            raise ValueError("slice length exceeds genome length")
        return [
            self.sequence[i : i + slice_length]
            for i in range(self.length - slice_length + 1)
        ]

    def sample_read(self, read_length: int, error_rate: float = 0.0) -> Read:
        """Sample one read from a random position with per-base substitution errors."""
        if read_length > self.length:
            raise ValueError("read longer than genome")
        position = int(self.rng.integers(self.length - read_length + 1))
        bases = list(self.sequence[position : position + read_length])
        errors = 0
        for index in range(read_length):
            if self.rng.random() < error_rate:
                alternatives = [b for b in BASES if b != bases[index]]
                bases[index] = alternatives[int(self.rng.integers(3))]
                errors += 1
        return Read(sequence="".join(bases), true_position=position, errors=errors)

    def sample_reads(self, count: int, read_length: int, error_rate: float = 0.0) -> list[Read]:
        return [self.sample_read(read_length, error_rate) for _ in range(count)]

    # ------------------------------------------------------------------ #
    def gc_content(self) -> float:
        """Fraction of G/C bases (a basic realism statistic)."""
        gc = sum(1 for base in self.sequence if base in "GC")
        return gc / self.length

    def shannon_entropy(self, order: int = 1) -> float:
        """Entropy (bits per symbol) of the k-mer distribution of the sequence."""
        counts: dict[str, int] = {}
        for i in range(self.length - order + 1):
            kmer = self.sequence[i : i + order]
            counts[kmer] = counts.get(kmer, 0) + 1
        total = sum(counts.values())
        probs = np.array([c / total for c in counts.values()])
        return float(-np.sum(probs * np.log2(probs)))

    def qubits_required(self, slice_length: int) -> int:
        """Address + data qubits needed to hold the sliced reference database.

        This is the resource estimate behind the paper's remark that a human
        genome would need "around 150 logical qubits": address qubits to
        index the slices plus two qubits per base of the slice.
        """
        num_slices = self.length - slice_length + 1
        address = max(1, int(np.ceil(np.log2(num_slices))))
        return address + 2 * slice_length
