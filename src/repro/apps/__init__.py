"""Accelerator applications built on the full stack.

Two of the paper's three worked accelerators are implemented here (the
third, the automotive collaboration, is confidential in the paper itself):

* :mod:`repro.apps.qgs` — quantum genome sequencing (Section 3.2);
* :mod:`repro.apps.tsp` — quantum optimisation of the travelling salesman
  problem (Section 3.3).
"""
