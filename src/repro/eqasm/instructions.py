"""eQASM instruction representation.

An eQASM program is a sequence of *bundles*: a wait-prefix (in cycles)
followed by one or more quantum micro-operations issued simultaneously, each
addressed to a target register (the set of qubits the codeword is applied
to).  Classical instructions (loop counters, branches) may be interleaved.
This mirrors the structure of the eQASM ISA the paper builds on (Fu et al.),
in a simplified single-issue form.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EqasmInstruction:
    """A single quantum micro-operation inside a bundle."""

    opcode: str
    codeword: int
    qubits: tuple[int, ...]
    duration_cycles: int = 1

    def to_text(self) -> str:
        targets = ", ".join(f"q{q}" for q in self.qubits)
        return f"{self.opcode} {targets}"


@dataclass
class QuantumBundle:
    """Wait-prefix plus simultaneously issued quantum operations."""

    wait_cycles: int
    operations: list[EqasmInstruction] = field(default_factory=list)

    def to_text(self) -> str:
        if not self.operations:
            return f"qwait {self.wait_cycles}"
        body = " | ".join(op.to_text() for op in self.operations)
        if self.wait_cycles:
            return f"qwait {self.wait_cycles}\nbs 1 {body}"
        return f"bs 1 {body}"


@dataclass
class ClassicalInstruction:
    """Classical control instruction (registers, branches, loops)."""

    opcode: str
    operands: tuple = ()

    def to_text(self) -> str:
        if not self.operands:
            return self.opcode
        return f"{self.opcode} " + ", ".join(str(o) for o in self.operands)


@dataclass
class EqasmProgram:
    """A fully lowered, timed program for one platform."""

    platform_name: str
    cycle_time_ns: int
    num_qubits: int
    bundles: list[QuantumBundle | ClassicalInstruction] = field(default_factory=list)
    codeword_table: dict[int, str] = field(default_factory=dict)

    def quantum_bundles(self) -> list[QuantumBundle]:
        return [b for b in self.bundles if isinstance(b, QuantumBundle)]

    def total_cycles(self) -> int:
        total = 0
        for bundle in self.quantum_bundles():
            duration = max((op.duration_cycles for op in bundle.operations), default=0)
            total += bundle.wait_cycles + duration
        return total

    def total_duration_ns(self) -> int:
        return self.total_cycles() * self.cycle_time_ns

    def instruction_count(self) -> int:
        return sum(
            len(b.operations) if isinstance(b, QuantumBundle) else 1 for b in self.bundles
        )

    def to_text(self) -> str:
        lines = [
            f"# eQASM for platform {self.platform_name}",
            f"# cycle time: {self.cycle_time_ns} ns",
            f"# codewords: {len(self.codeword_table)}",
            "",
        ]
        for bundle in self.bundles:
            lines.append(bundle.to_text())
        return "\n".join(lines) + "\n"
