"""Timing analysis of eQASM programs.

Experiment E3: the micro-architecture must meet nanosecond-level timing,
so the assembler's output is checked for schedule fidelity (no qubit is
driven by two codewords at once), and latency / issue-rate reports are
produced for the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eqasm.instructions import EqasmProgram, QuantumBundle


@dataclass
class TimingReport:
    """Summary of the timing behaviour of one eQASM program."""

    total_cycles: int
    total_duration_ns: int
    bundle_count: int
    instruction_count: int
    max_parallel_operations: int
    average_parallelism: float
    qubit_busy_ns: dict[int, int] = field(default_factory=dict)

    @property
    def issue_rate(self) -> float:
        """Quantum operations issued per cycle of total execution."""
        if self.total_cycles == 0:
            return 0.0
        return self.instruction_count / self.total_cycles

    def utilisation(self, num_qubits: int) -> float:
        """Fraction of qubit-time spent executing operations."""
        if self.total_duration_ns == 0 or num_qubits == 0:
            return 0.0
        busy = sum(self.qubit_busy_ns.values())
        return busy / (self.total_duration_ns * num_qubits)


class TimingAnalyzer:
    """Validate and profile eQASM timing."""

    def analyze(self, program: EqasmProgram) -> TimingReport:
        cycle_ns = program.cycle_time_ns
        current_cycle = 0
        busy_until: dict[int, int] = {}
        qubit_busy: dict[int, int] = {}
        max_parallel = 0
        instruction_count = 0
        for bundle in program.bundles:
            if not isinstance(bundle, QuantumBundle):
                continue
            current_cycle += bundle.wait_cycles
            max_parallel = max(max_parallel, len(bundle.operations))
            longest = 0
            for op in bundle.operations:
                instruction_count += 1
                for qubit in op.qubits:
                    if busy_until.get(qubit, 0) > current_cycle:
                        raise ValueError(
                            f"timing violation: qubit {qubit} still busy at cycle "
                            f"{current_cycle} (busy until {busy_until[qubit]})"
                        )
                    busy_until[qubit] = current_cycle + op.duration_cycles
                    qubit_busy[qubit] = qubit_busy.get(qubit, 0) + op.duration_cycles * cycle_ns
                longest = max(longest, op.duration_cycles)
            current_cycle += longest
        bundles = program.quantum_bundles()
        return TimingReport(
            total_cycles=current_cycle,
            total_duration_ns=current_cycle * cycle_ns,
            bundle_count=len(bundles),
            instruction_count=instruction_count,
            max_parallel_operations=max_parallel,
            average_parallelism=(instruction_count / len(bundles)) if bundles else 0.0,
            qubit_busy_ns=qubit_busy,
        )
