"""eQASM assembler: lower a scheduled circuit (or cQASM) to eQASM.

The assembler consumes a compiled circuit plus its timed schedule and the
platform configuration, groups operations that start on the same cycle into
bundles, allocates codewords for every distinct (gate, parameter) pair and
emits wait-prefixes so the stream reproduces the schedule cycle-accurately.
Re-targeting a different quantum technology only requires a different
platform configuration, exactly as in Section 3.1 of the paper.
"""

from __future__ import annotations

from repro.core.circuit import Circuit
from repro.core.operations import Barrier, ClassicalOperation, GateOperation, Measurement
from repro.cqasm.parser import cqasm_to_circuit
from repro.eqasm.instructions import (
    EqasmInstruction,
    EqasmProgram,
    QuantumBundle,
)
from repro.mapping.scheduling import Schedule, Scheduler
from repro.openql.passes.scheduling_pass import _apply_platform_durations
from repro.openql.platform import Platform


class EqasmAssembler:
    """Translate scheduled circuits into eQASM programs."""

    def __init__(self, platform: Platform):
        self.platform = platform
        self._codewords: dict[tuple, int] = {}

    # ------------------------------------------------------------------ #
    def assemble(self, circuit: Circuit, schedule: Schedule | None = None) -> EqasmProgram:
        """Lower ``circuit`` to eQASM using ``schedule`` (computed if absent)."""
        timed = _apply_platform_durations(circuit, self.platform)
        if schedule is None or schedule.circuit is not circuit:
            schedule = Scheduler(policy="asap").schedule(timed)
        cycle = self.platform.cycle_time_ns
        program = EqasmProgram(
            platform_name=self.platform.name,
            cycle_time_ns=cycle,
            num_qubits=self.platform.num_qubits,
        )
        by_start: dict[int, list] = {}
        for entry in schedule.entries:
            if isinstance(entry.operation, Barrier):
                continue
            by_start.setdefault(entry.start, []).append(entry)

        previous_end_cycle = 0
        for start in sorted(by_start):
            start_cycle = start // cycle
            wait = max(0, start_cycle - previous_end_cycle)
            bundle = QuantumBundle(wait_cycles=wait)
            longest = 0
            for entry in by_start[start]:
                instruction = self._lower_operation(entry.operation)
                if instruction is None:
                    continue
                bundle.operations.append(instruction)
                longest = max(longest, instruction.duration_cycles)
            if bundle.operations:
                program.bundles.append(bundle)
                previous_end_cycle = start_cycle + longest
        program.codeword_table = {cw: name for (name, *_), cw in self._codewords.items()}
        return program

    def assemble_cqasm(self, cqasm_text: str) -> EqasmProgram:
        """Convenience: parse cQASM text and assemble it."""
        circuit = cqasm_to_circuit(cqasm_text)
        return self.assemble(circuit)

    # ------------------------------------------------------------------ #
    def _lower_operation(self, operation) -> EqasmInstruction | None:
        cycle = self.platform.cycle_time_ns
        if isinstance(operation, GateOperation):
            if not self.platform.supports(operation.name):
                raise ValueError(
                    f"gate {operation.name!r} is not primitive on platform "
                    f"{self.platform.name!r}; run the decomposition pass first"
                )
            key = (operation.name, *[round(float(p), 9) for p in operation.params])
            codeword = self._codewords.setdefault(key, len(self._codewords))
            duration = max(1, -(-self.platform.duration_of(operation.name) // cycle))
            return EqasmInstruction(
                opcode=operation.name,
                codeword=codeword,
                qubits=operation.qubits,
                duration_cycles=duration,
            )
        if isinstance(operation, Measurement):
            key = ("measure",)
            codeword = self._codewords.setdefault(key, len(self._codewords))
            duration = max(1, -(-self.platform.duration_of("measure") // cycle))
            return EqasmInstruction(
                opcode="measz",
                codeword=codeword,
                qubits=(operation.qubit,),
                duration_cycles=duration,
            )
        if isinstance(operation, ClassicalOperation):
            return None
        return None

    def codeword_count(self) -> int:
        return len(self._codewords)
