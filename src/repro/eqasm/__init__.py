"""eQASM: executable quantum assembly.

The second back-end compiler pass of Section 3.1: cQASM is lowered to
eQASM, a timed, codeword-based instruction stream that takes the platform's
low-level information (gate times, topology, codeword table) into account
and can be executed by the micro-architecture with nanosecond-precise
timing.
"""

from repro.eqasm.instructions import EqasmInstruction, EqasmProgram, QuantumBundle
from repro.eqasm.assembler import EqasmAssembler
from repro.eqasm.timing import TimingAnalyzer, TimingReport

__all__ = [
    "EqasmInstruction",
    "EqasmProgram",
    "QuantumBundle",
    "EqasmAssembler",
    "TimingAnalyzer",
    "TimingReport",
]
