"""Qubit-state traffic analysis (Section 5: towards in-memory computing).

The paper argues that quantum computing is naturally an in-memory
architecture — "the quantum logic is directly applied on the qubits and the
qubits do not need to be transported to any Quantum ALU" — but that the
nearest-neighbour constraint re-introduces data movement through qubit-state
routing: "the routing of qubit states is therefore also a very important
problem ... qubits need to be put on the quantum chip in a way that the
movement of qubit states is as minimal as possible".

:class:`TrafficAnalyzer` quantifies that movement for a (routed) circuit:
how many times each logical qubit's state is moved, the total hop count, the
fraction of executed gates that are pure data movement (SWAPs), and a
locality score that is 1.0 for a perfectly in-memory execution (no movement
at all).  The mapping benchmarks use it to compare placements and
topologies; it is the measurable form of the paper's in-memory argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.circuit import Circuit
from repro.core.operations import ConditionalGate, GateOperation
from repro.mapping.routing import RoutingResult


@dataclass
class TrafficReport:
    """Data-movement accounting of one circuit execution."""

    total_gates: int
    movement_gates: int
    compute_gates: int
    total_hops: int
    moves_per_qubit: dict[int, int] = field(default_factory=dict)

    @property
    def movement_fraction(self) -> float:
        """Fraction of gates that only move state around (SWAP overhead)."""
        if self.total_gates == 0:
            return 0.0
        return self.movement_gates / self.total_gates

    @property
    def locality_score(self) -> float:
        """1.0 = perfectly in-memory (no movement), approaching 0 = movement dominated."""
        return 1.0 - self.movement_fraction

    @property
    def hottest_qubit(self) -> int | None:
        if not self.moves_per_qubit:
            return None
        return max(self.moves_per_qubit, key=lambda q: self.moves_per_qubit[q])

    def moved_qubit_count(self) -> int:
        return sum(1 for moves in self.moves_per_qubit.values() if moves > 0)


class TrafficAnalyzer:
    """Measure qubit-state movement in circuits and routing results."""

    def analyze_circuit(self, circuit: Circuit) -> TrafficReport:
        """Count SWAP-induced movement in an already-routed circuit.

        Hybrid-aware: conditional gates are compute, exactly like their
        unconditional counterparts, so feedback-heavy circuits are not
        scored as movement-dominated just for being hybrid.
        """
        movement = 0
        compute = 0
        hops = 0
        moves: dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
        for op in circuit.operations:
            if not isinstance(op, (GateOperation, ConditionalGate)):
                continue
            if op.name == "swap":
                movement += 1
                hops += 1
                for qubit in op.qubits:
                    moves[qubit] += 1
            else:
                compute += 1
        return TrafficReport(
            total_gates=movement + compute,
            movement_gates=movement,
            compute_gates=compute,
            total_hops=hops,
            moves_per_qubit=moves,
        )

    def analyze_routing(self, result: RoutingResult) -> TrafficReport:
        """Traffic of a routing result, attributed to *logical* qubit states.

        Every inserted SWAP moves (at most) two logical states by one hop.
        The per-qubit counts are expressed in logical indices by replaying
        the placement evolution from the initial placement.
        """
        report = self.analyze_circuit(result.circuit)
        physical_to_logical = {p: l for l, p in result.initial_placement.items()}
        logical_moves: dict[int, int] = {l: 0 for l in result.initial_placement}
        for op in result.circuit.gate_operations():
            if op.name != "swap":
                continue
            a, b = op.qubits
            logical_a = physical_to_logical.get(a)
            logical_b = physical_to_logical.get(b)
            if logical_a is not None:
                logical_moves[logical_a] += 1
            if logical_b is not None:
                logical_moves[logical_b] += 1
            physical_to_logical[a], physical_to_logical[b] = logical_b, logical_a
        report.moves_per_qubit = logical_moves
        return report

    def compare(self, unrouted: Circuit, routed: RoutingResult) -> dict:
        """Side-by-side in-memory metrics before and after routing."""
        ideal = self.analyze_circuit(unrouted)
        real = self.analyze_routing(routed)
        return {
            "ideal_locality": ideal.locality_score,
            "routed_locality": real.locality_score,
            "movement_gates_added": real.movement_gates - ideal.movement_gates,
            "hops": real.total_hops,
            "moved_logical_qubits": real.moved_qubit_count(),
        }
