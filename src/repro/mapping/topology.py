"""Physical qubit topologies.

A :class:`Topology` is an undirected connectivity graph over physical qubit
sites.  Two-qubit gates may only be applied across an edge; everything else
must be routed.  Factory functions provide the layouts discussed in the
paper: linear chains, 2-D nearest-neighbour grids, the 7- and 17-qubit
superconducting surface-code layouts, and the unconstrained fully-connected
graph used with perfect qubits.
"""

from __future__ import annotations

import networkx as nx


class Topology:
    """Connectivity graph of a quantum chip."""

    def __init__(self, graph: nx.Graph, name: str = "custom"):
        if graph.number_of_nodes() == 0:
            raise ValueError("topology needs at least one qubit site")
        self.graph = graph
        self.name = name
        self._distances: dict[int, dict[int, int]] | None = None

    @property
    def num_qubits(self) -> int:
        return self.graph.number_of_nodes()

    def neighbours(self, site: int) -> list[int]:
        return sorted(self.graph.neighbors(site))

    def are_adjacent(self, site_a: int, site_b: int) -> bool:
        return self.graph.has_edge(site_a, site_b)

    def edges(self) -> list[tuple[int, int]]:
        return sorted(tuple(sorted(e)) for e in self.graph.edges())

    def distance(self, site_a: int, site_b: int) -> int:
        """Hop distance between two sites (0 for the same site)."""
        if self._distances is None:
            self._distances = dict(nx.all_pairs_shortest_path_length(self.graph))
        try:
            return self._distances[site_a][site_b]
        except KeyError as exc:
            raise ValueError(f"no path between sites {site_a} and {site_b}") from exc

    def shortest_path(self, site_a: int, site_b: int) -> list[int]:
        return nx.shortest_path(self.graph, site_a, site_b)

    def diameter(self) -> int:
        return nx.diameter(self.graph)

    def average_degree(self) -> float:
        return 2.0 * self.graph.number_of_edges() / self.num_qubits

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Topology({self.name!r}, qubits={self.num_qubits}, edges={self.graph.number_of_edges()})"


def linear_topology(num_qubits: int) -> Topology:
    """1-D chain: qubit i is connected to i+1 only."""
    graph = nx.path_graph(num_qubits)
    return Topology(graph, name=f"linear_{num_qubits}")


def grid_topology(rows: int, cols: int) -> Topology:
    """2-D nearest-neighbour lattice, the layout assumed for surface codes."""
    grid = nx.grid_2d_graph(rows, cols)
    mapping = {(r, c): r * cols + c for r in range(rows) for c in range(cols)}
    graph = nx.relabel_nodes(grid, mapping)
    return Topology(graph, name=f"grid_{rows}x{cols}")


def fully_connected_topology(num_qubits: int) -> Topology:
    """All-to-all connectivity: the perfect-qubit / simulator abstraction."""
    graph = nx.complete_graph(num_qubits)
    return Topology(graph, name=f"full_{num_qubits}")


def surface7_topology() -> Topology:
    """7-qubit superconducting layout (Surface-7 style plaquette).

    Connectivity follows the two-row brick pattern used by the Delft
    superconducting devices: a central data/ancilla plaquette where each
    qubit couples to 2-4 neighbours.
    """
    edges = [
        (0, 2), (0, 3),
        (1, 3), (1, 4),
        (2, 5), (3, 5), (3, 6), (4, 6),
        (2, 3), (3, 4),
    ]
    graph = nx.Graph(edges)
    return Topology(graph, name="surface7")


def surface17_topology() -> Topology:
    """17-qubit surface-code layout (distance-3 planar code, Surface-17).

    Qubits are arranged on a 2-D diagonal lattice; we model it as the
    standard 17-site graph with degree 2-4 connectivity.
    """
    # Data qubits 0-8 on a 3x3 grid, ancillas 9-16 between them.
    edges = []
    # X/Z ancillas each couple to 2 or 4 surrounding data qubits.
    ancilla_plaquettes = {
        9: (0, 1),
        10: (1, 2, 4, 5),
        11: (3, 4, 0, 1),
        12: (4, 5, 7, 8),
        13: (3, 4, 6, 7),
        14: (6, 7),
        15: (2, 5),
        16: (3, 6),
    }
    for ancilla, data_qubits in ancilla_plaquettes.items():
        for data in data_qubits:
            edges.append((ancilla, data))
    graph = nx.Graph(edges)
    return Topology(graph, name="surface17")


def ibm_heavy_hex_like(num_qubits: int = 20) -> Topology:
    """A reduced heavy-hexagon-like lattice for the 20-qubit device comparisons."""
    graph = nx.Graph()
    graph.add_nodes_from(range(num_qubits))
    # Rows of 5 with sparse vertical couplers (heavy-hex flavour).
    cols = 5
    rows = (num_qubits + cols - 1) // cols
    for r in range(rows):
        for c in range(cols):
            idx = r * cols + c
            if idx >= num_qubits:
                break
            if c + 1 < cols and idx + 1 < num_qubits:
                graph.add_edge(idx, idx + 1)
            if r + 1 < rows and (c % 2 == r % 2) and idx + cols < num_qubits:
                graph.add_edge(idx, idx + cols)
    return Topology(graph, name=f"heavy_hex_{num_qubits}")
