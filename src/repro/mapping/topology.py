"""Physical qubit topologies.

A :class:`Topology` is an undirected connectivity graph over physical qubit
sites.  Two-qubit gates may only be applied across an edge; everything else
must be routed.  Factory functions provide the layouts discussed in the
paper: linear chains, 2-D nearest-neighbour grids, the 7- and 17-qubit
superconducting surface-code layouts, and the unconstrained fully-connected
graph used with perfect qubits.

Distance queries are the router's hot path, so they never touch the
networkx graph at query time:

* **grid/linear layouts** answer ``distance``/``shortest_path`` in closed
  form (Manhattan distance and a row-then-column staircase walk) from the
  ``grid_shape`` metadata their factories attach, with no per-pair storage
  at all — this is what lets a 32x32 (thousand-site) lattice route a
  depth-50 circuit without ever materialising an all-pairs table;
* **irregular layouts** lazily build one vectorized ``numpy`` distance
  matrix (``int32``, ``-1`` for unreachable pairs) via a batched BFS, a
  dense array two orders of magnitude cheaper to build and query than the
  previous O(V^2) dict-of-dicts from ``nx.all_pairs_shortest_path_length``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np


def _bfs_distance_matrix(graph: nx.Graph, num_nodes: int) -> np.ndarray:
    """All-pairs hop distances as a dense ``int32`` matrix (-1 = unreachable)."""
    adjacency = nx.to_numpy_array(graph, nodelist=range(num_nodes), dtype=np.float32)
    try:
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import shortest_path

        hops = shortest_path(csr_matrix(adjacency), method="D", unweighted=True)
        matrix = np.where(np.isinf(hops), -1, hops).astype(np.int32)
        return matrix
    except ImportError:  # pragma: no cover - scipy is in the standard image
        # Vectorized frontier BFS: one float32 matmul per BFS level expands
        # every source's frontier at once.
        matrix = np.full((num_nodes, num_nodes), -1, dtype=np.int32)
        np.fill_diagonal(matrix, 0)
        reached = np.eye(num_nodes, dtype=bool)
        frontier = np.eye(num_nodes, dtype=np.float32)
        level = 0
        while True:
            level += 1
            frontier = np.where((frontier @ adjacency) > 0, np.float32(1.0), np.float32(0.0))
            fresh = (frontier > 0) & ~reached
            if not fresh.any():
                return matrix
            matrix[fresh] = level
            reached |= fresh
            frontier = fresh.astype(np.float32)


class Topology:
    """Connectivity graph of a quantum chip.

    ``grid_shape`` marks a row-major 2-D lattice (``(rows, cols)``; a linear
    chain is ``(1, n)``): when set, distance and shortest-path queries are
    answered in closed form instead of from the graph.
    """

    def __init__(
        self,
        graph: nx.Graph,
        name: str = "custom",
        grid_shape: tuple[int, int] | None = None,
    ):
        if graph.number_of_nodes() == 0:
            raise ValueError("topology needs at least one qubit site")
        self.graph = graph
        self.name = name
        self.grid_shape = grid_shape
        self._distance_matrix: np.ndarray | None = None
        self._neighbour_lists: list[list[int]] | None = None

    @property
    def num_qubits(self) -> int:
        return self.graph.number_of_nodes()

    def neighbours(self, site: int) -> list[int]:
        """Sorted adjacent sites (cached: the router queries these per SWAP)."""
        if self._neighbour_lists is None:
            self._neighbour_lists = [
                sorted(self.graph.neighbors(node)) for node in range(self.num_qubits)
            ]
        return self._neighbour_lists[site]

    def are_adjacent(self, site_a: int, site_b: int) -> bool:
        if self.grid_shape is not None:
            return self._grid_distance(site_a, site_b) == 1
        return self.graph.has_edge(site_a, site_b)

    def edges(self) -> list[tuple[int, int]]:
        return sorted(tuple(sorted(e)) for e in self.graph.edges())

    # ------------------------------------------------------------------ #
    # Distance queries
    # ------------------------------------------------------------------ #
    def _grid_distance(self, site_a: int, site_b: int) -> int:
        cols = self.grid_shape[1]
        return abs(site_a // cols - site_b // cols) + abs(site_a % cols - site_b % cols)

    @property
    def distance_matrix(self) -> np.ndarray:
        """Dense all-pairs hop-distance matrix (``int32``, -1 = unreachable)."""
        if self._distance_matrix is None:
            if self.grid_shape is not None:
                cols = self.grid_shape[1]
                sites = np.arange(self.num_qubits)
                rows_of = sites // cols
                cols_of = sites % cols
                self._distance_matrix = (
                    np.abs(rows_of[:, None] - rows_of[None, :])
                    + np.abs(cols_of[:, None] - cols_of[None, :])
                ).astype(np.int32)
            else:
                self._distance_matrix = _bfs_distance_matrix(self.graph, self.num_qubits)
        return self._distance_matrix

    def distance(self, site_a: int, site_b: int) -> int:
        """Hop distance between two sites (0 for the same site)."""
        if self.grid_shape is not None:
            return self._grid_distance(site_a, site_b)
        hops = int(self.distance_matrix[site_a, site_b])
        if hops < 0:
            raise ValueError(f"no path between sites {site_a} and {site_b}")
        return hops

    def shortest_path(self, site_a: int, site_b: int) -> list[int]:
        """One shortest site path from ``site_a`` to ``site_b`` (inclusive)."""
        if self.grid_shape is not None:
            cols = self.grid_shape[1]
            row, col = divmod(site_a, cols)
            row_b, col_b = divmod(site_b, cols)
            path = [site_a]
            while row != row_b:
                row += 1 if row_b > row else -1
                path.append(row * cols + col)
            while col != col_b:
                col += 1 if col_b > col else -1
                path.append(row * cols + col)
            return path
        return nx.shortest_path(self.graph, site_a, site_b)

    def diameter(self) -> int:
        if self.grid_shape is not None:
            rows, cols = self.grid_shape
            return (rows - 1) + (cols - 1)
        matrix = self.distance_matrix
        if (matrix < 0).any():
            raise nx.NetworkXError("graph is not connected: diameter undefined")
        return int(matrix.max())

    def average_degree(self) -> float:
        return 2.0 * self.graph.number_of_edges() / self.num_qubits

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Topology({self.name!r}, qubits={self.num_qubits}, "
            f"edges={self.graph.number_of_edges()})"
        )


def linear_topology(num_qubits: int) -> Topology:
    """1-D chain: qubit i is connected to i+1 only."""
    graph = nx.path_graph(num_qubits)
    return Topology(graph, name=f"linear_{num_qubits}", grid_shape=(1, num_qubits))


def grid_topology(rows: int, cols: int) -> Topology:
    """2-D nearest-neighbour lattice, the layout assumed for surface codes.

    Scales to thousand-site lattices: distance queries are closed-form
    Manhattan arithmetic, so no all-pairs structure is ever built.
    """
    grid = nx.grid_2d_graph(rows, cols)
    mapping = {(r, c): r * cols + c for r in range(rows) for c in range(cols)}
    graph = nx.relabel_nodes(grid, mapping)
    return Topology(graph, name=f"grid_{rows}x{cols}", grid_shape=(rows, cols))


def square_grid_topology(num_qubits: int) -> Topology:
    """Smallest square 2-D lattice with at least ``num_qubits`` sites.

    Convenience factory for the compile-and-map sweeps: ``num_qubits=1000``
    yields the 32x32 lattice of the scaling benchmarks.
    """
    side = 1
    while side * side < num_qubits:
        side += 1
    return grid_topology(side, side)


def fully_connected_topology(num_qubits: int) -> Topology:
    """All-to-all connectivity: the perfect-qubit / simulator abstraction."""
    graph = nx.complete_graph(num_qubits)
    return Topology(graph, name=f"full_{num_qubits}")


def surface7_topology() -> Topology:
    """7-qubit superconducting layout (Surface-7 style plaquette).

    Connectivity follows the two-row brick pattern used by the Delft
    superconducting devices: a central data/ancilla plaquette where each
    qubit couples to 2-4 neighbours.
    """
    edges = [(0, 2), (0, 3), (1, 3), (1, 4), (2, 5), (3, 5), (3, 6), (4, 6), (2, 3), (3, 4)]
    graph = nx.Graph(edges)
    return Topology(graph, name="surface7")


def surface17_topology() -> Topology:
    """17-qubit surface-code layout (distance-3 planar code, Surface-17).

    Qubits are arranged on a 2-D diagonal lattice; we model it as the
    standard 17-site graph with degree 2-4 connectivity.
    """
    # Data qubits 0-8 on a 3x3 grid, ancillas 9-16 between them.
    edges = []
    # X/Z ancillas each couple to 2 or 4 surrounding data qubits.
    ancilla_plaquettes = {
        9: (0, 1),
        10: (1, 2, 4, 5),
        11: (3, 4, 0, 1),
        12: (4, 5, 7, 8),
        13: (3, 4, 6, 7),
        14: (6, 7),
        15: (2, 5),
        16: (3, 6),
    }
    for ancilla, data_qubits in ancilla_plaquettes.items():
        for data in data_qubits:
            edges.append((ancilla, data))
    graph = nx.Graph(edges)
    return Topology(graph, name="surface17")


def ibm_heavy_hex_like(num_qubits: int = 20) -> Topology:
    """A reduced heavy-hexagon-like lattice for the 20-qubit device comparisons."""
    graph = nx.Graph()
    graph.add_nodes_from(range(num_qubits))
    # Rows of 5 with sparse vertical couplers (heavy-hex flavour).
    cols = 5
    rows = (num_qubits + cols - 1) // cols
    for r in range(rows):
        for c in range(cols):
            idx = r * cols + c
            if idx >= num_qubits:
                break
            if c + 1 < cols and idx + 1 < num_qubits:
                graph.add_edge(idx, idx + 1)
            if r + 1 < rows and (c % 2 == r % 2) and idx + cols < num_qubits:
                graph.add_edge(idx, idx + cols)
    return Topology(graph, name=f"heavy_hex_{num_qubits}")
