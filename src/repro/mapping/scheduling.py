"""Operation scheduling (ASAP / ALAP list scheduling).

The scheduler assigns a start cycle (in nanoseconds) to every operation of a
circuit, exploiting the "inherent parallelism of the logical qubits" the
paper describes: operations on disjoint qubits may be issued in the same
cycle, subject to optional resource constraints such as a limited number of
parallel two-qubit gates (a stand-in for the limited number of control
frequencies / AWG channels of a real device).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.circuit import Circuit
from repro.core.dag import CircuitDAG
from repro.core.operations import Barrier, ConditionalGate, GateOperation, Operation


@dataclass
class ScheduledOperation:
    """An operation with assigned start/end times (ns)."""

    operation: Operation
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class Schedule:
    """Timed schedule of a circuit."""

    circuit: Circuit
    entries: list[ScheduledOperation] = field(default_factory=list)
    policy: str = "asap"

    @property
    def makespan(self) -> int:
        """Total execution latency in nanoseconds."""
        return max((entry.end for entry in self.entries), default=0)

    def cycles(self) -> dict[int, list[ScheduledOperation]]:
        """Group entries by start time."""
        grouped: dict[int, list[ScheduledOperation]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.start, []).append(entry)
        return dict(sorted(grouped.items()))

    def parallelism(self) -> float:
        """Average number of operations issued per occupied start time."""
        cycles = self.cycles()
        if not cycles:
            return 0.0
        return len(self.entries) / len(cycles)

    def validate(self, dag: CircuitDAG | None = None) -> None:
        """Check that no qubit executes two operations at once and deps hold.

        Dependency order is verified against the circuit's
        :class:`~repro.core.dag.CircuitDAG` — including the classical
        RAW/WAR/WAW hazard edges — so a schedule that lets a measurement
        overwrite a bit before the conditional gate that reads it is
        rejected, not silently accepted.
        """
        busy: dict[int, list[tuple[int, int]]] = {}
        for entry in self.entries:
            if isinstance(entry.operation, Barrier):
                continue
            for qubit in entry.operation.qubits:
                for start, end in busy.get(qubit, []):
                    if entry.start < end and start < entry.end:
                        raise ValueError(
                            f"qubit {qubit} double-booked: [{start},{end}) vs "
                            f"[{entry.start},{entry.end})"
                        )
                busy.setdefault(qubit, []).append((entry.start, entry.end))
        if dag is None:
            dag = CircuitDAG(self.circuit)
        # Pair DAG nodes with entries by operation identity; repeated
        # operation objects (e.g. flattened kernel iterations) pair in
        # start-time order, the only order a valid schedule can use.
        entries_for: dict[int, list[ScheduledOperation]] = {}
        for entry in sorted(self.entries, key=lambda item: item.start):
            entries_for.setdefault(id(entry.operation), []).append(entry)
        scheduled: dict[int, ScheduledOperation] = {}
        for node in range(dag.num_nodes()):
            bucket = entries_for.get(id(dag.operation(node)))
            if bucket:
                scheduled[node] = bucket.pop(0)
        for pred, succ in dag.graph.edges:
            if pred not in scheduled or succ not in scheduled:
                continue
            if scheduled[succ].start < scheduled[pred].end:
                raise ValueError(
                    f"dependency violated: {dag.operation(succ).name!r} starts at "
                    f"{scheduled[succ].start} before {dag.operation(pred).name!r} "
                    f"ends at {scheduled[pred].end}"
                )


class Scheduler:
    """ASAP/ALAP list scheduler with an optional two-qubit-gate issue limit."""

    def __init__(self, policy: str = "asap", max_parallel_two_qubit: int | None = None):
        if policy not in ("asap", "alap"):
            raise ValueError("policy must be 'asap' or 'alap'")
        self.policy = policy
        self.max_parallel_two_qubit = max_parallel_two_qubit

    def schedule(self, circuit: Circuit) -> Schedule:
        dag = CircuitDAG(circuit)
        if self.policy == "asap":
            start_times = self._asap_times(dag)
        else:
            start_times = self._alap_times(dag)
        if self.max_parallel_two_qubit is not None:
            start_times = self._enforce_issue_limit(dag, start_times)
        entries = [
            ScheduledOperation(
                operation=dag.operation(node),
                start=start,
                end=start + dag.operation(node).duration,
            )
            for node, start in sorted(start_times.items(), key=lambda kv: (kv[1], kv[0]))
        ]
        schedule = Schedule(circuit=circuit, entries=entries, policy=self.policy)
        schedule.validate(dag)
        return schedule

    # ------------------------------------------------------------------ #
    def _asap_times(self, dag: CircuitDAG) -> dict[int, int]:
        times: dict[int, int] = {}
        for node in dag.topological_order():
            preds = dag.predecessors(node)
            times[node] = max(
                (times[p] + dag.operation(p).duration for p in preds), default=0
            )
        return times

    def _alap_times(self, dag: CircuitDAG) -> dict[int, int]:
        asap = self._asap_times(dag)
        total = max(
            (asap[n] + dag.operation(n).duration for n in asap), default=0
        )
        times: dict[int, int] = {}
        for node in reversed(dag.topological_order()):
            succs = dag.successors(node)
            duration = dag.operation(node).duration
            if not succs:
                times[node] = total - duration
            else:
                times[node] = min(times[s] for s in succs) - duration
        # Normalise so the earliest operation starts at 0.
        offset = min(times.values(), default=0)
        return {n: t - offset for n, t in times.items()}

    def _enforce_issue_limit(self, dag: CircuitDAG, times: dict[int, int]) -> dict[int, int]:
        """Delay two-qubit gates so at most N are issued at the same time."""
        limit = self.max_parallel_two_qubit
        assert limit is not None
        adjusted = dict(times)
        changed = True
        while changed:
            changed = False
            by_start: dict[int, list[int]] = {}
            for node, start in adjusted.items():
                op = dag.operation(node)
                if isinstance(op, (GateOperation, ConditionalGate)) and len(op.qubits) == 2:
                    by_start.setdefault(start, []).append(node)
            for start, nodes in sorted(by_start.items()):
                if len(nodes) <= limit:
                    continue
                for node in sorted(nodes)[limit:]:
                    adjusted[node] = start + dag.operation(node).duration
                    changed = True
            if changed:
                adjusted = self._repair_dependencies(dag, adjusted)
        return adjusted

    def _repair_dependencies(self, dag: CircuitDAG, times: dict[int, int]) -> dict[int, int]:
        repaired = dict(times)
        for node in dag.topological_order():
            earliest = max(
                (repaired[p] + dag.operation(p).duration for p in dag.predecessors(node)),
                default=0,
            )
            if repaired[node] < earliest:
                repaired[node] = earliest
        return repaired
