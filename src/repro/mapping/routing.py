"""Qubit-state routing: SWAP insertion for nearest-neighbour constraints.

When a two-qubit gate targets logical qubits whose physical sites are not
adjacent, the router inserts SWAP operations along a shortest path until
they meet — the "MOVE operation for the run-time routing logic" of the
paper.  The router keeps the evolving logical→physical map, so later gates
see the updated placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.core.operations import Barrier, ClassicalOperation, GateOperation, Measurement
from repro.mapping.placement import trivial_placement
from repro.mapping.topology import Topology


@dataclass
class RoutingResult:
    """Output of the router."""

    circuit: Circuit
    initial_placement: dict[int, int]
    final_placement: dict[int, int]
    swaps_inserted: int = 0
    original_gate_count: int = 0

    @property
    def overhead(self) -> float:
        """Fractional gate-count increase caused by routing."""
        if self.original_gate_count == 0:
            return 0.0
        return self.circuit.gate_count() / self.original_gate_count - 1.0


class Router:
    """Shortest-path SWAP-insertion router."""

    def __init__(self, topology: Topology, use_lookahead: bool = True):
        self.topology = topology
        self.use_lookahead = use_lookahead

    def route(
        self,
        circuit: Circuit,
        initial_placement: dict[int, int] | None = None,
    ) -> RoutingResult:
        """Insert SWAPs so every two-qubit gate acts on adjacent physical sites.

        The returned circuit is expressed over *physical* qubit indices and
        is therefore directly executable on the constrained device/simulator.
        """
        if circuit.num_qubits > self.topology.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits, topology offers "
                f"{self.topology.num_qubits}"
            )
        placement = dict(initial_placement or trivial_placement(circuit, self.topology))
        logical_to_physical = dict(placement)
        routed = Circuit(
            self.topology.num_qubits,
            name=f"{circuit.name}_routed",
            num_bits=max(circuit.num_bits, self.topology.num_qubits),
        )
        swaps = 0

        for op in circuit.operations:
            if isinstance(op, GateOperation) and len(op.qubits) == 2:
                swaps += self._bring_adjacent(op.qubits[0], op.qubits[1], logical_to_physical, routed)
                routed.append(op.remap(logical_to_physical))
            elif isinstance(op, (GateOperation, Measurement)):
                routed.append(op.remap(logical_to_physical))
            elif isinstance(op, Barrier):
                routed.append(Barrier(tuple(sorted(logical_to_physical[q] for q in op.qubits))))
            elif isinstance(op, ClassicalOperation):
                routed.append(op)

        return RoutingResult(
            circuit=routed,
            initial_placement=placement,
            final_placement=logical_to_physical,
            swaps_inserted=swaps,
            original_gate_count=circuit.gate_count(),
        )

    # ------------------------------------------------------------------ #
    def _bring_adjacent(
        self,
        logical_a: int,
        logical_b: int,
        logical_to_physical: dict[int, int],
        routed: Circuit,
    ) -> int:
        """Insert SWAPs until the two logical qubits are on adjacent sites."""
        site_a = logical_to_physical[logical_a]
        site_b = logical_to_physical[logical_b]
        if self.topology.are_adjacent(site_a, site_b):
            return 0
        path = self.topology.shortest_path(site_a, site_b)
        swaps = 0
        physical_to_logical = {p: l for l, p in logical_to_physical.items()}
        if self.use_lookahead and len(path) > 3:
            # Walk both endpoints towards the middle of the path so the two
            # swap chains are independent and can be issued in parallel:
            # A ends on path[meet], B ends on path[meet + 1].
            meet = (len(path) - 2) // 2
            forward = path[: meet + 1]
            backward = list(reversed(path[meet + 1:]))
            swaps += self._walk(forward, logical_to_physical, physical_to_logical, routed, stop_short=False)
            swaps += self._walk(backward, logical_to_physical, physical_to_logical, routed, stop_short=False)
        else:
            # Walk only qubit A along the path until it sits next to B.
            swaps += self._walk(path, logical_to_physical, physical_to_logical, routed, stop_short=True)
        return swaps

    def _walk(
        self,
        path: list[int],
        logical_to_physical: dict[int, int],
        physical_to_logical: dict[int, int],
        routed: Circuit,
        stop_short: bool = True,
    ) -> int:
        """Swap the state at path[0] along the path, stopping one hop early."""
        swaps = 0
        end = len(path) - 1 if stop_short else len(path)
        for index in range(end - 1):
            here, there = path[index], path[index + 1]
            routed.swap(here, there)
            swaps += 1
            logical_here = physical_to_logical.get(here)
            logical_there = physical_to_logical.get(there)
            if logical_here is not None:
                logical_to_physical[logical_here] = there
            if logical_there is not None:
                logical_to_physical[logical_there] = here
            physical_to_logical[here], physical_to_logical[there] = (
                logical_there,
                logical_here,
            )
        return swaps


def decompose_swaps(circuit: Circuit) -> Circuit:
    """Rewrite SWAP gates as three CNOTs (for devices without native SWAP)."""
    result = Circuit(circuit.num_qubits, name=f"{circuit.name}_noswap", num_bits=circuit.num_bits)
    for op in circuit.operations:
        if isinstance(op, GateOperation) and op.name == "swap":
            a, b = op.qubits
            result.cnot(a, b).cnot(b, a).cnot(a, b)
        else:
            result.append(op)
    return result
