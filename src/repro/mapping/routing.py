"""Qubit-state routing: SWAP insertion for nearest-neighbour constraints.

When a two-qubit gate targets logical qubits whose physical sites are not
adjacent, the router inserts SWAP operations until they meet — the "MOVE
operation for the run-time routing logic" of the paper.  The router keeps
the evolving logical→physical map, so later gates see the updated placement.

The router is **hybrid-aware**: a :class:`ConditionalGate` is routed exactly
like its underlying gate — a two-qubit conditional is brought adjacent and a
single-qubit conditional has its operand remapped through the live placement
— and its classical condition bit rides along untouched, so teleportation
and QEC-feedback programs survive compilation (they previously lost every
conditional operation).

Two SWAP-selection modes are provided:

* ``"path"`` — walk along one shortest path (optionally from both endpoints
  towards the middle so the two swap chains can issue in parallel);
* ``"sabre"`` — SABRE-style lookahead scoring: each candidate SWAP on an
  edge incident to the gate's sites is scored by the distance gain it gives
  the current gate plus an exponentially decaying gain over a window of
  future two-qubit gates, so the router trades a slightly longer route now
  for fewer SWAPs later instead of committing to one shortest path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.core.operations import (
    Barrier,
    ClassicalOperation,
    ConditionalGate,
    GateOperation,
    Measurement,
)
from repro.mapping.placement import trivial_placement
from repro.mapping.topology import Topology

#: Supported SWAP-selection modes.
ROUTER_MODES = ("path", "sabre")


@dataclass
class RoutingResult:
    """Output of the router."""

    circuit: Circuit
    initial_placement: dict[int, int]
    final_placement: dict[int, int]
    swaps_inserted: int = 0
    original_gate_count: int = 0
    mode: str = "path"

    @property
    def overhead(self) -> float:
        """Fractional gate-count increase caused by routing."""
        if self.original_gate_count == 0:
            return 0.0
        return self.circuit.gate_count() / self.original_gate_count - 1.0


def _is_two_qubit(op) -> bool:
    """Operations the router must bring adjacent (plain and conditional gates)."""
    return isinstance(op, (GateOperation, ConditionalGate)) and len(op.qubits) == 2


class Router:
    """SWAP-insertion router with shortest-path and SABRE-lookahead modes."""

    def __init__(
        self,
        topology: Topology,
        use_lookahead: bool = True,
        mode: str = "path",
        lookahead_window: int = 20,
        decay: float = 0.7,
    ):
        if mode not in ROUTER_MODES:
            raise ValueError(f"mode must be one of {ROUTER_MODES}, got {mode!r}")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if lookahead_window < 0:
            raise ValueError("lookahead_window must be >= 0")
        self.topology = topology
        self.use_lookahead = use_lookahead
        self.mode = mode
        self.lookahead_window = lookahead_window
        self.decay = decay
        self._decay_powers = tuple(decay ** (k + 1) for k in range(lookahead_window))

    def route(
        self,
        circuit: Circuit,
        initial_placement: dict[int, int] | None = None,
    ) -> RoutingResult:
        """Insert SWAPs so every two-qubit gate acts on adjacent physical sites.

        The returned circuit is expressed over *physical* qubit indices and
        is therefore directly executable on the constrained device/simulator.
        Classical bits are never rewritten: measurements and conditional
        gates keep their original bit operands, so the routed circuit's
        histogram is keyed identically to the unmapped circuit's.
        """
        if circuit.num_qubits > self.topology.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits, topology offers "
                f"{self.topology.num_qubits}"
            )
        placement = dict(initial_placement or trivial_placement(circuit, self.topology))
        logical_to_physical = dict(placement)
        physical_to_logical = {p: l for l, p in logical_to_physical.items()}
        routed = Circuit(
            self.topology.num_qubits,
            name=f"{circuit.name}_routed",
            num_bits=max(circuit.num_bits, self.topology.num_qubits),
        )
        # Logical operand pairs of every two-qubit operation, in program
        # order: the SABRE scorer reads a decaying window of this list.
        future_pairs = [op.qubits for op in circuit.operations if _is_two_qubit(op)]
        pair_cursor = 0
        swaps = 0

        for op in circuit.operations:
            if _is_two_qubit(op):
                pair_cursor += 1
                swaps += self._bring_adjacent(
                    op.qubits[0],
                    op.qubits[1],
                    logical_to_physical,
                    physical_to_logical,
                    routed,
                    future_pairs[pair_cursor : pair_cursor + self.lookahead_window],
                )
                routed.append(op.remap(logical_to_physical))
            elif isinstance(op, (GateOperation, ConditionalGate, Measurement)):
                routed.append(op.remap(logical_to_physical))
            elif isinstance(op, Barrier):
                routed.append(Barrier(tuple(sorted(logical_to_physical[q] for q in op.qubits))))
            elif isinstance(op, ClassicalOperation):
                routed.append(op.remap(logical_to_physical))

        return RoutingResult(
            circuit=routed,
            initial_placement=placement,
            final_placement=logical_to_physical,
            swaps_inserted=swaps,
            original_gate_count=circuit.gate_count(),
            mode=self.mode,
        )

    # ------------------------------------------------------------------ #
    def _bring_adjacent(
        self,
        logical_a: int,
        logical_b: int,
        logical_to_physical: dict[int, int],
        physical_to_logical: dict[int, int],
        routed: Circuit,
        future_pairs: list[tuple[int, ...]],
    ) -> int:
        """Insert SWAPs until the two logical qubits are on adjacent sites."""
        site_a = logical_to_physical[logical_a]
        site_b = logical_to_physical[logical_b]
        if self.topology.are_adjacent(site_a, site_b):
            return 0
        if self.mode == "sabre":
            return self._route_sabre(
                logical_a, logical_b, logical_to_physical, physical_to_logical, routed, future_pairs
            )
        return self._route_path(site_a, site_b, logical_to_physical, physical_to_logical, routed)

    # ------------------------------------------------------------------ #
    # Shortest-path mode
    # ------------------------------------------------------------------ #
    def _route_path(
        self,
        site_a: int,
        site_b: int,
        logical_to_physical: dict[int, int],
        physical_to_logical: dict[int, int],
        routed: Circuit,
    ) -> int:
        path = self.topology.shortest_path(site_a, site_b)
        swaps = 0
        if self.use_lookahead and len(path) > 3:
            # Walk both endpoints towards the middle of the path so the two
            # swap chains are independent and can be issued in parallel:
            # A ends on path[meet], B ends on path[meet + 1].
            meet = (len(path) - 2) // 2
            forward = path[: meet + 1]
            backward = list(reversed(path[meet + 1 :]))
            swaps += self._walk(
                forward, logical_to_physical, physical_to_logical, routed, stop_short=False
            )
            swaps += self._walk(
                backward, logical_to_physical, physical_to_logical, routed, stop_short=False
            )
        else:
            # Walk only qubit A along the path until it sits next to B.
            swaps += self._walk(
                path, logical_to_physical, physical_to_logical, routed, stop_short=True
            )
        return swaps

    def _walk(
        self,
        path: list[int],
        logical_to_physical: dict[int, int],
        physical_to_logical: dict[int, int],
        routed: Circuit,
        stop_short: bool = True,
    ) -> int:
        """Swap the state at path[0] along the path, stopping one hop early."""
        swaps = 0
        end = len(path) - 1 if stop_short else len(path)
        for index in range(end - 1):
            self._apply_swap(
                path[index], path[index + 1], logical_to_physical, physical_to_logical, routed
            )
            swaps += 1
        return swaps

    # ------------------------------------------------------------------ #
    # SABRE lookahead mode
    # ------------------------------------------------------------------ #
    def _route_sabre(
        self,
        logical_a: int,
        logical_b: int,
        logical_to_physical: dict[int, int],
        physical_to_logical: dict[int, int],
        routed: Circuit,
        future_pairs: list[tuple[int, ...]],
    ) -> int:
        topology = self.topology
        swaps = 0
        last_swap: tuple[int, int] | None = None
        initial = topology.distance(logical_to_physical[logical_a], logical_to_physical[logical_b])
        budget = 4 * initial + 8
        while True:
            site_a = logical_to_physical[logical_a]
            site_b = logical_to_physical[logical_b]
            if topology.are_adjacent(site_a, site_b):
                return swaps
            if swaps >= budget:
                # The decaying score admits locally neutral moves; if they
                # ever stop converging, finish deterministically along one
                # shortest path.
                return swaps + self._route_path(
                    site_a, site_b, logical_to_physical, physical_to_logical, routed
                )
            choice = self._best_swap(site_a, site_b, logical_to_physical, future_pairs, last_swap)
            self._apply_swap(choice[0], choice[1], logical_to_physical, physical_to_logical, routed)
            last_swap = choice
            swaps += 1

    def _best_swap(
        self,
        site_a: int,
        site_b: int,
        logical_to_physical: dict[int, int],
        future_pairs: list[tuple[int, ...]],
        last_swap: tuple[int, int] | None,
    ) -> tuple[int, int]:
        """Highest-scoring SWAP on an edge incident to the gate's sites.

        Score = distance gain for the current gate (weight 1) plus
        ``decay**(k + 1)`` times the gain for the k-th upcoming two-qubit
        gate.  Ties break towards the larger current-gate gain, then the
        smallest edge, so routing is fully deterministic.
        """
        topology = self.topology
        distance = topology.distance
        # Pre-resolve the future pairs' sites once per selection, indexed by
        # site: a SWAP across (u, v) only changes the distance of pairs that
        # touch u or v, so everything else scores zero and is never visited.
        touching: dict[int, list[tuple[int, int, float]]] = {}
        for k, (qa, qb) in enumerate(future_pairs):
            site_x = logical_to_physical[qa]
            site_y = logical_to_physical[qb]
            weight = self._decay_powers[k]
            touching.setdefault(site_x, []).append((site_x, site_y, weight))
            touching.setdefault(site_y, []).append((site_x, site_y, weight))
        base = distance(site_a, site_b)
        best_key: tuple[float, int, int, int] | None = None
        best_edge: tuple[int, int] | None = None
        for anchor in (site_a, site_b):
            for neighbour in topology.neighbours(anchor):
                edge = (anchor, neighbour) if anchor < neighbour else (neighbour, anchor)
                if edge == last_swap:
                    continue  # never immediately undo the previous SWAP
                gain = base - distance(self._moved(site_a, edge), self._moved(site_b, edge))
                score = float(gain)
                for site in edge:
                    for site_x, site_y, weight in touching.get(site, ()):
                        if site_x in edge and site_y in edge:
                            continue  # the pair spans the edge: distance unchanged
                        score += weight * (
                            distance(site_x, site_y)
                            - distance(self._moved(site_x, edge), self._moved(site_y, edge))
                        )
                key = (score, gain, -edge[0], -edge[1])
                if best_key is None or key > best_key:
                    best_key = key
                    best_edge = edge
        assert best_edge is not None  # every site has at least one neighbour
        return best_edge

    @staticmethod
    def _moved(site: int, edge: tuple[int, int]) -> int:
        """Where a state at ``site`` ends up after swapping across ``edge``."""
        if site == edge[0]:
            return edge[1]
        if site == edge[1]:
            return edge[0]
        return site

    # ------------------------------------------------------------------ #
    @staticmethod
    def _apply_swap(
        here: int,
        there: int,
        logical_to_physical: dict[int, int],
        physical_to_logical: dict[int, int],
        routed: Circuit,
    ) -> None:
        """Emit one SWAP and update both placement maps."""
        routed.swap(here, there)
        logical_here = physical_to_logical.get(here)
        logical_there = physical_to_logical.get(there)
        if logical_here is not None:
            logical_to_physical[logical_here] = there
        if logical_there is not None:
            logical_to_physical[logical_there] = here
        physical_to_logical[here], physical_to_logical[there] = logical_there, logical_here


def decompose_swaps(circuit: Circuit) -> Circuit:
    """Rewrite SWAP gates as three CNOTs (for devices without native SWAP)."""
    result = Circuit(circuit.num_qubits, name=f"{circuit.name}_noswap", num_bits=circuit.num_bits)
    for op in circuit.operations:
        if isinstance(op, GateOperation) and op.name == "swap":
            a, b = op.qubits
            result.cnot(a, b).cnot(b, a).cnot(a, b)
        else:
            result.append(op)
    return result
