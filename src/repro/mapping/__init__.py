"""Mapping of quantum circuits onto constrained qubit topologies.

Section 2.6 of the paper: real and realistic qubits live on a 2-D lattice
with nearest-neighbour-only interactions, so the compiler must place logical
qubits onto physical locations, route qubit states next to each other (by
inserting SWAP/MOVE operations) and schedule the resulting operations.
"""

from repro.mapping.topology import Topology, grid_topology, linear_topology, square_grid_topology, surface7_topology, surface17_topology, fully_connected_topology
from repro.mapping.placement import trivial_placement, greedy_placement
from repro.mapping.routing import Router, RoutingResult
from repro.mapping.scheduling import Scheduler, Schedule, ScheduledOperation
from repro.mapping.traffic import TrafficAnalyzer, TrafficReport

__all__ = [
    "Topology",
    "grid_topology",
    "linear_topology",
    "square_grid_topology",
    "surface7_topology",
    "surface17_topology",
    "fully_connected_topology",
    "trivial_placement",
    "greedy_placement",
    "Router",
    "RoutingResult",
    "Scheduler",
    "Schedule",
    "ScheduledOperation",
    "TrafficAnalyzer",
    "TrafficReport",
]
