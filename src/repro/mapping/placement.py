"""Initial placement of logical qubits onto physical sites.

The placement is a bijective map ``logical -> physical``.  Two strategies
are provided: the trivial identity placement and a greedy
interaction-graph-driven placement that puts strongly interacting logical
qubits on adjacent physical sites, which reduces the routing overhead
measured in experiment E11.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.core.circuit import Circuit
from repro.mapping.topology import Topology


def interaction_graph(circuit: Circuit) -> nx.Graph:
    """Weighted graph of two-qubit interactions in a circuit."""
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    for op in circuit.gate_operations():
        if len(op.qubits) == 2:
            a, b = op.qubits
            if graph.has_edge(a, b):
                graph[a][b]["weight"] += 1
            else:
                graph.add_edge(a, b, weight=1)
    return graph


def trivial_placement(circuit: Circuit, topology: Topology) -> dict[int, int]:
    """Identity placement: logical qubit i sits on physical site i."""
    if circuit.num_qubits > topology.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits but topology has {topology.num_qubits}"
        )
    return {q: q for q in range(circuit.num_qubits)}


def greedy_placement(circuit: Circuit, topology: Topology) -> dict[int, int]:
    """Greedy interaction-driven placement.

    Logical qubits are visited in decreasing order of interaction weight;
    each is placed on the free physical site that minimises the weighted
    distance to its already-placed interaction partners.  The candidate
    scan is one vectorized pass over the topology's distance matrix per
    qubit, so placing a handful of logical qubits on a thousand-site
    lattice costs milliseconds rather than a Python loop over every site.
    """
    if circuit.num_qubits > topology.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits but topology has {topology.num_qubits}"
        )
    interactions = interaction_graph(circuit)
    order = sorted(
        interactions.nodes,
        key=lambda n: -sum(d.get("weight", 1) for _, _, d in interactions.edges(n, data=True)),
    )
    matrix = topology.distance_matrix
    placement: dict[int, int] = {}
    free_sites = set(range(topology.num_qubits))
    free_mask = np.ones(topology.num_qubits, dtype=bool)

    for logical in order:
        placed_partners = [
            (other, interactions[logical][other]["weight"])
            for other in interactions.neighbors(logical)
            if other in placement
        ]
        if not placed_partners:
            # Seed: most-connected free physical site.
            site = max(
                sorted(free_sites),
                key=lambda s: len(set(topology.neighbours(s)) & free_sites),
            )
        else:
            # Weighted distance of every candidate to the placed partners;
            # unreachable pairs (-1 in the matrix) are barred, occupied
            # sites masked out.  argmin ties resolve to the lowest site
            # index, matching the scalar implementation.
            cost = np.zeros(topology.num_qubits, dtype=np.float64)
            for other, weight in placed_partners:
                row = matrix[placement[other]]
                cost += weight * np.where(row >= 0, row, np.inf)
            cost[~free_mask] = np.inf
            site = int(np.argmin(cost))
            if not np.isfinite(cost[site]):
                raise ValueError(
                    f"no reachable free site for logical qubit {logical}: the "
                    "topology is disconnected from its placed partners"
                )
        placement[logical] = site
        free_sites.discard(site)
        free_mask[site] = False

    return placement


def placement_cost(circuit: Circuit, topology: Topology, placement: dict[int, int]) -> int:
    """Total weighted distance of all two-qubit gates under a placement.

    A cost equal to the number of two-qubit gates means every interaction is
    already nearest-neighbour (distance 1).
    """
    total = 0
    for op in circuit.gate_operations():
        if len(op.qubits) == 2:
            a, b = op.qubits
            total += topology.distance(placement[a], placement[b])
    return total
