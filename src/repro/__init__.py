"""repro: a full-stack quantum accelerator in Python.

Reproduction of *"Quantum Computer Architecture: Towards Full-Stack Quantum
Accelerators"* (Bertels et al., DATE 2020): the complete accelerator stack —
application layer, OpenQL-style language and compiler, cQASM / eQASM
assembly levels, micro-architecture, mapping, QX-style simulation with
perfect and realistic qubits, quantum error correction, the annealing-based
accelerator class, and the worked accelerator applications (superconducting
control, quantum genome sequencing, TSP optimisation).

Quickstart
----------
>>> from repro.openql import Program, Compiler, perfect_platform
>>> from repro.qx import QXSimulator
>>> from repro.cqasm import cqasm_to_circuit
>>> platform = perfect_platform(2)
>>> program = Program("bell", platform)
>>> kernel = program.new_kernel("main")
>>> _ = kernel.h(0).cnot(0, 1).measure_all()
>>> result = Compiler().compile(program)
>>> counts = QXSimulator(seed=1).run(cqasm_to_circuit(result.cqasm), shots=100).counts
>>> sorted(counts) == ["00", "11"]
True
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "openql",
    "cqasm",
    "eqasm",
    "qx",
    "microarch",
    "mapping",
    "qec",
    "annealing",
    "algorithms",
    "apps",
    "accelerator",
]
