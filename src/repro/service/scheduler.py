"""Weighted-fair scheduling of shard work across service clients.

Classic stride scheduling over *shards*, not whole jobs: each client owns a
FIFO of runnable work units and a virtual time; picking always takes the
backlogged client with the smallest virtual time, then advances that time
by ``cost / weight``.  Shots are the cost metric, the client's priority is
its weight, so over any window each backlogged tenant receives pool shot
throughput proportional to its priority — a priority-2 client simulates
twice the shots of a priority-1 client, regardless of how many jobs either
has queued or how large those jobs are.

Because the unit is a shard (a few thousand shots), a giant sweep cannot
monopolise the pool: its shards interleave with everyone else's at shard
granularity.  An idle client that becomes backlogged re-enters at
``max(own vtime, global vclock)`` — the standard virtual-clock re-entry
that prevents saved-up idle time from being spent as a burst that starves
currently active clients.

Ties (equal virtual time, e.g. at cold start) break on the client name, so
the dispatch order of a given submission pattern is deterministic and
testable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any


@dataclass
class _ClientQueue:
    """One tenant's backlog and stride-scheduling state."""

    name: str
    weight: float
    vtime: float = 0.0
    units: deque = field(default_factory=deque)


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable piece of work: a shard task plus accounting info."""

    client: str
    cost: float
    item: Any


class FairScheduler:
    """Stride scheduler distributing shard units across weighted clients."""

    def __init__(self) -> None:
        self._clients: dict[str, _ClientQueue] = {}
        self._vclock = 0.0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, client: str, weight: float, item: Any, cost: float = 1.0) -> None:
        """Queue one work unit for ``client`` with the given shot cost."""
        if weight <= 0:
            raise ValueError(f"client {client!r}: weight must be > 0, got {weight}")
        queue = self._clients.get(client)
        if queue is None:
            queue = _ClientQueue(name=client, weight=weight, vtime=self._vclock)
            self._clients[client] = queue
        else:
            queue.weight = weight
            if not queue.units:
                # Idle re-entry: forfeit banked idle time instead of
                # spending it as a starvation burst.
                queue.vtime = max(queue.vtime, self._vclock)
        queue.units.append(WorkUnit(client=client, cost=max(cost, 1.0), item=item))
        self._size += 1

    def pop(self) -> WorkUnit | None:
        """Dequeue the next unit under weighted-fair order, or ``None``."""
        backlogged = [queue for queue in self._clients.values() if queue.units]
        if not backlogged:
            return None
        queue = min(backlogged, key=lambda candidate: (candidate.vtime, candidate.name))
        unit = queue.units.popleft()
        queue.vtime += unit.cost / queue.weight
        self._vclock = max(self._vclock, queue.vtime)
        self._size -= 1
        return unit

    def backlog(self) -> dict[str, int]:
        """Pending unit count per client (empty clients omitted)."""
        return {name: len(queue.units) for name, queue in self._clients.items() if queue.units}
