"""Synchronous NDJSON client for the experiment service.

A plain-``socket`` client (no asyncio) usable from scripts, tests, and
notebooks: connect over a unix socket or TCP, send one JSON request per
line, and iterate response lines.  Streaming requests yield events until
the job's terminal ``done``/``error`` event, after which the same
connection can issue further requests.
"""

from __future__ import annotations

import json
import socket
from collections.abc import Iterator

from repro.service.jobs import TERMINAL_EVENTS


class ServiceClient:
    """One connection to a running service daemon."""

    def __init__(
        self,
        socket_path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        timeout: float = 300.0,
    ) -> None:
        if socket_path is None and (host is None or port is None):
            raise ValueError("need socket_path or host+port")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    # ------------------------------------------------------------------ #
    def send(self, request: dict) -> None:
        self._file.write(json.dumps(request).encode("utf-8") + b"\n")
        self._file.flush()

    def recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line.decode("utf-8"))

    def request(self, payload: dict) -> dict:
        """One non-streaming round trip."""
        self.send(payload)
        return self.recv()

    def events(self) -> Iterator[dict]:
        """Yield response lines until a terminal job event."""
        while True:
            event = self.recv()
            yield event
            if event.get("event") in TERMINAL_EVENTS or event.get("event") == "protocol_error":
                return

    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def status(self, job_id: str) -> dict:
        return self.request({"op": "status", "job_id": job_id})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def submit(
        self,
        spec: dict,
        kind: str = "experiment",
        client: str = "anonymous",
        priority: int = 1,
        name: str = "",
        stream: bool = True,
    ) -> dict:
        """Submit a job; returns the ``accepted`` event.

        With ``stream=True`` the daemon follows the acceptance with the
        job's event stream on this connection — consume it with
        :meth:`events` (or :meth:`wait`).
        """
        self.send(
            {
                "op": "submit",
                "client": client,
                "kind": kind,
                "spec": spec,
                "priority": priority,
                "name": name,
                "stream": stream,
            }
        )
        accepted = self.recv()
        if accepted.get("event") == "protocol_error":
            raise RuntimeError(f"submit rejected: {accepted.get('message')}")
        return accepted

    def stream(self, job_id: str) -> Iterator[dict]:
        """Replay-then-follow an existing job's event stream."""
        self.send({"op": "stream", "job_id": job_id})
        return self.events()

    def wait(self) -> tuple[dict, list[dict]]:
        """Drain the current stream; returns ``(terminal_event, all_events)``."""
        events = list(self.events())
        return events[-1], events
