"""Job model and point-level planning for the experiment service.

A *job* is one client submission: an :class:`~repro.runtime.spec.ExperimentSpec`
(``kind="experiment"``) or a :class:`~repro.runtime.batch.BatchSpec`
(``kind="batch"``), plus the client identity and priority the scheduler
uses for weighted-fair sharing.  Jobs are decomposed into *sweep points* —
the service's unit of dedup and streaming — and points into *shard tasks*,
the unit of fair scheduling and pool dispatch.

Batch specs are rewritten into one single-circuit point per fleet entry
with ``point_index = circuit index`` and ``root seed = resolved per-circuit
seed``, which is exactly the ``SeedSequence(entropy=seed_i, spawn_key=(i,
shard))`` stream contract of :class:`~repro.runtime.batch.BatchRunner` —
so service results for batch jobs are bit-identical to both the batch
runner and the equivalent serial sweep.

The **point key** is the service's content-addressed dedup identity: a
:meth:`~repro.runtime.cache.ArtifactCache.key_for` hash over the bound
point spec (minus the display name) plus the point index.  Everything that
can change the merged histogram — circuit, platform, compiler, simulation
config, shots, root seed, shard-layout knobs, and the ``(point, shard)``
seed coordinates via the index — is inside the hash; the job name and the
submitting client are not.  Identical work therefore collides across
tenants by construction.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.runtime.batch import BatchSpec
from repro.runtime.cache import ArtifactCache
from repro.runtime.runner import ExperimentRunner
from repro.runtime.spec import ExperimentSpec, SweepPoint

#: Job lifecycle states, in order.
JOB_STATES = ("pending", "planning", "running", "done", "failed")

#: Events with these names terminate a subscription stream.
TERMINAL_EVENTS = frozenset({"done", "error"})


def point_key(point: SweepPoint) -> str:
    """Content-addressed identity of one sweep point's merged result."""
    payload = point.spec.to_dict()
    # The display name never affects results; the bound spec of a point has
    # an empty sweep by construction, so drop both from the hash.
    payload.pop("name", None)
    payload.pop("sweep", None)
    return ArtifactCache.key_for("point", spec=payload, index=point.index)


def parse_job_spec(payload: dict, kind: str) -> ExperimentSpec | BatchSpec:
    """Validate and materialise a submitted spec dict."""
    if kind == "experiment":
        return ExperimentSpec.from_dict(payload)
    if kind == "batch":
        return BatchSpec.from_dict(payload)
    raise ValueError(f"unknown job kind {kind!r}: expected 'experiment' or 'batch'")


def job_points(spec: ExperimentSpec | BatchSpec) -> list[SweepPoint]:
    """Decompose a job spec into schedulable sweep points.

    Experiment specs expand their sweep; batch specs yield one
    single-circuit point per fleet entry under the batch seeding contract
    (see module docstring).
    """
    if isinstance(spec, ExperimentSpec):
        return spec.points()
    points = []
    for index, batch_circuit in enumerate(spec.circuits):
        shots, seed, simulation, label = spec.resolved_circuit(index)
        bound = ExperimentSpec(
            name=spec.name,
            circuit=batch_circuit.circuit,
            platform=spec.platform,
            compiler=spec.compiler,
            simulation=simulation,
            shots=shots,
            seed=seed,
            max_shard_shots=spec.max_shard_shots,
            min_shards=spec.min_shards,
        )
        points.append(SweepPoint(index=index, params={"label": label}, spec=bound))
    return points


def job_planner(
    spec: ExperimentSpec | BatchSpec,
    cache: ArtifactCache,
    strict_verify: bool = False,
) -> ExperimentRunner:
    """Build the runner the service uses to plan this job's points.

    The service plans point-by-point (``runner.plan_point`` in its planning
    executor, never on the event loop) so points served from cache or
    joined in flight skip compilation entirely.  The daemon's own
    :class:`~repro.runtime.cache.ArtifactCache` instance is injected so
    compile/program artifacts and their hit/miss counters are shared
    across all tenants.
    """
    anchor = job_points(spec)[0].spec
    runner = ExperimentRunner(
        anchor,
        workers=1,
        cache_dir=cache.directory,
        strict_verify=strict_verify,
    )
    runner.cache = cache  # one shared store + one set of counters
    return runner


@dataclass
class Job:
    """One client submission and its streamed lifecycle.

    ``events`` buffers every emitted event in order, so late subscribers
    (including clients reconnecting after a daemon restart) replay the full
    point stream; live subscribers additionally receive events through
    their per-subscription :class:`asyncio.Queue`.
    """

    job_id: str
    client: str
    priority: int
    kind: str
    payload: dict
    name: str = ""
    state: str = "pending"
    points_total: int = 0
    points_done: int = 0
    submitted_s: float = field(default_factory=time.monotonic)
    events: list[dict] = field(default_factory=list)
    point_results: list = field(default_factory=list)
    queues: list[asyncio.Queue] = field(default_factory=list)

    def deliver(self, event: dict) -> None:
        """Record an event and fan it out to live subscribers."""
        self.events.append(event)
        for queue in self.queues:
            queue.put_nowait(event)

    def fail(self, message: str) -> None:
        if self.state in ("done", "failed"):
            return
        self.state = "failed"
        self.deliver({"event": "error", "job_id": self.job_id, "message": message})

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def status(self) -> dict:
        return {
            "job_id": self.job_id,
            "client": self.client,
            "priority": self.priority,
            "kind": self.kind,
            "name": self.name,
            "state": self.state,
            "points_total": self.points_total,
            "points_done": self.points_done,
        }
