"""Newline-delimited JSON protocol spoken over TCP and unix sockets.

One request per line, one JSON object per response line.  Streaming
operations (``submit`` with ``"stream": true``, and ``stream``) keep the
connection open and emit each job event as its own line; the stream ends
with the job's terminal ``done``/``error`` event, after which the
connection is ready for the next request.  Protocol-level failures (bad
JSON, unknown op, unknown job) are reported as
``{"event": "protocol_error", "message": ...}`` without closing the
connection.

Everything here is stdlib asyncio; handlers never touch blocking runtime
entry points directly (REPRO008) — they only await :class:`JobService`
coroutines, which do their work in executors.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.engine import JobService

#: Cap on one request line; a spec JSON larger than this is rejected
#: rather than buffered without bound.
MAX_LINE_BYTES = 32 * 1024 * 1024


def protocol_error(message: str) -> dict:
    return {"event": "protocol_error", "message": message}


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Read one NDJSON message; ``None`` on EOF, ``{}``-error dict on junk."""
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        return protocol_error("request line too long")
    if not line:
        return None
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        return protocol_error("empty request line")
    try:
        message = json.loads(text)
    except json.JSONDecodeError as exc:
        return protocol_error(f"bad JSON: {exc}")
    if not isinstance(message, dict):
        return protocol_error("request must be a JSON object")
    return message


async def write_message(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n")
    await writer.drain()


async def _read_or_shutdown(
    reader: asyncio.StreamReader, shutdown: asyncio.Event
) -> dict | None:
    """Await the next request, but give up cleanly once shutdown is set.

    Keep-alive connections would otherwise sit in ``readline()`` past the
    daemon's shutdown and get torn down by loop cancellation (noisily, via
    the stream protocol's task callback); racing the read against the
    shutdown event lets every handler return on its own.
    """
    read_task = asyncio.ensure_future(read_message(reader))
    waiter = asyncio.ensure_future(shutdown.wait())
    try:
        done, _ = await asyncio.wait({read_task, waiter}, return_when=asyncio.FIRST_COMPLETED)
        if read_task in done:
            return read_task.result()
        return None
    finally:
        for task in (read_task, waiter):
            task.cancel()
        await asyncio.gather(read_task, waiter, return_exceptions=True)


async def handle_connection(
    service: JobService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    shutdown: asyncio.Event,
    connections: set | None = None,
) -> None:
    """Serve one client connection until EOF or daemon shutdown."""
    if connections is not None:
        task = asyncio.current_task()
        connections.add(task)
        task.add_done_callback(connections.discard)
    try:
        while not shutdown.is_set():
            request = await _read_or_shutdown(reader, shutdown)
            if request is None:
                return
            if request.get("event") == "protocol_error":
                await write_message(writer, request)
                continue
            try:
                await dispatch(service, request, writer, shutdown)
            except ConnectionError:
                return
            except Exception as exc:  # noqa: BLE001 - report, keep serving
                await write_message(
                    writer, protocol_error(f"{type(exc).__name__}: {exc}")
                )
    except ConnectionError:
        return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass


async def dispatch(
    service: JobService,
    request: dict,
    writer: asyncio.StreamWriter,
    shutdown: asyncio.Event,
) -> None:
    """Execute one request; streaming ops write many lines."""
    op = request.get("op")
    if op == "ping":
        await write_message(writer, {"event": "pong"})
    elif op == "submit":
        accepted = await service.submit(
            client=str(request.get("client", "anonymous")),
            kind=str(request.get("kind", "experiment")),
            payload=request.get("spec") or {},
            priority=request.get("priority", 1),
            name=str(request.get("name", "")),
        )
        await write_message(writer, accepted)
        if request.get("stream", True):
            await stream_job(service, accepted["job_id"], writer, skip_accepted=True)
    elif op == "stream":
        job_id = str(request.get("job_id", ""))
        if job_id not in service.jobs:
            await write_message(writer, protocol_error(f"unknown job {job_id!r}"))
        else:
            await stream_job(service, job_id, writer)
    elif op == "status":
        job_id = str(request.get("job_id", ""))
        if job_id not in service.jobs:
            await write_message(writer, protocol_error(f"unknown job {job_id!r}"))
        else:
            await write_message(writer, {"event": "status", **service.status(job_id)})
    elif op == "stats":
        await write_message(writer, {"event": "stats", **service.stats()})
    elif op == "shutdown":
        await write_message(writer, {"event": "bye"})
        shutdown.set()
    else:
        await write_message(writer, protocol_error(f"unknown op {op!r}"))


async def stream_job(
    service: JobService,
    job_id: str,
    writer: asyncio.StreamWriter,
    skip_accepted: bool = False,
) -> None:
    """Replay-then-follow one job's events onto the wire."""
    async for event in service.stream(job_id):
        if skip_accepted and event.get("event") == "accepted":
            continue
        await write_message(writer, event)
