"""Thin HTTP/1.1 façade over the job service (stdlib asyncio only).

A convenience surface for ``curl``-style introspection and one-shot
submission next to the primary NDJSON socket protocol:

- ``GET /healthz`` — liveness probe;
- ``GET /stats`` — scheduler/cache/dedup counters;
- ``POST /jobs`` — submit (JSON body: ``client``, ``kind``, ``spec``,
  ``priority``, ``name``); returns the ``accepted`` event;
- ``GET /jobs/<id>`` — job status;
- ``GET /jobs/<id>/stream`` — the job's event stream as
  ``application/x-ndjson`` with ``Connection: close`` (the close marks the
  end of the body, so plain HTTP/1.1 clients need no chunked decoding).

Handlers only await :class:`JobService` coroutines — no blocking runtime
calls on the event loop (REPRO008).
"""

from __future__ import annotations

import asyncio
import json

from repro.service.engine import JobService

MAX_BODY_BYTES = 32 * 1024 * 1024


def _response(status: str, payload: dict) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request into ``(method, path, body)`` or ``None`` on EOF."""
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("ascii", errors="replace").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("ascii", errors="replace").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                content_length = 0
    if content_length > MAX_BODY_BYTES:
        return method, path, None
    body = await reader.readexactly(content_length) if content_length else b""
    return method, path, body


async def handle_http(
    service: JobService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve exactly one HTTP exchange, then close."""
    try:
        request = await _read_request(reader)
        if request is None:
            return
        method, path, body = request
        if body is None:
            writer.write(_response("413 Payload Too Large", {"error": "body too large"}))
        elif method == "GET" and path == "/healthz":
            writer.write(_response("200 OK", {"ok": True}))
        elif method == "GET" and path == "/stats":
            writer.write(_response("200 OK", service.stats()))
        elif method == "POST" and path == "/jobs":
            await _submit(service, body, writer)
        elif method == "GET" and path.startswith("/jobs/") and path.endswith("/stream"):
            await _stream(service, path[len("/jobs/") : -len("/stream")], writer)
        elif method == "GET" and path.startswith("/jobs/"):
            job_id = path[len("/jobs/") :]
            if job_id in service.jobs:
                writer.write(_response("200 OK", service.status(job_id)))
            else:
                writer.write(_response("404 Not Found", {"error": f"unknown job {job_id!r}"}))
        else:
            writer.write(_response("404 Not Found", {"error": f"no route {method} {path}"}))
        await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    except Exception as exc:  # noqa: BLE001 - surface as a 500, never crash
        try:
            writer.write(_response("500 Internal Server Error", {"error": str(exc)}))
            await writer.drain()
        except ConnectionError:
            pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass


async def _submit(service: JobService, body: bytes, writer: asyncio.StreamWriter) -> None:
    try:
        payload = json.loads(body.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("body must be a JSON object")
    except (ValueError, UnicodeDecodeError) as exc:
        writer.write(_response("400 Bad Request", {"error": str(exc)}))
        return
    try:
        accepted = await service.submit(
            client=str(payload.get("client", "anonymous")),
            kind=str(payload.get("kind", "experiment")),
            payload=payload.get("spec") or {},
            priority=payload.get("priority", 1),
            name=str(payload.get("name", "")),
        )
    except (ValueError, RuntimeError) as exc:
        writer.write(_response("400 Bad Request", {"error": str(exc)}))
        return
    writer.write(_response("202 Accepted", accepted))


async def _stream(service: JobService, job_id: str, writer: asyncio.StreamWriter) -> None:
    if job_id not in service.jobs:
        writer.write(_response("404 Not Found", {"error": f"unknown job {job_id!r}"}))
        return
    writer.write(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/x-ndjson\r\n"
        b"Connection: close\r\n"
        b"\r\n"
    )
    async for event in service.stream(job_id):
        writer.write(json.dumps(event, sort_keys=True).encode("utf-8") + b"\n")
        await writer.drain()
