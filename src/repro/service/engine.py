"""The asyncio job engine: fair scheduling, dedup, streaming, resume.

:class:`JobService` is the daemon's core, independent of any transport.
Submissions become :class:`~repro.service.jobs.Job` objects; each job's
sweep points are classified exactly once:

- **cache hit** — the point's content-addressed key is already in the
  artifact cache, so its merged result is served immediately without
  planning or execution;
- **in flight** — another tenant is already executing an identical point,
  so this job subscribes to that execution and receives the result when it
  lands (exactly one execution, many subscribers);
- **fresh** — the point is planned (compile + shard, in the planning
  executor) and its shard tasks enter the weighted-fair scheduler.

A pump coroutine moves shard tasks from the scheduler into a process pool
as slots free up; every blocking runtime entry point — planning, shard
execution, cache and journal I/O — runs in an executor, never on the event
loop (contract rule REPRO008).  Shard merging reuses the runtime's
:func:`~repro.runtime.aggregate.merge_counts` /
:func:`~repro.runtime.aggregate.merge_metrics` over the deterministic
shard list, so a job's histograms are bit-identical to a serial
:class:`~repro.runtime.runner.ExperimentRunner` run of the same spec.

Durability: accepted jobs and committed point keys are journalled
(flush + fsync) before the daemon acts on them.  On restart with the same
data/cache directories the service resubmits every non-terminal job; the
points whose results already landed in the cache are served from it, so a
killed daemon re-executes only uncached points and still reproduces the
uninterrupted run bit-for-bit.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.runtime.aggregate import merge_counts, merge_metrics
from repro.runtime.cache import ArtifactCache
from repro.runtime.runner import PlannedPoint, available_workers
from repro.runtime.spec import SweepPoint
from repro.runtime.worker import run_shard
from repro.service.jobs import Job, job_planner, job_points, parse_job_spec, point_key
from repro.service.journal import JobJournal
from repro.service.scheduler import FairScheduler


@dataclass
class _PointExecution:
    """One in-flight point: shard bookkeeping plus its subscriber jobs.

    Created as a *claim* (``planned is None``) before the owning job's
    first await, so concurrent admissions of an identical point always see
    it in the in-flight table and subscribe instead of planning a second
    execution.  ``planned``/``pending`` are filled in once planning lands.
    """

    key: str
    planned: PlannedPoint | None = None
    pending: set[int] = field(default_factory=set)
    results: dict[int, object] = field(default_factory=dict)
    #: ``(job, point)`` pairs to deliver to; the first entry claimed the
    #: execution, later ones joined via in-flight dedup.
    subscribers: list[tuple[Job, SweepPoint]] = field(default_factory=list)
    started_s: float = field(default_factory=time.monotonic)


class JobService:
    """Transport-agnostic async experiment service over the runtime."""

    def __init__(
        self,
        cache_dir: str | Path,
        data_dir: str | Path,
        workers: int | None = None,
        use_processes: bool = True,
        max_cache_bytes: int | None = None,
        resume: bool = True,
        strict_verify: bool = False,
    ) -> None:
        self.cache = ArtifactCache(cache_dir)
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.journal = JobJournal(self.data_dir / "journal.ndjson")
        self.workers = max(1, workers if workers is not None else available_workers())
        self.use_processes = use_processes
        self.max_cache_bytes = max_cache_bytes
        self.resume = resume
        self.strict_verify = strict_verify

        self.jobs: dict[str, Job] = {}
        self.counters = {
            "jobs_submitted": 0,
            "jobs_resumed": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "points_executed": 0,
            "points_from_cache": 0,
            "points_deduped_inflight": 0,
        }
        self._inflight: dict[str, _PointExecution] = {}
        self._scheduler = FairScheduler()
        self._job_counter = 0
        self._closing = False
        self._started = False
        self._tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------ #
    # Lifecycle.
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind loop state, start the pump, and resume journalled jobs."""
        self._loop = asyncio.get_running_loop()
        # Single thread: planning, cache I/O and journal appends stay
        # strictly ordered without blocking the event loop.
        self._io = ThreadPoolExecutor(max_workers=1, thread_name_prefix="svc-io")
        if self.use_processes:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        else:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        self._slots = self.workers
        self._wake = asyncio.Condition()
        self._pump_task = asyncio.create_task(self._pump())
        self._started = True
        if self.resume:
            await self._resume_from_journal()

    async def close(self) -> None:
        """Stop scheduling, cancel in-flight units, release executors."""
        if not self._started:
            return
        self._closing = True
        async with self._wake:
            self._wake.notify_all()
        await self._pump_task
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        # End every live stream with a terminal event; the jobs stay
        # non-terminal in the journal, so the next start resumes them.
        for job in self.jobs.values():
            if not job.finished:
                job.state = "failed"
                job.deliver(
                    {
                        "event": "error",
                        "job_id": job.job_id,
                        "message": "service shutting down; job will resume on restart",
                    }
                )
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._io.shutdown(wait=True)
        self.journal.close()
        self._started = False

    async def _resume_from_journal(self) -> None:
        """Resubmit every journalled job that never reached a terminal state."""
        job_records: dict[str, dict] = {}
        terminal: set[str] = set()
        for record in self.journal.replay():
            kind = record.get("type")
            if kind == "job":
                job_records[record["job_id"]] = record
            elif kind in ("job_done", "job_failed"):
                terminal.add(record["job_id"])
        for job_id in job_records:
            suffix = job_id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                self._job_counter = max(self._job_counter, int(suffix) + 1)
        for job_id, record in job_records.items():
            if job_id in terminal:
                continue
            self.counters["jobs_resumed"] += 1
            await self.submit(
                client=record["client"],
                kind=record["kind"],
                payload=record["payload"],
                priority=record.get("priority", 1),
                name=record.get("name", ""),
                job_id=job_id,
                journal=False,
            )

    # ------------------------------------------------------------------ #
    # Submission and admission.
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        client: str,
        kind: str,
        payload: dict,
        priority: int = 1,
        name: str = "",
        job_id: str | None = None,
        journal: bool = True,
    ) -> dict:
        """Accept a job; returns the ``accepted`` event once it is durable."""
        if self._closing:
            raise RuntimeError("service is shutting down")
        if not isinstance(priority, int) or priority < 1:
            raise ValueError(f"priority must be an int >= 1, got {priority!r}")
        if job_id is None:
            job_id = f"job-{self._job_counter:06d}"
            self._job_counter += 1
        job = Job(
            job_id=job_id,
            client=client,
            priority=priority,
            kind=kind,
            payload=payload,
            name=name,
        )
        if journal:
            await self._run_io(
                self.journal.append,
                {
                    "type": "job",
                    "job_id": job_id,
                    "client": client,
                    "priority": priority,
                    "kind": kind,
                    "name": name,
                    "payload": payload,
                },
            )
        self.jobs[job_id] = job
        self.counters["jobs_submitted"] += 1
        accepted = {"event": "accepted", "job_id": job_id, "client": client}
        job.deliver(accepted)
        self._spawn(self._admit(job))
        return accepted

    async def _admit(self, job: Job) -> None:
        """Classify a job's points into cached / in-flight / fresh work."""
        try:
            spec = parse_job_spec(job.payload, job.kind)
            points = job_points(spec)
            job.name = job.name or spec.name
            job.points_total = len(points)
            job.state = "running"
            planner = None
            from_cache = joined = fresh = 0
            for point in points:
                key = point_key(point)
                execution = self._inflight.get(key)
                if execution is not None:
                    execution.subscribers.append((job, point))
                    self.counters["points_deduped_inflight"] += 1
                    joined += 1
                    continue
                # Claim the key synchronously — no await between the
                # in-flight miss and the insert — so a concurrent identical
                # admission subscribes here instead of executing twice.
                execution = _PointExecution(key=key, subscribers=[(job, point)])
                self._inflight[key] = execution
                cached = await self._run_io(self.cache.get, key)
                if isinstance(cached, dict):
                    self._inflight.pop(key, None)
                    self.counters["points_from_cache"] += 1
                    from_cache += 1
                    for sub_job, sub_point in execution.subscribers:
                        await self._deliver_point(sub_job, sub_point, cached, source="cache")
                    continue
                try:
                    if planner is None:
                        planner = await self._run_io(
                            job_planner, spec, self.cache, self.strict_verify
                        )
                    planned = await self._run_io(planner.plan_point, point)
                except Exception:
                    self._inflight.pop(key, None)
                    for sub_job, _ in execution.subscribers:
                        if sub_job is not job:
                            await self._fail_job(sub_job, f"planning failed for point {key}")
                    raise
                execution.planned = planned
                execution.pending = {task.shard_index for task in planned.tasks}
                self.counters["points_executed"] += 1
                fresh += 1
                for task in planned.tasks:
                    cost = getattr(task, "shots", None) or getattr(task, "trials", None) or 1
                    self._scheduler.push(
                        job.client, weight=job.priority, item=(key, task), cost=cost
                    )
                async with self._wake:
                    self._wake.notify_all()
            job.deliver(
                {
                    "event": "planned",
                    "job_id": job.job_id,
                    "points_total": job.points_total,
                    "points_cached": from_cache,
                    "points_inflight": joined,
                    "points_fresh": fresh,
                }
            )
            if job.points_done == job.points_total and not job.finished:
                await self._finish_job(job)
        except Exception as exc:  # noqa: BLE001 - job errors become events
            await self._fail_job(job, f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------ #
    # Execution pump.
    # ------------------------------------------------------------------ #
    async def _pump(self) -> None:
        """Move shard units from the fair scheduler into free pool slots."""
        while True:
            async with self._wake:
                await self._wake.wait_for(
                    lambda: self._closing or (self._slots > 0 and len(self._scheduler) > 0)
                )
                if self._closing:
                    return
                unit = self._scheduler.pop()
                self._slots -= 1
            self._spawn(self._run_unit(unit))

    async def _run_unit(self, unit) -> None:
        """Execute one shard in the pool and fold it into its point."""
        key, shard_task = unit.item
        try:
            result = await self._loop.run_in_executor(self._pool, run_shard, shard_task)
        except Exception as exc:  # noqa: BLE001 - worker crashes fail the point
            execution = self._inflight.pop(key, None)
            if execution is not None:
                for job, _ in execution.subscribers:
                    await self._fail_job(job, f"shard failed: {type(exc).__name__}: {exc}")
        else:
            execution = self._inflight.get(key)
            if execution is not None and result.shard_index in execution.pending:
                execution.results[result.shard_index] = result
                execution.pending.discard(result.shard_index)
                if not execution.pending:
                    await self._complete_execution(execution)
        finally:
            async with self._wake:
                self._slots += 1
                self._wake.notify_all()

    async def _complete_execution(self, execution: _PointExecution) -> None:
        """Merge shards, commit the point, and fan out to subscribers."""
        self._inflight.pop(execution.key, None)
        shards = [execution.results[index] for index in sorted(execution.results)]
        planned = execution.planned
        merged = {
            "shots": sum(shard.shots for shard in shards),
            "num_qubits": planned.num_qubits,
            "gate_count": planned.gate_count,
            "counts": merge_counts(shard.counts for shard in shards),
            "errors_injected": sum(shard.errors_injected for shard in shards),
            "compile_cached": planned.compile_cached,
            "compile_time_s": planned.compile_time_s,
            "wall_time_s": time.monotonic() - execution.started_s,
            "metrics": merge_metrics(shard.metrics for shard in shards),
        }
        await self._run_io(self.cache.put, execution.key, merged)
        await self._run_io(self.journal.append, {"type": "point", "key": execution.key})
        if self.max_cache_bytes is not None:
            await self._run_io(self.cache.prune, self.max_cache_bytes)
        for position, (job, point) in enumerate(execution.subscribers):
            source = "executed" if position == 0 else "inflight"
            await self._deliver_point(job, point, merged, source=source)

    async def _deliver_point(
        self, job: Job, point: SweepPoint, merged: dict, source: str
    ) -> None:
        """Emit one point result into a job's stream and check completion."""
        if job.finished:
            return
        metrics = dict(merged.get("metrics", {}))
        cache_stats = self.cache.stats()
        metrics["artifact_cache_hits"] = cache_stats["hits"]
        metrics["artifact_cache_misses"] = cache_stats["misses"]
        metrics["artifact_cache_writes"] = cache_stats["writes"]
        metrics["artifact_cache_evictions"] = cache_stats["evictions"]
        metrics["artifact_cache_size_bytes"] = await self._run_io(self.cache.size_bytes)
        metrics["point_source"] = source
        result = {
            "index": point.index,
            "params": dict(point.params),
            "shots": merged["shots"],
            "num_qubits": merged["num_qubits"],
            "counts": dict(merged["counts"]),
            "errors_injected": merged["errors_injected"],
            "gate_count": merged["gate_count"],
            "compile_cached": merged.get("compile_cached", False),
            "compile_time_s": merged.get("compile_time_s", 0.0),
            "wall_time_s": merged.get("wall_time_s", 0.0),
            "metrics": metrics,
        }
        job.point_results.append(result)
        job.points_done += 1
        job.deliver(
            {
                "event": "point",
                "job_id": job.job_id,
                "index": point.index,
                "params": dict(point.params),
                "source": source,
                "result": result,
            }
        )
        if job.points_done == job.points_total and job.state == "running":
            await self._finish_job(job)

    async def _finish_job(self, job: Job) -> None:
        if job.finished:
            return
        job.state = "done"
        points = sorted(job.point_results, key=lambda entry: entry["index"])
        result = {
            "name": job.name,
            "workers": self.workers,
            "total_time_s": round(time.monotonic() - job.submitted_s, 6),
            "total_shots": sum(entry["shots"] for entry in points),
            "cache_stats": self.cache.stats(),
            "points": points,
        }
        await self._run_io(self.journal.append, {"type": "job_done", "job_id": job.job_id})
        self.counters["jobs_completed"] += 1
        job.deliver({"event": "done", "job_id": job.job_id, "result": result})

    async def _fail_job(self, job: Job, message: str) -> None:
        if job.finished:
            return
        await self._run_io(self.journal.append, {"type": "job_failed", "job_id": job.job_id})
        self.counters["jobs_failed"] += 1
        job.fail(message)

    # ------------------------------------------------------------------ #
    # Introspection and streaming.
    # ------------------------------------------------------------------ #
    async def stream(self, job_id: str):
        """Async-iterate a job's events: full replay, then live to terminal."""
        job = self.jobs[job_id]
        queue: asyncio.Queue = asyncio.Queue()
        job.queues.append(queue)
        try:
            # Snapshot after attaching: events recorded before the snapshot
            # replay from the buffer, later ones arrive via the queue — no
            # gap, no duplicate.
            snapshot = len(job.events)
            for event in job.events[:snapshot]:
                yield event
                if event.get("event") in ("done", "error"):
                    return
            while True:
                event = await queue.get()
                yield event
                if event.get("event") in ("done", "error"):
                    return
        finally:
            job.queues.remove(queue)

    def status(self, job_id: str) -> dict:
        return self.jobs[job_id].status()

    def stats(self) -> dict:
        return {
            "counters": dict(self.counters),
            "cache": self.cache.stats(),
            "backlog": self._scheduler.backlog(),
            "inflight_points": len(self._inflight),
            "jobs": len(self.jobs),
            "workers": self.workers,
            "slots_free": self._slots if self._started else self.workers,
        }

    # ------------------------------------------------------------------ #
    # Internals.
    # ------------------------------------------------------------------ #
    async def _run_io(self, fn, *args):
        """Run blocking planning/disk work on the ordered I/O thread."""
        return await self._loop.run_in_executor(self._io, lambda: fn(*args))

    def _spawn(self, coroutine) -> None:
        task = asyncio.ensure_future(coroutine)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
