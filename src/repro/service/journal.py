"""Crash-safe NDJSON journal behind the service's checkpoint/resume.

The journal is an append-only file of one JSON record per line; every
append is flushed and fsynced before the daemon acts on it, so the journal
never lags observable state.  A record is one of:

- ``{"type": "job", ...}`` — a submission was accepted (replayed on
  restart so incomplete jobs resume without the client resubmitting);
- ``{"type": "point", "key": ...}`` — a point's merged result was
  committed to the artifact cache under ``key``;
- ``{"type": "job_done", "job_id": ...}`` / ``{"type": "job_failed", ...}``
  — terminal job states (done jobs are not replayed).

Replay tolerates a torn trailing line — the one partial record a SIGKILL
mid-append can leave — by ignoring any suffix that fails to parse.  A torn
*point* record just means that point re-executes from cache-or-scratch on
resume, which is correct either way because point results are
content-addressed and deterministic.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


class JobJournal:
    """Append-only journal of accepted jobs and committed points."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = None

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def replay(self) -> list[dict]:
        """Parse every intact record, ignoring a torn trailing line."""
        if not self.path.exists():
            return []
        records = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Only a crash mid-append can produce this, and only on
                    # the final line; everything before it is intact.
                    break
                if isinstance(record, dict):
                    records.append(record)
        return records

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
