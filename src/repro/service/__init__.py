"""Experiment service layer: the runtime as a long-lived multi-tenant daemon.

The runtime (:mod:`repro.runtime`) executes one spec per process
invocation; this package wraps it in an asyncio *job service* so many
clients share one warm daemon, one artifact cache and one process pool:

- :class:`JobService` (:mod:`repro.service.engine`) — the transport-
  agnostic engine: jobs decompose into content-addressed sweep points,
  identical points dedup across tenants (cache for completed work,
  subscription for in-flight work), and shard tasks are dispatched under
  weighted-fair scheduling (:mod:`repro.service.scheduler`);
- :mod:`repro.service.protocol` / :mod:`repro.service.http` — NDJSON
  socket protocol with per-point result streaming, plus an HTTP façade;
- :mod:`repro.service.journal` / :func:`serve`
  (:mod:`repro.service.daemon`) — fsynced job/point journal and daemon
  wiring, giving crash/restart resume that re-executes only uncached
  points while staying bit-identical to an uninterrupted run;
- :class:`ServiceClient` (:mod:`repro.service.client`) — synchronous
  client for scripts and tests.

See ``docs/service.md`` for the protocol, fairness and dedup/resume
semantics, and ``scripts/serve.py`` / ``scripts/submit.py`` for the CLI.
"""

from repro.service.client import ServiceClient
from repro.service.daemon import serve
from repro.service.engine import JobService
from repro.service.jobs import Job, job_points, point_key
from repro.service.journal import JobJournal
from repro.service.scheduler import FairScheduler

__all__ = [
    "FairScheduler",
    "Job",
    "JobJournal",
    "JobService",
    "ServiceClient",
    "job_points",
    "point_key",
    "serve",
]
