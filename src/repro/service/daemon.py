"""Daemon wiring: sockets, signals, and the readiness handshake.

:func:`serve` binds the requested listeners (unix socket and/or TCP for
the NDJSON protocol, plus an optional HTTP façade port), starts the
:class:`~repro.service.engine.JobService` (which resumes journalled jobs),
and prints exactly one JSON *ready line* to ``ready_stream`` — carrying
the actually-bound addresses, so callers passing port 0 learn the kernel's
choice.  Supervisors (tests, CI, ``scripts/serve.py``) wait for that line
before submitting.

Shutdown is cooperative: SIGTERM/SIGINT or a protocol ``shutdown`` op sets
one event; listeners close, in-flight shard units are cancelled, and the
journal keeps everything needed for the next start to resume.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys

from repro.service.engine import JobService
from repro.service.http import handle_http
from repro.service.protocol import MAX_LINE_BYTES, handle_connection


async def serve(
    service: JobService,
    socket_path: str | os.PathLike | None = None,
    tcp_host: str = "127.0.0.1",
    tcp_port: int | None = None,
    http_port: int | None = None,
    ready_stream=None,
) -> None:
    """Run the daemon until a shutdown signal or protocol shutdown op."""
    if socket_path is None and tcp_port is None:
        raise ValueError("need at least one of socket_path / tcp_port")
    shutdown = asyncio.Event()
    connections: set[asyncio.Task] = set()
    await service.start()

    def on_connection(reader, writer):
        return handle_connection(service, reader, writer, shutdown, connections)

    def on_http(reader, writer):
        return handle_http(service, reader, writer)

    servers = []
    ready = {"ready": True, "pid": os.getpid()}
    if socket_path is not None:
        socket_path = os.fspath(socket_path)
        if os.path.exists(socket_path):
            os.unlink(socket_path)  # stale socket from a killed daemon
        servers.append(
            await asyncio.start_unix_server(on_connection, path=socket_path, limit=MAX_LINE_BYTES)
        )
        ready["socket"] = socket_path
    if tcp_port is not None:
        server = await asyncio.start_server(
            on_connection, host=tcp_host, port=tcp_port, limit=MAX_LINE_BYTES
        )
        servers.append(server)
        ready["tcp_host"] = tcp_host
        ready["tcp_port"] = server.sockets[0].getsockname()[1]
    if http_port is not None:
        server = await asyncio.start_server(
            on_http, host=tcp_host, port=http_port, limit=MAX_LINE_BYTES
        )
        servers.append(server)
        ready["http_port"] = server.sockets[0].getsockname()[1]

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, shutdown.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
            pass

    stream = ready_stream if ready_stream is not None else sys.stdout
    print(json.dumps(ready, sort_keys=True), file=stream, flush=True)

    try:
        await shutdown.wait()
    finally:
        for server in servers:
            server.close()
        for server in servers:
            await server.wait_closed()
        await service.close()
        if connections:
            # Handlers see the shutdown event (and the terminal events
            # service.close() emitted) and return on their own; give them a
            # moment rather than tearing them down mid-write.
            _, pending = await asyncio.wait(connections, timeout=5)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if socket_path is not None and os.path.exists(socket_path):
            os.unlink(socket_path)
