"""Target platform configuration.

A platform bundles everything the compiler needs to know about the target:
which qubit model it exposes (perfect / realistic / real, Section 2.1),
how many qubits it has, its connectivity topology, the primitive gate set,
and per-gate durations.  The same program compiled against different
platforms produces different cQASM/eQASM — this is exactly the
"configuration file for the compiler" retargeting mechanism that let the
paper's micro-architecture drive both a superconducting and a
semiconducting chip (Section 3.1).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.gates import GateSet, standard_gate_set
from repro.core.qubits import PERFECT, REAL_SPIN, REAL_TRANSMON, REALISTIC, QubitModel
from repro.mapping.topology import (
    Topology,
    fully_connected_topology,
    grid_topology,
    linear_topology,
    surface17_topology,
    surface7_topology,
)


@dataclass
class Platform:
    """Compilation target description."""

    name: str
    num_qubits: int
    qubit_model: QubitModel = PERFECT
    topology: Topology | None = None
    gate_set: GateSet = field(default_factory=standard_gate_set)
    #: Primitive gates natively supported by the control hardware; anything
    #: else must be decomposed by the compiler.
    primitive_gates: tuple[str, ...] = (
        "i", "x", "y", "z", "h", "s", "sdag", "t", "tdag",
        "x90", "y90", "mx90", "my90", "rx", "ry", "rz",
        "cnot", "cz", "swap", "cr", "crk", "toffoli", "measure",
    )
    #: Gate durations in nanoseconds, keyed by mnemonic.
    gate_durations: dict[str, int] = field(default_factory=dict)
    cycle_time_ns: int = 20

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise ValueError("platform needs at least one qubit")
        if self.topology is None:
            self.topology = fully_connected_topology(self.num_qubits)
        if self.topology.num_qubits < self.num_qubits:
            raise ValueError("topology smaller than the declared qubit count")
        defaults = {
            "measure": self.qubit_model.measurement_ns,
            "cnot": self.qubit_model.two_qubit_gate_ns,
            "cz": self.qubit_model.two_qubit_gate_ns,
            "cr": self.qubit_model.two_qubit_gate_ns,
            "crk": self.qubit_model.two_qubit_gate_ns,
            "swap": 3 * self.qubit_model.two_qubit_gate_ns,
            "toffoli": 6 * self.qubit_model.two_qubit_gate_ns,
        }
        for name, duration in defaults.items():
            self.gate_durations.setdefault(name, duration)

    # ------------------------------------------------------------------ #
    def duration_of(self, mnemonic: str) -> int:
        """Gate duration in nanoseconds for this platform."""
        return self.gate_durations.get(mnemonic, self.qubit_model.single_qubit_gate_ns)

    def supports(self, mnemonic: str) -> bool:
        return mnemonic in self.primitive_gates

    @property
    def requires_routing(self) -> bool:
        """Whether the nearest-neighbour constraint forces SWAP insertion."""
        return self.qubit_model.nearest_neighbour_only

    def describe(self) -> dict:
        """JSON-serialisable summary (the 'configuration file' view)."""
        return {
            "name": self.name,
            "num_qubits": self.num_qubits,
            "qubit_model": self.qubit_model.kind,
            "topology": self.topology.name,
            "primitive_gates": list(self.primitive_gates),
            "gate_durations_ns": dict(self.gate_durations),
            "cycle_time_ns": self.cycle_time_ns,
            "nearest_neighbour_only": self.qubit_model.nearest_neighbour_only,
        }

    def to_json(self, path: str | Path | None = None) -> str:
        text = json.dumps(self.describe(), indent=2)
        if path is not None:
            Path(path).write_text(text)
        return text


# ---------------------------------------------------------------------- #
# Factory functions for the platforms used throughout the paper.
# ---------------------------------------------------------------------- #
def perfect_platform(num_qubits: int, name: str = "perfect") -> Platform:
    """Perfect qubits, all-to-all connectivity: application-development mode."""
    return Platform(
        name=name,
        num_qubits=num_qubits,
        qubit_model=PERFECT,
        topology=fully_connected_topology(num_qubits),
    )


def realistic_platform(
    num_qubits: int,
    error_rate: float = 1e-3,
    rows: int | None = None,
    name: str = "realistic",
) -> Platform:
    """Realistic qubits on a 2-D nearest-neighbour grid."""
    qubit_model = REALISTIC.with_error_rate(error_rate)
    if rows is None:
        rows = max(1, int(num_qubits ** 0.5))
    cols = (num_qubits + rows - 1) // rows
    return Platform(
        name=name,
        num_qubits=num_qubits,
        qubit_model=qubit_model,
        topology=grid_topology(rows, cols),
    )


def superconducting_platform(name: str = "surface7_transmon") -> Platform:
    """Real transmon platform modelled on the 7-qubit superconducting device.

    Native gates: single-qubit rotations around X/Y (pi and pi/2 pulses),
    virtual Z, and the CZ two-qubit flux gate; CNOT is not native and must
    be decomposed by the compiler.
    """
    return Platform(
        name=name,
        num_qubits=7,
        qubit_model=REAL_TRANSMON,
        topology=surface7_topology(),
        primitive_gates=(
            "i", "x", "y", "x90", "y90", "mx90", "my90", "rz", "cz", "measure", "swap",
        ),
        gate_durations={
            "x": 20, "y": 20, "x90": 20, "y90": 20, "mx90": 20, "my90": 20,
            "rz": 0, "cz": 40, "measure": 600, "swap": 120,
        },
        cycle_time_ns=20,
    )


def spin_qubit_platform(name: str = "spin_qubit_2x2") -> Platform:
    """Real semiconducting (spin) qubit platform: slower gates, linear array.

    Retargeting the same micro-architecture to this platform only requires
    this different configuration (Section 3.1).
    """
    return Platform(
        name=name,
        num_qubits=4,
        qubit_model=REAL_SPIN,
        topology=linear_topology(4),
        primitive_gates=("i", "x", "y", "x90", "y90", "mx90", "my90", "rz", "cz", "measure", "swap"),
        gate_durations={
            "x": 100, "y": 100, "x90": 100, "y90": 100, "mx90": 100, "my90": 100,
            "rz": 0, "cz": 200, "measure": 1000, "swap": 600,
        },
        cycle_time_ns=100,
    )


def surface17_platform(name: str = "surface17_transmon") -> Platform:
    """17-qubit surface-code platform used by the QEC experiments."""
    return Platform(
        name=name,
        num_qubits=17,
        qubit_model=REAL_TRANSMON,
        topology=surface17_topology(),
        primitive_gates=(
            "i", "x", "y", "x90", "y90", "mx90", "my90", "rz", "cz", "cnot", "measure", "swap",
        ),
        cycle_time_ns=20,
    )
