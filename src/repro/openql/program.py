"""OpenQL-style programs: an ordered collection of kernels.

A :class:`Program` is what the application layer hands to the compiler.  It
supports the classical encapsulation constructs the paper mentions —
repetition of a kernel (for-loop) and simple if-style conditional kernels —
which the compiler flattens or preserves as sub-circuit iteration counts in
the emitted cQASM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.openql.kernel import Kernel
from repro.openql.platform import Platform


@dataclass
class KernelEntry:
    """A kernel plus its classical control wrapper."""

    kernel: Kernel
    iterations: int = 1
    condition: str | None = None


@dataclass
class Program:
    """A quantum program targeting one platform."""

    name: str
    platform: Platform
    num_qubits: int | None = None
    entries: list[KernelEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_qubits is None:
            self.num_qubits = self.platform.num_qubits
        if self.num_qubits > self.platform.num_qubits:
            raise ValueError("program requests more qubits than the platform offers")

    # ------------------------------------------------------------------ #
    def new_kernel(self, name: str) -> Kernel:
        """Create a kernel bound to this program's platform and register it."""
        kernel = Kernel(name, self.platform, num_qubits=self.num_qubits)
        self.add_kernel(kernel)
        return kernel

    def add_kernel(self, kernel: Kernel, iterations: int = 1, condition: str | None = None) -> None:
        if kernel.num_qubits > self.num_qubits:
            raise ValueError(
                f"kernel {kernel.name!r} uses {kernel.num_qubits} qubits, program has "
                f"{self.num_qubits}"
            )
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.entries.append(KernelEntry(kernel=kernel, iterations=iterations, condition=condition))

    def add_for(self, kernel: Kernel, iterations: int) -> None:
        """Classical for-loop around a kernel."""
        self.add_kernel(kernel, iterations=iterations)

    def add_if(self, kernel: Kernel, condition: str) -> None:
        """Classically conditioned kernel (condition evaluated by the host)."""
        self.add_kernel(kernel, condition=condition)

    # ------------------------------------------------------------------ #
    @property
    def kernels(self) -> list[Kernel]:
        return [entry.kernel for entry in self.entries]

    def total_gate_count(self) -> int:
        return sum(e.kernel.gate_count() * e.iterations for e in self.entries)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Program({self.name!r}, platform={self.platform.name!r}, "
            f"kernels={len(self.entries)})"
        )
