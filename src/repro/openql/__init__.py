"""OpenQL-style programming layer and compiler.

This is the paper's quantum programming language layer (Section 2.4):
programs are collections of kernels written against a target *platform*
(which declares the qubit model, topology and gate set), and the compiler
lowers them through a configurable sequence of passes — decomposition,
optimisation, mapping (placement + routing), scheduling — down to cQASM and,
for hardware-like targets, eQASM.
"""

from repro.openql.platform import Platform, perfect_platform, realistic_platform, superconducting_platform, spin_qubit_platform
from repro.openql.kernel import Kernel
from repro.openql.program import Program
from repro.openql.compiler import Compiler, CompilationResult

__all__ = [
    "Platform",
    "perfect_platform",
    "realistic_platform",
    "superconducting_platform",
    "spin_qubit_platform",
    "Kernel",
    "Program",
    "Compiler",
    "CompilationResult",
]
