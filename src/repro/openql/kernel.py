"""OpenQL-style kernels.

A kernel is the unit of quantum logic the host offloads to the accelerator:
a straight-line sequence of gates plus measurements, optionally repeated or
conditioned by classical control flow at the program level.  The kernel API
mirrors OpenQL's: ``k.gate('h', 0)``, ``k.cnot(0, 1)``, ``k.measure(0)``.
"""

from __future__ import annotations

from repro.core.circuit import Circuit
from repro.openql.platform import Platform


class Kernel:
    """A named block of quantum logic targeting a platform."""

    def __init__(self, name: str, platform: Platform, num_qubits: int | None = None):
        self.name = name
        self.platform = platform
        qubits = num_qubits if num_qubits is not None else platform.num_qubits
        if qubits > platform.num_qubits:
            raise ValueError(
                f"kernel requests {qubits} qubits, platform {platform.name!r} has "
                f"{platform.num_qubits}"
            )
        self.circuit = Circuit(qubits, name=name)

    # ------------------------------------------------------------------ #
    # OpenQL-style gate API
    # ------------------------------------------------------------------ #
    def gate(self, name: str, *qubits: int, angle: float | None = None) -> "Kernel":
        """Append a named gate, e.g. ``gate('h', 0)`` or ``gate('rx', 0, angle=0.5)``."""
        params = (angle,) if angle is not None else ()
        self.circuit.add_gate(name.lower(), *qubits, params=params)
        return self

    def x(self, qubit: int) -> "Kernel":
        return self.gate("x", qubit)

    def y(self, qubit: int) -> "Kernel":
        return self.gate("y", qubit)

    def z(self, qubit: int) -> "Kernel":
        return self.gate("z", qubit)

    def hadamard(self, qubit: int) -> "Kernel":
        return self.gate("h", qubit)

    def h(self, qubit: int) -> "Kernel":
        return self.gate("h", qubit)

    def s(self, qubit: int) -> "Kernel":
        return self.gate("s", qubit)

    def t(self, qubit: int) -> "Kernel":
        return self.gate("t", qubit)

    def rx(self, qubit: int, angle: float) -> "Kernel":
        return self.gate("rx", qubit, angle=angle)

    def ry(self, qubit: int, angle: float) -> "Kernel":
        return self.gate("ry", qubit, angle=angle)

    def rz(self, qubit: int, angle: float) -> "Kernel":
        return self.gate("rz", qubit, angle=angle)

    def cnot(self, control: int, target: int) -> "Kernel":
        return self.gate("cnot", control, target)

    def cz(self, control: int, target: int) -> "Kernel":
        return self.gate("cz", control, target)

    def swap(self, qubit_a: int, qubit_b: int) -> "Kernel":
        return self.gate("swap", qubit_a, qubit_b)

    def toffoli(self, control_a: int, control_b: int, target: int) -> "Kernel":
        return self.gate("toffoli", control_a, control_b, target)

    def measure(self, qubit: int) -> "Kernel":
        self.circuit.measure(qubit)
        return self

    def measure_all(self) -> "Kernel":
        self.circuit.measure_all()
        return self

    def barrier(self, *qubits: int) -> "Kernel":
        self.circuit.barrier(*qubits)
        return self

    def prepz(self, qubit: int) -> "Kernel":
        """Prepare a qubit in |0>.

        Registers always start in the all-zeros state, so this is a no-op at
        the circuit level; the method exists for API parity with OpenQL.
        """
        self.circuit._check_qubits((qubit,))
        return self

    # ------------------------------------------------------------------ #
    def extend(self, circuit: Circuit) -> "Kernel":
        """Append an existing circuit's operations to this kernel.

        The kernel's classical register widens to cover the source
        circuit's, so cross-mapped measurements and conditional bits beyond
        the qubit count stay addressable through compilation.
        """
        for op in circuit.operations:
            self.circuit.append(op)
        self.circuit.num_bits = max(self.circuit.num_bits, circuit.num_bits)
        return self

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    def gate_count(self) -> int:
        return self.circuit.gate_count()

    def depth(self) -> int:
        return self.circuit.depth()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Kernel({self.name!r}, qubits={self.num_qubits}, gates={self.gate_count()})"
