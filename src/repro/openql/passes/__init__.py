"""Compiler passes.

Each pass is a callable object transforming a :class:`~repro.core.circuit.Circuit`
for a given :class:`~repro.openql.platform.Platform`.  The pass manager in
:mod:`repro.openql.compiler` runs them in order and records statistics.
"""

from repro.openql.passes.decomposition import DecompositionPass
from repro.openql.passes.optimization import OptimizationPass
from repro.openql.passes.mapping_pass import MappingPass
from repro.openql.passes.scheduling_pass import SchedulingPass
from repro.openql.passes.verification_pass import VerificationPass

__all__ = [
    "DecompositionPass",
    "OptimizationPass",
    "MappingPass",
    "SchedulingPass",
    "VerificationPass",
]
