"""Pass interface shared by all compiler passes."""

from __future__ import annotations

from repro.core.circuit import Circuit
from repro.openql.platform import Platform


class Pass:
    """Base class: a transformation of a circuit for a platform."""

    name = "pass"

    def run(self, circuit: Circuit, platform: Platform) -> Circuit:
        raise NotImplementedError

    def statistics(self) -> dict:
        """Per-pass statistics collected during the last run()."""
        return {}
