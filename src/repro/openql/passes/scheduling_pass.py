"""Scheduling pass: attach a timed schedule to the compiled circuit.

The pass does not change the circuit (the operation order already respects
dependencies); it computes the ASAP or ALAP schedule with the platform's
gate durations and stores it for the micro-architecture / eQASM backend,
reporting latency and parallelism statistics.
"""

from __future__ import annotations

from repro.core.circuit import Circuit
from repro.core.operations import GateOperation
from repro.mapping.scheduling import Schedule, Scheduler
from repro.openql.passes.base import Pass
from repro.openql.platform import Platform


class SchedulingPass(Pass):
    """Compute the timed schedule of the circuit for the platform."""

    name = "scheduling"

    def __init__(self, policy: str = "asap", max_parallel_two_qubit: int | None = None):
        self.policy = policy
        self.max_parallel_two_qubit = max_parallel_two_qubit
        self.last_schedule: Schedule | None = None

    def run(self, circuit: Circuit, platform: Platform) -> Circuit:
        timed = _apply_platform_durations(circuit, platform)
        scheduler = Scheduler(
            policy=self.policy, max_parallel_two_qubit=self.max_parallel_two_qubit
        )
        self.last_schedule = scheduler.schedule(timed)
        return timed

    def statistics(self) -> dict:
        if self.last_schedule is None:
            return {}
        return {
            "makespan_ns": self.last_schedule.makespan,
            "parallelism": round(self.last_schedule.parallelism(), 3),
            "policy": self.policy,
        }


def _apply_platform_durations(circuit: Circuit, platform: Platform) -> Circuit:
    """Return a copy whose operation durations reflect the platform configuration."""
    from dataclasses import replace

    from repro.core.operations import ConditionalGate, Measurement

    result = Circuit(circuit.num_qubits, circuit.name, num_bits=circuit.num_bits)
    for op in circuit.operations:
        if isinstance(op, ConditionalGate):
            duration = platform.duration_of(op.gate.name)
            if duration != op.gate.duration:
                op = ConditionalGate(
                    replace(op.gate, duration=duration), op.qubits, op.condition_bit
                )
        elif isinstance(op, GateOperation):
            duration = platform.duration_of(op.name)
            if duration != op.gate.duration:
                op = GateOperation(replace(op.gate, duration=duration), op.qubits)
        elif isinstance(op, Measurement):
            duration = platform.duration_of("measure")
            if duration != op.duration:
                op = Measurement(op.qubit, bit=op.bit, basis=op.basis, duration=duration)
        result.append(op)
    return result
