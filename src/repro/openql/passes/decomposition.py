"""Gate decomposition pass.

Rewrites gates that the target platform does not natively support into
sequences of primitive gates.  The rules cover the decompositions the paper's
superconducting back-end needs (CNOT via CZ + Y rotations, Hadamard via
Y90/X, SWAP via CNOTs, Toffoli via the standard Clifford+T network) plus the
generic rotation-based fallbacks.
"""

from __future__ import annotations

import math

from repro.core.circuit import Circuit
from repro.core.operations import GateOperation
from repro.openql.passes.base import Pass
from repro.openql.platform import Platform


class DecompositionPass(Pass):
    """Decompose non-primitive gates into the platform's native set."""

    name = "decomposition"

    def __init__(self) -> None:
        self._expanded = 0

    def run(self, circuit: Circuit, platform: Platform) -> Circuit:
        self._expanded = 0
        result = Circuit(circuit.num_qubits, circuit.name, num_bits=circuit.num_bits)
        for op in circuit.operations:
            if not isinstance(op, GateOperation) or platform.supports(op.name):
                result.append(op)
                continue
            replacement = self._decompose(op, platform)
            if replacement is None:
                raise ValueError(
                    f"cannot decompose gate {op.name!r} for platform {platform.name!r}"
                )
            self._expanded += 1
            for item in replacement:
                result.append(item)
        return result

    def statistics(self) -> dict:
        return {"gates_decomposed": self._expanded}

    # ------------------------------------------------------------------ #
    def _decompose(self, op: GateOperation, platform: Platform) -> list[GateOperation] | None:
        """Return a list of operations implementing ``op`` with primitives only."""
        handlers = {
            "cnot": self._cnot,
            "h": self._hadamard,
            "swap": self._swap,
            "toffoli": self._toffoli,
            "s": self._s,
            "sdag": self._sdag,
            "t": self._t,
            "tdag": self._tdag,
            "z": self._z,
            "y": self._y,
            "x": self._x,
            "cr": self._cr,
            "crk": self._crk,
            "cz": self._cz,
            "rx": self._rx,
            "ry": self._ry,
        }
        handler = handlers.get(op.name)
        if handler is None:
            return None
        fragment = Circuit(max(op.qubits) + 1, "fragment")
        handler(fragment, op, platform)
        # Recursively decompose the fragment in case a rule emitted another
        # non-primitive gate (e.g. SWAP -> CNOT -> CZ).
        ops: list[GateOperation] = []
        for item in fragment.operations:
            assert isinstance(item, GateOperation)
            if platform.supports(item.name):
                ops.append(item)
            else:
                nested = self._decompose(item, platform)
                if nested is None:
                    return None
                ops.extend(nested)
        return ops

    # Individual rules ------------------------------------------------- #
    def _cnot(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        control, target = op.qubits
        if platform.supports("cz"):
            # CNOT = (I (x) H) CZ (I (x) H) with H built from native rotations.
            self._emit_hadamard(circuit, target, platform)
            circuit.cz(control, target)
            self._emit_hadamard(circuit, target, platform)
        else:
            raise ValueError("platform supports neither CNOT nor CZ")

    def _cz(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        control, target = op.qubits
        if platform.supports("cnot"):
            self._emit_hadamard(circuit, target, platform)
            circuit.cnot(control, target)
            self._emit_hadamard(circuit, target, platform)
        else:
            raise ValueError("platform supports neither CZ nor CNOT")

    def _hadamard(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        self._emit_hadamard(circuit, op.qubits[0], platform)

    def _emit_hadamard(self, circuit: Circuit, qubit: int, platform: Platform) -> None:
        if platform.supports("h"):
            circuit.h(qubit)
        elif platform.supports("y90") and platform.supports("x"):
            # H = X * Ry(pi/2) up to global phase.
            circuit.add_gate("y90", qubit)
            circuit.x(qubit)
        else:
            circuit.ry(qubit, math.pi / 2.0)
            circuit.rx(qubit, math.pi)

    def _swap(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        a, b = op.qubits
        circuit.cnot(a, b).cnot(b, a).cnot(a, b)

    def _toffoli(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        a, b, c = op.qubits
        circuit.h(c)
        circuit.cnot(b, c)
        circuit.tdag(c)
        circuit.cnot(a, c)
        circuit.t(c)
        circuit.cnot(b, c)
        circuit.tdag(c)
        circuit.cnot(a, c)
        circuit.t(b)
        circuit.t(c)
        circuit.h(c)
        circuit.cnot(a, b)
        circuit.t(a)
        circuit.tdag(b)
        circuit.cnot(a, b)

    def _s(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        circuit.rz(op.qubits[0], math.pi / 2.0)

    def _sdag(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        circuit.rz(op.qubits[0], -math.pi / 2.0)

    def _t(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        circuit.rz(op.qubits[0], math.pi / 4.0)

    def _tdag(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        circuit.rz(op.qubits[0], -math.pi / 4.0)

    def _z(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        circuit.rz(op.qubits[0], math.pi)

    def _y(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        circuit.ry(op.qubits[0], math.pi)

    def _x(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        circuit.rx(op.qubits[0], math.pi)

    def _cr(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        self._emit_controlled_phase(circuit, op.qubits, op.params[0])

    def _crk(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        k = int(op.params[0])
        self._emit_controlled_phase(circuit, op.qubits, 2.0 * math.pi / (2 ** k))

    def _emit_controlled_phase(
        self, circuit: Circuit, qubits: tuple[int, ...], theta: float
    ) -> None:
        """Controlled phase via CNOT-conjugated Rz rotations (up to global phase)."""
        control, target = qubits
        circuit.rz(control, theta / 2.0)
        circuit.rz(target, theta / 2.0)
        circuit.cnot(control, target)
        circuit.rz(target, -theta / 2.0)
        circuit.cnot(control, target)

    def _rx(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        # Rx(theta): conjugate Rz(theta) by +/-90-degree Y rotations
        # (circuit order my90, rz, y90; verified up to global phase).
        qubit = op.qubits[0]
        theta = op.params[0]
        if platform.supports("y90") and platform.supports("rz"):
            circuit.add_gate("my90", qubit)
            circuit.rz(qubit, theta)
            circuit.add_gate("y90", qubit)
        else:
            raise ValueError("platform cannot express arbitrary rx rotations")

    def _ry(self, circuit: Circuit, op: GateOperation, platform: Platform) -> None:
        # Ry(theta): conjugate Rz(theta) by +/-90-degree X rotations
        # (circuit order x90, rz, mx90; verified up to global phase).
        qubit = op.qubits[0]
        theta = op.params[0]
        if platform.supports("x90") and platform.supports("rz"):
            circuit.add_gate("x90", qubit)
            circuit.rz(qubit, theta)
            circuit.add_gate("mx90", qubit)
        else:
            raise ValueError("platform cannot express arbitrary ry rotations")
