"""Mapping pass: initial placement + SWAP-insertion routing.

Only runs when the target platform imposes the nearest-neighbour constraint
(real / realistic qubits); for perfect-qubit platforms it is the identity,
matching the paper's statement that "whether or not the nearest-neighbour
constraint applies is a discretion of the designer".
"""

from __future__ import annotations

from repro.core.circuit import Circuit
from repro.mapping.placement import greedy_placement, trivial_placement
from repro.mapping.routing import ROUTER_MODES, Router, RoutingResult
from repro.openql.passes.base import Pass
from repro.openql.platform import Platform


class MappingPass(Pass):
    """Place logical qubits and route two-qubit gates (hybrid-aware)."""

    name = "mapping"

    def __init__(
        self,
        strategy: str = "greedy",
        use_lookahead: bool = True,
        force: bool = False,
        mode: str = "path",
        lookahead_window: int = 20,
        decay: float = 0.7,
    ):
        if strategy not in ("greedy", "trivial"):
            raise ValueError("strategy must be 'greedy' or 'trivial'")
        if mode not in ROUTER_MODES:
            raise ValueError(f"mode must be one of {ROUTER_MODES}, got {mode!r}")
        self.strategy = strategy
        self.use_lookahead = use_lookahead
        self.force = force
        self.mode = mode
        self.lookahead_window = lookahead_window
        self.decay = decay
        self.last_result: RoutingResult | None = None

    def run(self, circuit: Circuit, platform: Platform) -> Circuit:
        self.last_result = None
        if not platform.requires_routing and not self.force:
            return circuit
        placement = (
            greedy_placement(circuit, platform.topology)
            if self.strategy == "greedy"
            else trivial_placement(circuit, platform.topology)
        )
        router = Router(
            platform.topology,
            use_lookahead=self.use_lookahead,
            mode=self.mode,
            lookahead_window=self.lookahead_window,
            decay=self.decay,
        )
        self.last_result = router.route(circuit, placement)
        return self.last_result.circuit

    def statistics(self) -> dict:
        if self.last_result is None:
            return {"swaps_inserted": 0, "routing_overhead": 0.0}
        return {
            "swaps_inserted": self.last_result.swaps_inserted,
            "routing_overhead": round(self.last_result.overhead, 4),
            "router_mode": self.last_result.mode,
            "initial_placement": dict(self.last_result.initial_placement),
            "final_placement": dict(self.last_result.final_placement),
        }
