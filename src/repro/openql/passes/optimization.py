"""Circuit optimisation pass.

Peephole optimisations applied iteratively until a fixed point:

* cancellation of adjacent self-inverse gate pairs (X·X, H·H, CNOT·CNOT, ...)
* cancellation of adjacent gate/adjoint pairs (S·Sdag, T·Tdag)
* fusion of consecutive rotations about the same axis on the same qubit
* removal of identity gates and zero-angle rotations

The pass only merges operations that are adjacent *on the qubit timeline*
(no other operation touching the same qubit in between), so correctness does
not depend on commutation analysis.
"""

from __future__ import annotations

import math

from repro.core.circuit import Circuit
from repro.core.gates import HERMITIAN_GATES, build_gate
from repro.core.operations import GateOperation, Operation
from repro.openql.passes.base import Pass
from repro.openql.platform import Platform

_INVERSE_PAIRS = {
    ("s", "sdag"), ("sdag", "s"),
    ("t", "tdag"), ("tdag", "t"),
    ("x90", "mx90"), ("mx90", "x90"),
    ("y90", "my90"), ("my90", "y90"),
}

_ROTATIONS = {"rx", "ry", "rz", "cr"}

_ANGLE_EPS = 1e-12


class OptimizationPass(Pass):
    """Fixed-point peephole optimiser."""

    name = "optimization"

    def __init__(self, max_iterations: int = 20):
        self.max_iterations = max_iterations
        self._removed = 0

    def run(self, circuit: Circuit, platform: Platform) -> Circuit:
        self._removed = 0
        before = circuit.gate_count()
        operations = list(circuit.operations)
        for _ in range(self.max_iterations):
            operations, changed = self._one_round(operations)
            if not changed:
                break
        result = Circuit(circuit.num_qubits, circuit.name, num_bits=circuit.num_bits)
        result.operations = operations
        self._removed = before - result.gate_count()
        return result

    def statistics(self) -> dict:
        return {"gates_removed": self._removed}

    # ------------------------------------------------------------------ #
    def _one_round(self, operations: list[Operation]) -> tuple[list[Operation], bool]:
        changed = False
        result: list[Operation] = []
        skip: set[int] = set()
        for index, op in enumerate(operations):
            if index in skip:
                continue
            if not isinstance(op, GateOperation):
                result.append(op)
                continue
            # Drop identities and null rotations.
            if op.name == "i" or (
                op.name in _ROTATIONS and abs(_wrap_angle(op.params[0])) < _ANGLE_EPS
            ):
                changed = True
                continue
            partner = self._next_on_same_qubits(operations, index, skip)
            if partner is not None:
                other = operations[partner]
                assert isinstance(other, GateOperation)
                merged = self._try_merge(op, other)
                if merged is not None:
                    skip.add(partner)
                    changed = True
                    if merged != "cancel":
                        result.append(merged)
                    continue
            result.append(op)
        return result, changed

    def _next_on_same_qubits(
        self, operations: list[Operation], index: int, skip: set[int]
    ) -> int | None:
        """Index of the next operation acting on exactly the same qubits,
        provided no other operation touches any of them in between."""
        target = operations[index]
        qubits = set(target.qubits)
        for j in range(index + 1, len(operations)):
            if j in skip:
                continue
            other = operations[j]
            other_qubits = set(other.qubits)
            if not (qubits & other_qubits):
                continue
            if isinstance(other, GateOperation) and other.qubits == target.qubits:
                return j
            return None
        return None

    def _try_merge(self, first: GateOperation, second: GateOperation):
        """Return 'cancel', a merged operation, or None if nothing applies."""
        if first.name == second.name and first.name in HERMITIAN_GATES:
            return "cancel"
        if (first.name, second.name) in _INVERSE_PAIRS:
            return "cancel"
        if first.name == second.name and first.name in _ROTATIONS:
            angle = _wrap_angle(first.params[0] + second.params[0])
            if abs(angle) < _ANGLE_EPS:
                return "cancel"
            gate = build_gate(first.name, angle)
            return GateOperation(gate, first.qubits)
        return None


def _wrap_angle(angle: float) -> float:
    """Wrap an angle to (-2*pi, 2*pi] treating full turns as identity."""
    two_pi = 2.0 * math.pi
    wrapped = math.fmod(angle, 2.0 * two_pi)
    # Rotations are 4*pi periodic in general, but 2*pi differs only by a
    # global phase, which is unobservable, so treat 2*pi as identity.
    wrapped = math.fmod(wrapped, two_pi)
    return wrapped
