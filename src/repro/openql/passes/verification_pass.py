"""Opt-in circuit verification pass.

Runs the :mod:`repro.analysis.circuit_check` def-use verifier over the
circuit *after* the transforming passes, so what is checked is what will
actually execute (mapping may have re-indexed qubits, scheduling may have
reordered commuting operations).  The pass transforms nothing; it only
records diagnostics in its statistics and — in strict mode — raises
:class:`~repro.analysis.circuit_check.CircuitContractError` on
error-severity findings.
"""

from __future__ import annotations

from repro.analysis.circuit_check import CircuitContractError, verify
from repro.core.circuit import Circuit
from repro.openql.passes.base import Pass
from repro.openql.platform import Platform


class VerificationPass(Pass):
    """Verify classical/quantum dataflow; identity on the circuit itself."""

    name = "verification"

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.last_diagnostics = []

    def run(self, circuit: Circuit, platform: Platform) -> Circuit:
        diagnostics = verify(circuit)
        self.last_diagnostics = diagnostics
        if self.strict:
            errors = [diag for diag in diagnostics if diag.severity == "error"]
            if errors:
                raise CircuitContractError(errors, where=circuit.name)
        return circuit

    def statistics(self) -> dict:
        return {
            "diagnostics": len(self.last_diagnostics),
            "errors": sum(1 for d in self.last_diagnostics if d.severity == "error"),
            "warnings": sum(1 for d in self.last_diagnostics if d.severity == "warning"),
            "codes": sorted({d.code for d in self.last_diagnostics}),
        }
