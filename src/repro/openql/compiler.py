"""The OpenQL-style compiler (pass manager).

Figure 4 of the paper: the quantum compiler takes the program's kernels,
runs decomposition, optimisation, mapping and scheduling passes for the
target platform, and emits cQASM.  For hardware-like platforms the eQASM
backend (:mod:`repro.eqasm`) performs the second back-end pass that turns
cQASM into timed, executable instructions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.circuit import Circuit
from repro.cqasm.writer import program_to_cqasm
from repro.mapping.scheduling import Schedule
from repro.openql.passes.base import Pass
from repro.openql.passes.decomposition import DecompositionPass
from repro.openql.passes.mapping_pass import MappingPass
from repro.openql.passes.optimization import OptimizationPass
from repro.openql.passes.scheduling_pass import SchedulingPass
from repro.openql.passes.verification_pass import VerificationPass
from repro.openql.platform import Platform
from repro.openql.program import Program


@dataclass
class CompilationResult:
    """Everything the compiler produces for one program."""

    program_name: str
    platform: Platform
    kernels: list[Circuit] = field(default_factory=list)
    kernel_iterations: list[int] = field(default_factory=list)
    cqasm: str = ""
    schedules: list[Schedule] = field(default_factory=list)
    pass_statistics: list[dict] = field(default_factory=list)
    compile_time_s: float = 0.0

    def flat_circuit(self) -> Circuit:
        """Flatten all kernels (honouring iteration counts) into one circuit.

        Classical register width is preserved: the flat circuit carries the
        widest kernel's ``num_bits`` so bit-indexed results (cross-mapped
        measurements, conditional feedback) stay addressable downstream.
        """
        num_qubits = max(k.num_qubits for k in self.kernels)
        num_bits = max(max(k.num_bits for k in self.kernels), num_qubits)
        flat = Circuit(num_qubits, name=self.program_name, num_bits=num_bits)
        for circuit, iterations in zip(self.kernels, self.kernel_iterations, strict=True):
            for _ in range(iterations):
                for op in circuit.operations:
                    flat.append(op)
        return flat

    def total_gate_count(self) -> int:
        return sum(
            circuit.gate_count() * iterations
            for circuit, iterations in zip(self.kernels, self.kernel_iterations, strict=True)
        )

    def total_makespan_ns(self) -> int:
        return sum(
            schedule.makespan * iterations
            for schedule, iterations in zip(self.schedules, self.kernel_iterations, strict=False)
        )

    def statistics_for(self, pass_name: str) -> dict:
        merged: dict = {}
        for record in self.pass_statistics:
            if record["pass"] == pass_name:
                for key, value in record.items():
                    if key in ("pass", "kernel"):
                        continue
                    if isinstance(value, (int, float)) and key in merged:
                        merged[key] += value
                    else:
                        merged.setdefault(key, value)
        return merged


class Compiler:
    """Configurable pass manager."""

    def __init__(
        self,
        passes: list[Pass] | None = None,
        optimize: bool = True,
        map_circuits: bool = True,
        schedule_policy: str = "asap",
        verify: bool = False,
        strict_verify: bool = False,
    ):
        if passes is not None:
            self.passes = passes
        else:
            self.passes = []
            self.passes.append(DecompositionPass())
            if optimize:
                self.passes.append(OptimizationPass())
            if map_circuits:
                self.passes.append(MappingPass())
            self.passes.append(SchedulingPass(policy=schedule_policy))
            if verify or strict_verify:
                # Verification runs last so it sees the mapped, scheduled
                # circuit that will actually execute.
                self.passes.append(VerificationPass(strict=strict_verify))

    # ------------------------------------------------------------------ #
    def compile(self, program: Program) -> CompilationResult:
        """Run every pass on every kernel and emit cQASM."""
        start = time.perf_counter()
        result = CompilationResult(program_name=program.name, platform=program.platform)
        for entry in program.entries:
            circuit = entry.kernel.circuit
            for compiler_pass in self.passes:
                circuit = compiler_pass.run(circuit, program.platform)
                stats = {"pass": compiler_pass.name, "kernel": entry.kernel.name}
                stats.update(compiler_pass.statistics())
                result.pass_statistics.append(stats)
                if isinstance(compiler_pass, SchedulingPass) and compiler_pass.last_schedule:
                    result.schedules.append(compiler_pass.last_schedule)
            circuit.name = entry.kernel.name
            result.kernels.append(circuit)
            result.kernel_iterations.append(entry.iterations)
        if not result.schedules:
            result.schedules = []
        result.cqasm = program_to_cqasm(
            result.kernels, num_qubits=program.platform.num_qubits
        )
        result.compile_time_s = time.perf_counter() - start
        return result

    def compile_circuit(self, circuit: Circuit, platform: Platform) -> Circuit:
        """Convenience: run the pass pipeline on a bare circuit."""
        compiled = circuit
        for compiler_pass in self.passes:
            compiled = compiler_pass.run(compiled, platform)
        return compiled
