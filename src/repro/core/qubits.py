"""Real, realistic and perfect qubit models (Section 2.1 of the paper).

The paper distinguishes three qubit kinds:

* **real** qubits — experimentally realised devices with measured coherence
  times and gate error rates (e.g. superconducting transmons);
* **realistic** qubits — simulated qubits with configurable error models so
  architects can explore "what if the error rate were 10^-5" questions;
* **perfect** qubits — ideal qubits with no decoherence and no gate errors,
  used by application developers to validate quantum logic.

A :class:`QubitModel` captures the parameters the rest of the stack needs:
the QX error models derive channel probabilities from it, the eQASM backend
derives gate durations from it, and the mapper decides whether the
nearest-neighbour constraint applies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class QubitModel:
    """Quality parameters of a qubit family.

    Parameters
    ----------
    kind:
        ``"perfect"``, ``"realistic"`` or ``"real"``.
    t1_ns / t2_ns:
        Relaxation and dephasing times in nanoseconds (``inf`` for perfect).
    single_qubit_error_rate / two_qubit_error_rate:
        Depolarising error probability per gate.
    measurement_error_rate:
        Probability of reading out the wrong value.
    single_qubit_gate_ns / two_qubit_gate_ns / measurement_ns:
        Operation durations in nanoseconds.
    nearest_neighbour_only:
        Whether two-qubit gates are restricted to adjacent qubits, which
        forces the mapping layer to insert routing operations.
    """

    kind: str
    t1_ns: float
    t2_ns: float
    single_qubit_error_rate: float
    two_qubit_error_rate: float
    measurement_error_rate: float
    single_qubit_gate_ns: int = 20
    two_qubit_gate_ns: int = 40
    measurement_ns: int = 300
    nearest_neighbour_only: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("perfect", "realistic", "real"):
            raise ValueError(f"unknown qubit kind {self.kind!r}")
        for rate in (
            self.single_qubit_error_rate,
            self.two_qubit_error_rate,
            self.measurement_error_rate,
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"error rate {rate} outside [0, 1]")
        if self.t1_ns <= 0 or self.t2_ns <= 0:
            raise ValueError("coherence times must be positive")

    @property
    def is_perfect(self) -> bool:
        return self.kind == "perfect"

    def decay_probability(self, duration_ns: float) -> float:
        """Probability of a T1 relaxation event over ``duration_ns``."""
        if math.isinf(self.t1_ns):
            return 0.0
        return 1.0 - math.exp(-duration_ns / self.t1_ns)

    def dephasing_probability(self, duration_ns: float) -> float:
        """Probability of a pure-dephasing event over ``duration_ns``."""
        if math.isinf(self.t2_ns):
            return 0.0
        # Pure dephasing rate: 1/Tphi = 1/T2 - 1/(2*T1).
        inv_tphi = 1.0 / self.t2_ns - 0.5 / self.t1_ns
        inv_tphi = max(inv_tphi, 0.0)
        return 1.0 - math.exp(-duration_ns * inv_tphi)

    def with_error_rate(self, error_rate: float) -> "QubitModel":
        """Return a copy scaled to a new single-qubit error rate.

        The two-qubit and measurement error rates keep their original ratio
        to the single-qubit rate, which is how the paper's "realistic qubit"
        sweeps (10^-2 down to 10^-6) are expressed.
        """
        if self.single_qubit_error_rate > 0:
            scale = error_rate / self.single_qubit_error_rate
        else:
            scale = 0.0 if error_rate == 0 else 1.0
        return replace(
            self,
            kind="realistic" if error_rate > 0 else "perfect",
            single_qubit_error_rate=error_rate,
            two_qubit_error_rate=min(1.0, self.two_qubit_error_rate * scale)
            if self.single_qubit_error_rate > 0
            else min(1.0, 10 * error_rate),
            measurement_error_rate=min(1.0, self.measurement_error_rate * scale)
            if self.single_qubit_error_rate > 0
            else min(1.0, 5 * error_rate),
        )


#: Perfect qubits: no decoherence, no gate errors (application development mode).
PERFECT = QubitModel(
    kind="perfect",
    t1_ns=float("inf"),
    t2_ns=float("inf"),
    single_qubit_error_rate=0.0,
    two_qubit_error_rate=0.0,
    measurement_error_rate=0.0,
    nearest_neighbour_only=False,
)

#: Realistic qubits: tunable error model, default set near-term values
#: (error rates around 10^-3, coherence tens of microseconds).
REALISTIC = QubitModel(
    kind="realistic",
    t1_ns=30_000.0,
    t2_ns=20_000.0,
    single_qubit_error_rate=1e-3,
    two_qubit_error_rate=1e-2,
    measurement_error_rate=2e-2,
    nearest_neighbour_only=True,
)

#: Real transmon-like qubits: parameters representative of the
#: superconducting devices cited in the paper (error rate ~0.1-1%,
#: T1 in the tens of microseconds).
REAL_TRANSMON = QubitModel(
    kind="real",
    t1_ns=20_000.0,
    t2_ns=15_000.0,
    single_qubit_error_rate=1e-3,
    two_qubit_error_rate=1.5e-2,
    measurement_error_rate=3e-2,
    single_qubit_gate_ns=20,
    two_qubit_gate_ns=40,
    measurement_ns=600,
    nearest_neighbour_only=True,
)

#: Real spin-qubit (semiconducting) model: slower gates, similar fidelities.
REAL_SPIN = QubitModel(
    kind="real",
    t1_ns=100_000.0,
    t2_ns=10_000.0,
    single_qubit_error_rate=2e-3,
    two_qubit_error_rate=2e-2,
    measurement_error_rate=5e-2,
    single_qubit_gate_ns=100,
    two_qubit_gate_ns=200,
    measurement_ns=1_000,
    nearest_neighbour_only=True,
)
