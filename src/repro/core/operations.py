"""Circuit operations: gate applications, measurements, barriers and classical ops.

These are the elements a :class:`repro.core.circuit.Circuit` is made of and
the atoms the compiler schedules, maps and eventually lowers to cQASM /
eQASM instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.gates import Gate


@dataclass
class Operation:
    """Base class for everything that can appear in a circuit."""

    qubits: tuple[int, ...]

    @property
    def name(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def duration(self) -> int:
        """Nominal duration in nanoseconds."""
        return 0

    def remap(self, mapping: dict[int, int]) -> "Operation":
        """Return a copy of this operation with qubit indices translated."""
        raise NotImplementedError


@dataclass
class GateOperation(Operation):
    """Application of a :class:`Gate` to specific qubits."""

    gate: Gate = None  # type: ignore[assignment]

    def __init__(self, gate: Gate, qubits: tuple[int, ...] | list[int]):
        if gate.num_qubits != len(qubits):
            raise ValueError(
                f"gate {gate.name!r} acts on {gate.num_qubits} qubits, "
                f"got operands {tuple(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubit operands {tuple(qubits)}")
        super().__init__(tuple(int(q) for q in qubits))
        self.gate = gate

    @property
    def name(self) -> str:
        return self.gate.name

    @property
    def params(self) -> tuple:
        return self.gate.params

    @property
    def duration(self) -> int:
        return self.gate.duration

    def remap(self, mapping: dict[int, int]) -> "GateOperation":
        return GateOperation(self.gate, tuple(mapping[q] for q in self.qubits))

    def dagger(self) -> "GateOperation":
        return GateOperation(self.gate.dagger(), self.qubits)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        operands = ", ".join(f"q[{q}]" for q in self.qubits)
        return f"GateOperation({self.name} {operands})"


@dataclass
class Measurement(Operation):
    """Computational-basis measurement of one qubit into a classical bit."""

    bit: int = -1
    basis: str = "z"

    #: Default read-out duration in nanoseconds; platforms override it.
    DEFAULT_DURATION_NS = 300

    def __init__(
        self, qubit: int, bit: int | None = None, basis: str = "z", duration: int | None = None
    ):
        super().__init__((int(qubit),))
        self.bit = int(qubit) if bit is None else int(bit)
        self.basis = basis
        self._duration = int(duration) if duration is not None else self.DEFAULT_DURATION_NS

    @property
    def qubit(self) -> int:
        return self.qubits[0]

    @property
    def name(self) -> str:
        return "measure"

    @property
    def duration(self) -> int:
        return self._duration

    def remap(self, mapping: dict[int, int]) -> "Measurement":
        return Measurement(
            mapping[self.qubit], bit=self.bit, basis=self.basis, duration=self._duration
        )


@dataclass
class Barrier(Operation):
    """Scheduling barrier: no operation may be reordered across it."""

    def __init__(self, qubits: tuple[int, ...] | list[int]):
        super().__init__(tuple(int(q) for q in qubits))

    @property
    def name(self) -> str:
        return "barrier"

    def remap(self, mapping: dict[int, int]) -> "Barrier":
        return Barrier(tuple(mapping[q] for q in self.qubits))


@dataclass
class ConditionalGate(Operation):
    """A gate executed only when a classical bit is 1 (cQASM 2.0 style ``c-`` gates).

    This is the hybrid quantum-classical construct of the paper's cQASM 2.0
    remark: measurement results feed back into the instruction stream at run
    time (e.g. the corrections of quantum teleportation), so the simulator
    must evaluate the condition per shot.
    """

    gate: Gate = None  # type: ignore[assignment]
    condition_bit: int = 0

    def __init__(self, gate: Gate, qubits: tuple[int, ...] | list[int], condition_bit: int):
        if gate.num_qubits != len(qubits):
            raise ValueError(
                f"gate {gate.name!r} acts on {gate.num_qubits} qubits, got {tuple(qubits)}"
            )
        super().__init__(tuple(int(q) for q in qubits))
        self.gate = gate
        self.condition_bit = int(condition_bit)

    @property
    def name(self) -> str:
        return f"c-{self.gate.name}"

    @property
    def params(self) -> tuple:
        return self.gate.params

    @property
    def duration(self) -> int:
        return self.gate.duration

    def remap(self, mapping: dict[int, int]) -> "ConditionalGate":
        return ConditionalGate(
            self.gate, tuple(mapping[q] for q in self.qubits), self.condition_bit
        )


@dataclass
class ClassicalOperation(Operation):
    """Classical operation interleaved with the quantum logic.

    The paper's host/accelerator split encapsulates quantum logic in
    classical control structures; these operations model the classical part
    that reaches the micro-architecture (e.g. binary-controlled gates, loop
    counters, result aggregation).
    """

    opcode: str = "nop"
    operands: tuple = field(default_factory=tuple)

    def __init__(self, opcode: str, operands: tuple = (), qubits: tuple[int, ...] = ()):
        super().__init__(tuple(qubits))
        self.opcode = opcode
        self.operands = tuple(operands)

    @property
    def name(self) -> str:
        return self.opcode

    def remap(self, mapping: dict[int, int]) -> "ClassicalOperation":
        return ClassicalOperation(
            self.opcode, self.operands, tuple(mapping.get(q, q) for q in self.qubits)
        )
