"""Quantum gate definitions and the standard gate set.

The gate set mirrors the instruction vocabulary used throughout the
OpenQL / cQASM tool-chain of the paper: Pauli gates, Clifford generators,
T gates, parameterised rotations, and the two-qubit CNOT / CZ / SWAP
entangling gates.  Every gate knows its unitary matrix so the same objects
drive both the compiler (decomposition, inversion, commutation checks) and
the QX simulator (state evolution).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field

import numpy as np

_SQRT2_INV = 1.0 / math.sqrt(2.0)


def _as_matrix(rows) -> np.ndarray:
    return np.array(rows, dtype=complex)


@dataclass(frozen=True)
class Gate:
    """A named unitary acting on a fixed number of qubits.

    Parameters
    ----------
    name:
        Canonical lower-case mnemonic used in cQASM (``h``, ``cnot``, ...).
    num_qubits:
        Number of qubits the gate acts on.
    matrix:
        ``2**n x 2**n`` unitary matrix.
    params:
        Optional tuple of real parameters (rotation angles, in radians).
    duration:
        Nominal duration in nanoseconds; refined per platform by the
        eQASM backend.
    """

    name: str
    num_qubits: int
    matrix: np.ndarray = field(compare=False, repr=False)
    params: tuple = ()
    duration: int = 20

    def __post_init__(self) -> None:
        dim = 2 ** self.num_qubits
        if self.matrix.shape != (dim, dim):
            raise ValueError(
                f"gate {self.name!r} on {self.num_qubits} qubit(s) requires a "
                f"{dim}x{dim} matrix, got {self.matrix.shape}"
            )

    def is_unitary(self, atol: float = 1e-9) -> bool:
        """Return True when the gate matrix is unitary within ``atol``."""
        ident = np.eye(self.matrix.shape[0])
        return bool(np.allclose(self.matrix @ self.matrix.conj().T, ident, atol=atol))

    def dagger(self) -> "Gate":
        """Return the Hermitian adjoint of this gate."""
        return Gate(
            name=f"{self.name}dag" if not self.name.endswith("dag") else self.name[:-3],
            num_qubits=self.num_qubits,
            matrix=self.matrix.conj().T,
            params=tuple(-p for p in self.params),
            duration=self.duration,
        )

    def equivalent_to(self, other: "Gate", atol: float = 1e-8) -> bool:
        """Return True when two gates are equal up to a global phase."""
        if self.num_qubits != other.num_qubits:
            return False
        a, b = self.matrix, other.matrix
        # Find first non-zero entry of b to fix the phase.
        idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
        if abs(b[idx]) < atol:
            return bool(np.allclose(a, b, atol=atol))
        phase = a[idx] / b[idx]
        if abs(abs(phase) - 1.0) > 1e-6:
            return False
        return bool(np.allclose(a, phase * b, atol=atol))


def identity_gate() -> Gate:
    return Gate("i", 1, _as_matrix([[1, 0], [0, 1]]), duration=20)


def x_gate() -> Gate:
    return Gate("x", 1, _as_matrix([[0, 1], [1, 0]]), duration=20)


def y_gate() -> Gate:
    return Gate("y", 1, _as_matrix([[0, -1j], [1j, 0]]), duration=20)


def z_gate() -> Gate:
    return Gate("z", 1, _as_matrix([[1, 0], [0, -1]]), duration=20)


def h_gate() -> Gate:
    return Gate(
        "h", 1, _SQRT2_INV * _as_matrix([[1, 1], [1, -1]]), duration=20
    )


def s_gate() -> Gate:
    return Gate("s", 1, _as_matrix([[1, 0], [0, 1j]]), duration=20)


def sdag_gate() -> Gate:
    return Gate("sdag", 1, _as_matrix([[1, 0], [0, -1j]]), duration=20)


def t_gate() -> Gate:
    return Gate("t", 1, _as_matrix([[1, 0], [0, cmath.exp(1j * math.pi / 4)]]), duration=20)


def tdag_gate() -> Gate:
    return Gate(
        "tdag", 1, _as_matrix([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]]), duration=20
    )


def x90_gate() -> Gate:
    return rx_gate(math.pi / 2.0, name="x90")


def mx90_gate() -> Gate:
    return rx_gate(-math.pi / 2.0, name="mx90")


def y90_gate() -> Gate:
    return ry_gate(math.pi / 2.0, name="y90")


def my90_gate() -> Gate:
    return ry_gate(-math.pi / 2.0, name="my90")


def rx_gate(theta: float, name: str = "rx") -> Gate:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return Gate(name, 1, _as_matrix([[c, -1j * s], [-1j * s, c]]), params=(theta,), duration=20)


def ry_gate(theta: float, name: str = "ry") -> Gate:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return Gate(name, 1, _as_matrix([[c, -s], [s, c]]), params=(theta,), duration=20)


def rz_gate(theta: float, name: str = "rz") -> Gate:
    phase = cmath.exp(1j * theta / 2.0)
    return Gate(
        name, 1, _as_matrix([[1.0 / phase, 0], [0, phase]]), params=(theta,), duration=20
    )


def phase_gate(theta: float) -> Gate:
    """Diagonal phase gate diag(1, e^{i theta})."""
    return Gate(
        "phase", 1, _as_matrix([[1, 0], [0, cmath.exp(1j * theta)]]), params=(theta,), duration=20
    )


def cnot_gate() -> Gate:
    return Gate(
        "cnot",
        2,
        _as_matrix(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]]
        ),
        duration=40,
    )


def cz_gate() -> Gate:
    return Gate(
        "cz",
        2,
        _as_matrix([[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, -1]]),
        duration=40,
    )


def swap_gate() -> Gate:
    return Gate(
        "swap",
        2,
        _as_matrix([[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]]),
        duration=120,
    )


def cr_gate(theta: float) -> Gate:
    """Controlled phase rotation, the workhorse of the QFT."""
    return Gate(
        "cr",
        2,
        _as_matrix(
            [
                [1, 0, 0, 0],
                [0, 1, 0, 0],
                [0, 0, 1, 0],
                [0, 0, 0, cmath.exp(1j * theta)],
            ]
        ),
        params=(theta,),
        duration=40,
    )


def crk_gate(k: int) -> Gate:
    """Controlled phase rotation by ``2*pi / 2**k`` (cQASM ``crk``)."""
    gate = cr_gate(2.0 * math.pi / (2 ** k))
    return Gate("crk", 2, gate.matrix, params=(float(k),), duration=40)


def toffoli_gate() -> Gate:
    mat = np.eye(8, dtype=complex)
    mat[6, 6] = 0
    mat[7, 7] = 0
    mat[6, 7] = 1
    mat[7, 6] = 1
    return Gate("toffoli", 3, mat, duration=240)


_PARAMETRIC_BUILDERS = {
    "rx": rx_gate,
    "ry": ry_gate,
    "rz": rz_gate,
    "cr": cr_gate,
    "phase": phase_gate,
}

_FIXED_BUILDERS = {
    "i": identity_gate,
    "x": x_gate,
    "y": y_gate,
    "z": z_gate,
    "h": h_gate,
    "s": s_gate,
    "sdag": sdag_gate,
    "t": t_gate,
    "tdag": tdag_gate,
    "x90": x90_gate,
    "mx90": mx90_gate,
    "y90": y90_gate,
    "my90": my90_gate,
    "cnot": cnot_gate,
    "cz": cz_gate,
    "swap": swap_gate,
    "toffoli": toffoli_gate,
}


class GateSet:
    """A registry of gates available to a platform.

    The compiler queries the gate set of the target platform to know what
    it may emit; the simulator queries it to obtain matrices.
    """

    def __init__(self, gates: dict[str, Gate] | None = None):
        self._gates: dict[str, Gate] = dict(gates or {})

    def add(self, gate: Gate) -> None:
        self._gates[gate.name] = gate

    def __contains__(self, name: str) -> bool:
        return name in self._gates or name in _PARAMETRIC_BUILDERS

    def __iter__(self):
        return iter(self._gates.values())

    def names(self) -> list[str]:
        return sorted(self._gates)

    def get(self, name: str, *params: float) -> Gate:
        """Return the gate instance for ``name``, building parametric gates on demand."""
        if params and name in _PARAMETRIC_BUILDERS:
            return _PARAMETRIC_BUILDERS[name](*params)
        if name == "crk" and params:
            return crk_gate(int(params[0]))
        if name in self._gates:
            return self._gates[name]
        if name in _FIXED_BUILDERS:
            return _FIXED_BUILDERS[name]()
        raise KeyError(f"unknown gate {name!r}")


def standard_gate_set() -> GateSet:
    """Return the default universal gate set used by OpenQL-style platforms."""
    gate_set = GateSet()
    for builder in _FIXED_BUILDERS.values():
        gate_set.add(builder())
    return gate_set


def build_gate(name: str, *params: float) -> Gate:
    """Construct a gate by mnemonic, e.g. ``build_gate('rx', 0.5)``.

    Dispatches straight to the gate's builder: constructing a one-off
    ``standard_gate_set()`` (sixteen gate matrices) per call made this the
    hot path of circuit construction and SWAP-heavy routing.
    """
    if params and name in _PARAMETRIC_BUILDERS:
        return _PARAMETRIC_BUILDERS[name](*params)
    if params and name == "crk":
        return crk_gate(int(params[0]))
    if not params and name in _FIXED_BUILDERS:
        return _FIXED_BUILDERS[name]()
    return standard_gate_set().get(name, *params)


PAULI_GATES = ("i", "x", "y", "z")
CLIFFORD_GENERATORS = ("h", "s", "cnot")
TWO_QUBIT_GATES = ("cnot", "cz", "swap", "cr", "crk")
HERMITIAN_GATES = ("i", "x", "y", "z", "h", "cnot", "cz", "swap", "toffoli")
