"""Core quantum circuit model.

This subpackage implements the computational model on which the whole
accelerator stack is built: the quantum gate set (:mod:`repro.core.gates`),
the circuit intermediate representation (:mod:`repro.core.circuit` and
:mod:`repro.core.operations`), the dependency DAG used by the scheduler and
mapper (:mod:`repro.core.dag`), and the real / realistic / perfect qubit
quality models of Section 2.1 of the paper (:mod:`repro.core.qubits`).
"""

from repro.core.gates import Gate, GateSet, standard_gate_set
from repro.core.operations import (
    Operation,
    GateOperation,
    Measurement,
    Barrier,
    ClassicalOperation,
)
from repro.core.circuit import Circuit
from repro.core.qubits import QubitModel, PERFECT, REALISTIC, REAL_TRANSMON
from repro.core.dag import CircuitDAG

__all__ = [
    "Gate",
    "GateSet",
    "standard_gate_set",
    "Operation",
    "GateOperation",
    "Measurement",
    "Barrier",
    "ClassicalOperation",
    "Circuit",
    "QubitModel",
    "PERFECT",
    "REALISTIC",
    "REAL_TRANSMON",
    "CircuitDAG",
]
