"""Quantum circuit intermediate representation.

A :class:`Circuit` is an ordered list of operations on a register of
``num_qubits`` qubits and ``num_bits`` classical bits.  It is the common IR
produced by the OpenQL layer, transformed by the compiler passes, written
out as cQASM, and consumed by the QX simulator and the micro-architecture.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

import numpy as np

from repro.core.gates import Gate, build_gate
from repro.core.operations import (
    Barrier,
    ClassicalOperation,
    ConditionalGate,
    GateOperation,
    Measurement,
    Operation,
)


class Circuit:
    """An ordered sequence of quantum operations on a qubit register."""

    def __init__(self, num_qubits: int, name: str = "circuit", num_bits: int | None = None):
        if num_qubits < 1:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.num_bits = int(num_bits) if num_bits is not None else int(num_qubits)
        self.name = name
        self.operations: list[Operation] = []

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _check_qubits(self, qubits: Iterable[int]) -> None:
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise IndexError(f"qubit {q} out of range for {self.num_qubits}-qubit circuit")

    def append(self, operation: Operation) -> "Circuit":
        """Append an already-built operation."""
        self._check_qubits(operation.qubits)
        self.operations.append(operation)
        return self

    def add_gate(self, name: str, *qubits: int, params: tuple | list = ()) -> "Circuit":
        """Append a gate by mnemonic, e.g. ``circuit.add_gate('cnot', 0, 1)``."""
        gate = build_gate(name, *params)
        return self.append(GateOperation(gate, tuple(qubits)))

    def apply(self, gate: Gate, *qubits: int) -> "Circuit":
        return self.append(GateOperation(gate, tuple(qubits)))

    # Named single-qubit helpers -------------------------------------------------
    def i(self, qubit: int) -> "Circuit":
        return self.add_gate("i", qubit)

    def x(self, qubit: int) -> "Circuit":
        return self.add_gate("x", qubit)

    def y(self, qubit: int) -> "Circuit":
        return self.add_gate("y", qubit)

    def z(self, qubit: int) -> "Circuit":
        return self.add_gate("z", qubit)

    def h(self, qubit: int) -> "Circuit":
        return self.add_gate("h", qubit)

    def s(self, qubit: int) -> "Circuit":
        return self.add_gate("s", qubit)

    def sdag(self, qubit: int) -> "Circuit":
        return self.add_gate("sdag", qubit)

    def t(self, qubit: int) -> "Circuit":
        return self.add_gate("t", qubit)

    def tdag(self, qubit: int) -> "Circuit":
        return self.add_gate("tdag", qubit)

    def rx(self, qubit: int, theta: float) -> "Circuit":
        return self.add_gate("rx", qubit, params=(theta,))

    def ry(self, qubit: int, theta: float) -> "Circuit":
        return self.add_gate("ry", qubit, params=(theta,))

    def rz(self, qubit: int, theta: float) -> "Circuit":
        return self.add_gate("rz", qubit, params=(theta,))

    # Two- and three-qubit helpers ------------------------------------------------
    def cnot(self, control: int, target: int) -> "Circuit":
        return self.add_gate("cnot", control, target)

    def cx(self, control: int, target: int) -> "Circuit":
        return self.cnot(control, target)

    def cz(self, control: int, target: int) -> "Circuit":
        return self.add_gate("cz", control, target)

    def swap(self, qubit_a: int, qubit_b: int) -> "Circuit":
        return self.add_gate("swap", qubit_a, qubit_b)

    def cr(self, control: int, target: int, theta: float) -> "Circuit":
        return self.add_gate("cr", control, target, params=(theta,))

    def crk(self, control: int, target: int, k: int) -> "Circuit":
        return self.add_gate("crk", control, target, params=(k,))

    def toffoli(self, control_a: int, control_b: int, target: int) -> "Circuit":
        return self.add_gate("toffoli", control_a, control_b, target)

    # Non-gate operations ---------------------------------------------------------
    def measure(self, qubit: int, bit: int | None = None) -> "Circuit":
        self._check_qubits((qubit,))
        self.operations.append(Measurement(qubit, bit))
        return self

    def measure_all(self) -> "Circuit":
        for qubit in range(self.num_qubits):
            self.measure(qubit)
        return self

    def barrier(self, *qubits: int) -> "Circuit":
        targets = tuple(qubits) if qubits else tuple(range(self.num_qubits))
        self._check_qubits(targets)
        self.operations.append(Barrier(targets))
        return self

    def classical(self, opcode: str, operands: tuple = ()) -> "Circuit":
        self.operations.append(ClassicalOperation(opcode, operands))
        return self

    def conditional_gate(
        self, name: str, condition_bit: int, *qubits: int, params: tuple | list = ()
    ) -> "Circuit":
        """Append a gate applied only when ``condition_bit`` measured 1.

        Example (teleportation corrections)::

            circuit.conditional_gate("x", 1, 2)   # X on q2 if bit 1 is set
            circuit.conditional_gate("z", 0, 2)   # Z on q2 if bit 0 is set
        """
        self._check_qubits(qubits)
        gate = build_gate(name, *params)
        self.operations.append(ConditionalGate(gate, tuple(qubits), condition_bit))
        return self

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def gate_operations(self) -> list[GateOperation]:
        return [op for op in self.operations if isinstance(op, GateOperation)]

    def measurements(self) -> list[Measurement]:
        return [op for op in self.operations if isinstance(op, Measurement)]

    def gate_count(self, name: str | None = None) -> int:
        """Number of gate operations, optionally restricted to one mnemonic."""
        ops = self.gate_operations()
        if name is None:
            return len(ops)
        return sum(1 for op in ops if op.name == name)

    def two_qubit_gate_count(self) -> int:
        return sum(1 for op in self.gate_operations() if len(op.qubits) == 2)

    def depth(self) -> int:
        """Circuit depth counted in gate layers (measurements included)."""
        level: dict[int, int] = {q: 0 for q in range(self.num_qubits)}
        depth = 0
        for op in self.operations:
            if isinstance(op, (GateOperation, Measurement)):
                start = max((level[q] for q in op.qubits), default=0)
                for q in op.qubits:
                    level[q] = start + 1
                depth = max(depth, start + 1)
            elif isinstance(op, Barrier):
                start = max((level[q] for q in op.qubits), default=0)
                for q in op.qubits:
                    level[q] = start
        return depth

    def qubits_used(self) -> set[int]:
        used: set[int] = set()
        for op in self.operations:
            used.update(op.qubits)
        return used

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def copy(self, name: str | None = None) -> "Circuit":
        clone = Circuit(self.num_qubits, name or self.name, num_bits=self.num_bits)
        clone.operations = list(self.operations)
        return clone

    def compose(self, other: "Circuit") -> "Circuit":
        """Append the operations of ``other`` to a copy of this circuit."""
        if other.num_qubits > self.num_qubits:
            raise ValueError("cannot compose a larger circuit onto a smaller one")
        result = self.copy()
        result.operations.extend(other.operations)
        return result

    def inverse(self) -> "Circuit":
        """Return the adjoint circuit (gates reversed and daggered).

        Measurements are not invertible and raise ``ValueError``.
        """
        result = Circuit(self.num_qubits, f"{self.name}_dag", num_bits=self.num_bits)
        for op in reversed(self.operations):
            if isinstance(op, GateOperation):
                result.append(op.dagger())
            elif isinstance(op, Barrier):
                result.append(op)
            else:
                raise ValueError("cannot invert a circuit containing measurements")
        return result

    def remap(self, mapping: dict[int, int], num_qubits: int | None = None) -> "Circuit":
        """Return a copy with qubit indices translated through ``mapping``."""
        size = num_qubits if num_qubits is not None else self.num_qubits
        result = Circuit(size, self.name, num_bits=max(self.num_bits, size))
        for op in self.operations:
            result.append(op.remap(mapping))
        return result

    def to_unitary(self) -> np.ndarray:
        """Dense unitary of the circuit (gates only; measurement-free circuits).

        Only intended for small circuits (<= ~10 qubits); used by tests and
        the compiler's equivalence checks.
        """
        if self.num_qubits > 12:
            raise ValueError("to_unitary() is limited to 12 qubits")
        dim = 2 ** self.num_qubits
        unitary = np.eye(dim, dtype=complex)
        for op in self.operations:
            if isinstance(op, Measurement):
                raise ValueError("circuit contains measurements; no unitary exists")
            if not isinstance(op, GateOperation):
                continue
            unitary = _expand_gate(op.gate.matrix, op.qubits, self.num_qubits) @ unitary
        return unitary

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Circuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"ops={len(self.operations)}, depth={self.depth()})"
        )


def _expand_gate(matrix: np.ndarray, qubits: tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Embed ``matrix`` acting on ``qubits`` into the full ``2**n`` space.

    Qubit 0 is the least-significant bit of the full basis-state index
    (matching the QX state-vector engine), while inside the gate matrix
    operand 0 is the *most* significant bit of the gate index (textbook
    convention, e.g. the CNOT control is the first operand).
    """
    k = len(qubits)
    dim = 2 ** num_qubits
    full = np.zeros((dim, dim), dtype=complex)
    for basis in range(dim):
        sub_in = 0
        for pos, q in enumerate(qubits):
            sub_in |= ((basis >> q) & 1) << (k - 1 - pos)
        rest = basis
        for q in qubits:
            rest &= ~(1 << q)
        column = matrix[:, sub_in]
        for sub_out in range(2 ** k):
            amp = column[sub_out]
            if amp == 0:
                continue
            out = rest
            for pos, q in enumerate(qubits):
                if (sub_out >> (k - 1 - pos)) & 1:
                    out |= 1 << q
            full[out, basis] += amp
    return full


def bell_pair_circuit() -> Circuit:
    """Two-qubit Bell pair preparation, the canonical smoke-test circuit."""
    circuit = Circuit(2, "bell")
    circuit.h(0).cnot(0, 1)
    return circuit


def ghz_circuit(num_qubits: int) -> Circuit:
    """N-qubit GHZ state preparation used by the QX scalability experiment."""
    circuit = Circuit(num_qubits, f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(1, num_qubits):
        circuit.cnot(0, qubit)
    return circuit


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: int | np.random.SeedSequence | None = None,
    two_qubit_fraction: float = 0.3,
) -> Circuit:
    """Random circuit generator used by the mapping and compiler benchmarks."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, f"random_{num_qubits}x{depth}")
    single = ["x", "y", "z", "h", "s", "t"]
    for _ in range(depth):
        for qubit in range(num_qubits):
            if num_qubits > 1 and rng.random() < two_qubit_fraction:
                other = int(rng.integers(num_qubits - 1))
                if other >= qubit:
                    other += 1
                if qubit < other:
                    circuit.cnot(qubit, other)
            else:
                name = single[int(rng.integers(len(single)))]
                circuit.add_gate(name, qubit)
    return circuit


def rotation_ladder_circuit(
    num_qubits: int, depth: int = 4, seed: int | np.random.SeedSequence = 0
) -> Circuit:
    """Fixed-structure rotation ladder with seed-drawn angles.

    Every seed produces the *same gate positions* (``depth`` layers of
    per-qubit rz+ry followed by a CNOT ladder) with different rotation
    angles — the RB/VQE-style traffic shape the batched runtime is built
    for: a fleet of such circuits shares one lowering plan and stacks into
    one ``(batch, 2**n)`` state-vector pass.
    """
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits, f"rotations_{num_qubits}x{depth}")
    for _ in range(depth):
        for qubit in range(num_qubits):
            circuit.rz(qubit, float(rng.uniform(0.0, 2.0 * math.pi)))
            circuit.ry(qubit, float(rng.uniform(0.0, 2.0 * math.pi)))
        for qubit in range(num_qubits - 1):
            circuit.cnot(qubit, qubit + 1)
    return circuit


def qft_circuit(num_qubits: int, with_swaps: bool = True) -> Circuit:
    """Quantum Fourier transform circuit (controlled-phase ladder).

    With ``with_swaps=True`` the circuit implements the DFT matrix
    ``F[j, k] = exp(2*pi*i*j*k / 2**n) / sqrt(2**n)`` in the engine's
    qubit-0-least-significant basis ordering.
    """
    circuit = Circuit(num_qubits, f"qft_{num_qubits}")
    for target in reversed(range(num_qubits)):
        circuit.h(target)
        for offset, control in enumerate(reversed(range(target)), start=2):
            circuit.cr(control, target, 2.0 * math.pi / (2 ** offset))
    if with_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit
