"""Circuit dependency DAG.

The scheduler (ASAP/ALAP list scheduling) and the router both reason about
which operations depend on which.  The DAG has one node per operation and an
edge whenever two operations touch the same qubit (or classical bit), with
the edge weight equal to the predecessor's duration so that critical-path
(latency) analysis falls out of a longest-path computation.
"""

from __future__ import annotations

import networkx as nx

from repro.core.circuit import Circuit
from repro.core.operations import (
    Barrier,
    ConditionalGate,
    GateOperation,
    Measurement,
    Operation,
)


class CircuitDAG:
    """Dependency graph over the operations of a circuit."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.graph = nx.DiGraph()
        self._build()

    def _build(self) -> None:
        last_use: dict[int, int] = {}
        last_bit_writer: dict[int, int] = {}
        bit_readers_since_write: dict[int, list[int]] = {}
        last_barrier: int | None = None
        for index, op in enumerate(self.circuit.operations):
            self.graph.add_node(index, operation=op)
            predecessors: set[int] = set()
            # Classical data hazards.  RAW: a conditional gate must follow
            # the measurement that produced its condition bit.  WAR: a
            # measurement overwriting a bit must follow every conditional
            # gate that read the previous value.  WAW: successive writes to
            # one bit stay ordered so "last write wins" survives scheduling.
            if isinstance(op, Measurement):
                predecessors.update(bit_readers_since_write.pop(op.bit, ()))
                if op.bit in last_bit_writer:
                    predecessors.add(last_bit_writer[op.bit])
                last_bit_writer[op.bit] = index
            if isinstance(op, ConditionalGate):
                if op.condition_bit in last_bit_writer:
                    predecessors.add(last_bit_writer[op.condition_bit])
                bit_readers_since_write.setdefault(op.condition_bit, []).append(index)
            if isinstance(op, Barrier):
                # A barrier depends on every operation since the last barrier.
                predecessors.update(last_use.values())
                if last_barrier is not None:
                    predecessors.add(last_barrier)
                last_barrier = index
                for qubit in op.qubits:
                    last_use[qubit] = index
            else:
                for qubit in op.qubits:
                    if qubit in last_use:
                        predecessors.add(last_use[qubit])
                    elif last_barrier is not None:
                        predecessors.add(last_barrier)
                    last_use[qubit] = index
            for pred in predecessors:
                if pred == index:
                    continue
                pred_op = self.graph.nodes[pred]["operation"]
                self.graph.add_edge(pred, index, weight=pred_op.duration)

    # ------------------------------------------------------------------ #
    def operation(self, node: int) -> Operation:
        return self.graph.nodes[node]["operation"]

    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def topological_order(self) -> list[int]:
        return list(nx.topological_sort(self.graph))

    def predecessors(self, node: int) -> list[int]:
        return list(self.graph.predecessors(node))

    def successors(self, node: int) -> list[int]:
        return list(self.graph.successors(node))

    def front_layer(self) -> list[int]:
        """Operations with no unscheduled predecessors (roots of the DAG)."""
        return [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]

    def critical_path_length(self) -> int:
        """Total duration (ns) of the longest dependency chain."""
        if self.graph.number_of_nodes() == 0:
            return 0
        finish: dict[int, int] = {}
        for node in self.topological_order():
            op = self.operation(node)
            start = max((finish[p] for p in self.graph.predecessors(node)), default=0)
            finish[node] = start + op.duration
        return max(finish.values(), default=0)

    def asap_levels(self) -> dict[int, int]:
        """Earliest gate layer for each node (unit-latency ASAP levels)."""
        levels: dict[int, int] = {}
        for node in self.topological_order():
            preds = list(self.graph.predecessors(node))
            levels[node] = 0 if not preds else max(levels[p] for p in preds) + 1
        return levels

    def alap_levels(self) -> dict[int, int]:
        """Latest gate layer for each node given the ASAP total depth."""
        asap = self.asap_levels()
        total = max(asap.values(), default=0)
        levels: dict[int, int] = {}
        for node in reversed(self.topological_order()):
            succs = list(self.graph.successors(node))
            levels[node] = total if not succs else min(levels[s] for s in succs) - 1
        return levels

    def layers(self) -> list[list[int]]:
        """Group node indices into ASAP layers of mutually independent operations."""
        asap = self.asap_levels()
        if not asap:
            return []
        result: list[list[int]] = [[] for _ in range(max(asap.values()) + 1)]
        for node, level in asap.items():
            result[level].append(node)
        return result

    def parallelism(self) -> float:
        """Average number of operations per layer — the paper's 'inherent parallelism'."""
        layers = self.layers()
        if not layers:
            return 0.0
        return self.num_nodes() / len(layers)

    def quantum_nodes(self) -> list[int]:
        return [
            n
            for n in self.graph.nodes
            if isinstance(self.operation(n), (GateOperation, Measurement))
        ]
