"""Declarative experiment specifications.

An :class:`ExperimentSpec` captures one full-stack run as plain data:

* **circuit** — either raw cQASM text or a reference to a circuit builder
  (a registry short name such as ``"ghz"``, or a ``"module:function"``
  dotted reference) plus its keyword arguments;
* **platform** — a platform factory name (``"perfect"``, ``"realistic"``,
  ``"superconducting"``, ``"spin_qubit"``, ``"surface17"`` or a dotted
  reference) plus keyword arguments;
* **compiler** — which OpenQL-style passes to run;
* **shots**, **seed** and a **sweep**: named parameter axes whose cartesian
  product defines the experiment's points.

Specs are JSON-serialisable (``to_dict``/``from_dict``) so they can be
stored next to results, shipped to worker processes, and hashed for the
artifact cache.  Sweep keys address spec fields by dotted path:
``"shots"``, ``"circuit.<kwarg>"``, ``"platform.<kwarg>"`` or
``"compiler.<field>"``.
"""

from __future__ import annotations

import copy
import importlib
import json
from dataclasses import asdict, dataclass, field, replace
from itertools import product

from repro.core.circuit import Circuit
from repro.openql.compiler import Compiler
from repro.openql.platform import Platform

#: Registry of circuit builders addressable by short name.
BUILDERS: dict[str, str] = {
    "bell": "repro.core.circuit:bell_pair_circuit",
    "ghz": "repro.core.circuit:ghz_circuit",
    "qft": "repro.core.circuit:qft_circuit",
    "random": "repro.core.circuit:random_circuit",
}

#: Registry of platform factories addressable by short name.
PLATFORMS: dict[str, str] = {
    "perfect": "repro.openql.platform:perfect_platform",
    "realistic": "repro.openql.platform:realistic_platform",
    "superconducting": "repro.openql.platform:superconducting_platform",
    "spin_qubit": "repro.openql.platform:spin_qubit_platform",
    "surface17": "repro.openql.platform:surface17_platform",
}

#: Platform factories that take an explicit qubit count.
_SIZED_PLATFORMS = ("perfect", "realistic")


def resolve_reference(reference: str, registry: dict[str, str] | None = None):
    """Resolve a registry short name or ``"module:attribute"`` reference."""
    if registry and reference in registry:
        reference = registry[reference]
    module_name, _, attribute = reference.partition(":")
    if not attribute:
        raise ValueError(
            f"invalid reference {reference!r}: expected a registry name or 'module:attribute'"
        )
    module = importlib.import_module(module_name)
    return getattr(module, attribute)


@dataclass
class CircuitSpec:
    """Where the quantum logic comes from.

    Exactly one of ``builder`` or ``cqasm`` must be set.  With
    ``measure="all"`` a terminal ``measure_all`` is appended when the built
    circuit contains no measurement of its own (builders in the registry
    produce bare state-preparation circuits).
    """

    builder: str | None = None
    kwargs: dict = field(default_factory=dict)
    cqasm: str | None = None
    measure: str = "all"  # "all" | "asis"

    def __post_init__(self) -> None:
        if (self.builder is None) == (self.cqasm is None):
            raise ValueError("CircuitSpec needs exactly one of builder= or cqasm=")
        if self.measure not in ("all", "asis"):
            raise ValueError(f"measure must be 'all' or 'asis', got {self.measure!r}")

    def build(self) -> Circuit:
        if self.cqasm is not None:
            from repro.cqasm.parser import cqasm_to_circuit

            circuit = cqasm_to_circuit(self.cqasm)
        else:
            builder = resolve_reference(self.builder, BUILDERS)
            circuit = builder(**self.kwargs)
        if not isinstance(circuit, Circuit):
            raise TypeError(f"circuit builder {self.builder!r} returned {type(circuit).__name__}")
        if self.measure == "all" and not circuit.measurements():
            circuit.measure_all()
        return circuit


@dataclass
class PlatformSpec:
    """Which compilation/simulation target the experiment runs against."""

    factory: str = "perfect"
    kwargs: dict = field(default_factory=dict)

    def build(self, default_num_qubits: int | None = None) -> Platform:
        factory = resolve_reference(self.factory, PLATFORMS)
        kwargs = dict(self.kwargs)
        if (
            self.factory in _SIZED_PLATFORMS
            and "num_qubits" not in kwargs
            and default_num_qubits is not None
        ):
            kwargs["num_qubits"] = default_num_qubits
        return factory(**kwargs)


@dataclass
class CompilerSpec:
    """Which OpenQL-style passes to run before simulation."""

    enabled: bool = True
    optimize: bool = True
    map_circuits: bool = True
    schedule_policy: str = "asap"

    def build(self) -> Compiler:
        return Compiler(
            optimize=self.optimize,
            map_circuits=self.map_circuits,
            schedule_policy=self.schedule_policy,
        )


@dataclass
class QecSpec:
    """One surface-code memory experiment (the stabilizer/QEC track).

    An experiment of ``kind="qec"`` runs
    :meth:`repro.qec.surface_code.PlanarSurfaceCode.run_memory_experiment`
    instead of a circuit: the spec's ``shots`` budget is the trial count,
    sharded and seeded exactly like circuit shots, and the merged histogram
    uses key ``"1"`` for logical failures and ``"0"`` for successes (so
    ``point.probability("1")`` is the logical error rate).
    """

    distance: int = 3
    rounds: int | None = None
    physical_error_rate: float = 1e-3
    measurement_error_rate: float | None = None

    def __post_init__(self) -> None:
        if self.distance < 3 or self.distance % 2 == 0:
            raise ValueError("distance must be an odd integer >= 3")
        if not 0.0 <= self.physical_error_rate <= 1.0:
            raise ValueError("physical_error_rate outside [0, 1]")
        read_out = self.measurement_error_rate
        if read_out is not None and not 0.0 <= read_out <= 1.0:
            raise ValueError("measurement_error_rate outside [0, 1]")
        if self.rounds is not None and self.rounds < 1:
            raise ValueError("rounds must be >= 1")


@dataclass
class ExperimentSpec:
    """One declarative full-stack experiment (possibly a parameter sweep).

    ``kind="circuit"`` (the default) compiles and simulates a circuit;
    ``kind="qec"`` runs a surface-code memory experiment described by the
    ``qec`` field on the stabilizer/Pauli-frame track.  Both kinds share the
    sharding, seeding and merging contract.
    """

    name: str
    circuit: CircuitSpec | None = None
    platform: PlatformSpec = field(default_factory=PlatformSpec)
    compiler: CompilerSpec = field(default_factory=CompilerSpec)
    shots: int = 1024
    seed: int = 0
    sweep: dict[str, list] = field(default_factory=dict)
    #: Sharding knobs.  The shard layout depends only on these and on the
    #: effective shot count — never on the worker count — so merged results
    #: are bit-identical for any parallelism level (see docs/runtime.md).
    max_shard_shots: int = 4096
    min_shards: int = 8
    kind: str = "circuit"
    qec: QecSpec | None = None

    def __post_init__(self) -> None:
        if self.shots < 1:
            raise ValueError("shots must be >= 1")
        if self.kind not in ("circuit", "qec"):
            raise ValueError(f"kind must be 'circuit' or 'qec', got {self.kind!r}")
        if self.kind == "circuit" and self.circuit is None:
            raise ValueError("circuit experiments need circuit=")
        if self.kind == "qec" and self.qec is None:
            raise ValueError("qec experiments need qec=")
        for key in self.sweep:
            self._check_sweep_key(key)

    def _check_sweep_key(self, key: str) -> None:
        head, _, tail = key.partition(".")
        if key == "shots":
            return
        if self.kind == "qec":
            if head == "qec" and tail:
                return
            raise ValueError(
                f"invalid sweep key {key!r} for a qec experiment: expected "
                "'shots' or 'qec.<field>'"
            )
        if head in ("circuit", "platform", "compiler") and tail:
            return
        raise ValueError(
            f"invalid sweep key {key!r}: expected 'shots', 'circuit.<kwarg>', "
            "'platform.<kwarg>' or 'compiler.<field>'"
        )

    # ------------------------------------------------------------------ #
    def points(self) -> list["SweepPoint"]:
        """Expand the sweep into resolved per-point specs.

        Points are ordered by the cartesian product of the sweep axes in
        declaration order, so point indices (and therefore shard seeds) are
        stable across runs of the same spec.
        """
        if not self.sweep:
            return [SweepPoint(index=0, params={}, spec=replace(self, sweep={}))]
        axes = list(self.sweep.items())
        points = []
        for index, values in enumerate(product(*(values for _, values in axes))):
            params = {key: value for (key, _), value in zip(axes, values)}
            points.append(SweepPoint(index=index, params=params, spec=self._bind(params)))
        return points

    def _bind(self, params: dict) -> "ExperimentSpec":
        bound = replace(
            self,
            circuit=copy.deepcopy(self.circuit),
            platform=copy.deepcopy(self.platform),
            compiler=copy.deepcopy(self.compiler),
            qec=copy.deepcopy(self.qec),
            sweep={},
        )
        for key, value in params.items():
            head, _, tail = key.partition(".")
            if key == "shots":
                bound.shots = int(value)
            elif head == "circuit":
                bound.circuit.kwargs[tail] = value
            elif head == "platform":
                bound.platform.kwargs[tail] = value
            elif head == "compiler":
                if not hasattr(bound.compiler, tail):
                    raise ValueError(f"unknown compiler field in sweep key {key!r}")
                setattr(bound.compiler, tail, value)
            elif head == "qec":
                if not hasattr(bound.qec, tail):
                    raise ValueError(f"unknown qec field in sweep key {key!r}")
                setattr(bound.qec, tail, value)
            else:  # pragma: no cover - rejected in __post_init__
                raise ValueError(f"invalid sweep key {key!r}")
        if bound.shots < 1:
            raise ValueError("swept shots must be >= 1")
        if bound.qec is not None:
            bound.qec.__post_init__()  # re-validate swept qec fields
        return bound

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        data = dict(data)
        if data.get("circuit") is not None:
            data["circuit"] = CircuitSpec(**data["circuit"])
        if "platform" in data:
            data["platform"] = PlatformSpec(**data["platform"])
        if "compiler" in data:
            data["compiler"] = CompilerSpec(**data["compiler"])
        if data.get("qec") is not None:
            data["qec"] = QecSpec(**data["qec"])
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))


@dataclass
class SweepPoint:
    """One resolved point of a sweep: its index, axis values and bound spec."""

    index: int
    params: dict
    spec: ExperimentSpec
