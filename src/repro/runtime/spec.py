"""Declarative experiment specifications.

An :class:`ExperimentSpec` captures one full-stack run as plain data:

* **circuit** — either raw cQASM text or a reference to a circuit builder
  (a registry short name such as ``"ghz"``, or a ``"module:function"``
  dotted reference) plus its keyword arguments;
* **platform** — a platform factory name (``"perfect"``, ``"realistic"``,
  ``"superconducting"``, ``"spin_qubit"``, ``"surface17"`` or a dotted
  reference) plus keyword arguments;
* **compiler** — which OpenQL-style passes to run;
* **shots**, **seed** and a **sweep**: named parameter axes whose cartesian
  product defines the experiment's points.

Specs are JSON-serialisable (``to_dict``/``from_dict``) so they can be
stored next to results, shipped to worker processes, and hashed for the
artifact cache.  Sweep keys address spec fields by dotted path:
``"shots"``, ``"backend"``, ``"circuit.<kwarg>"``, ``"platform.<kwarg>"``,
``"compiler.<field>"`` or ``"simulation.<field>"``.
"""

from __future__ import annotations

import copy
import importlib
import json
from dataclasses import asdict, dataclass, field, replace
from itertools import product

from repro.core.circuit import Circuit
from repro.openql.compiler import Compiler
from repro.openql.platform import Platform

#: Registry of circuit builders addressable by short name.
BUILDERS: dict[str, str] = {
    "bell": "repro.core.circuit:bell_pair_circuit",
    "ghz": "repro.core.circuit:ghz_circuit",
    "qft": "repro.core.circuit:qft_circuit",
    "random": "repro.core.circuit:random_circuit",
    "rotations": "repro.core.circuit:rotation_ladder_circuit",
}

#: Registry of platform factories addressable by short name.
PLATFORMS: dict[str, str] = {
    "perfect": "repro.openql.platform:perfect_platform",
    "realistic": "repro.openql.platform:realistic_platform",
    "superconducting": "repro.openql.platform:superconducting_platform",
    "spin_qubit": "repro.openql.platform:spin_qubit_platform",
    "surface17": "repro.openql.platform:surface17_platform",
}

#: Platform factories that take an explicit qubit count.
_SIZED_PLATFORMS = ("perfect", "realistic")

#: Topology factories addressable by short name in CompileSpec.
TOPOLOGIES: dict[str, str] = {
    "linear": "repro.mapping.topology:linear_topology",
    "grid": "repro.mapping.topology:grid_topology",
    "square_grid": "repro.mapping.topology:square_grid_topology",
    "full": "repro.mapping.topology:fully_connected_topology",
    "surface7": "repro.mapping.topology:surface7_topology",
    "surface17": "repro.mapping.topology:surface17_topology",
    "heavy_hex": "repro.mapping.topology:ibm_heavy_hex_like",
}


def resolve_reference(reference: str, registry: dict[str, str] | None = None):
    """Resolve a registry short name or ``"module:attribute"`` reference."""
    if registry and reference in registry:
        reference = registry[reference]
    module_name, _, attribute = reference.partition(":")
    if not attribute:
        raise ValueError(
            f"invalid reference {reference!r}: expected a registry name or 'module:attribute'"
        )
    module = importlib.import_module(module_name)
    return getattr(module, attribute)


@dataclass
class CircuitSpec:
    """Where the quantum logic comes from.

    Exactly one of ``builder`` or ``cqasm`` must be set.  With
    ``measure="all"`` a terminal ``measure_all`` is appended when the built
    circuit contains no measurement of its own (builders in the registry
    produce bare state-preparation circuits).
    """

    builder: str | None = None
    kwargs: dict = field(default_factory=dict)
    cqasm: str | None = None
    measure: str = "all"  # "all" | "asis"

    def __post_init__(self) -> None:
        if (self.builder is None) == (self.cqasm is None):
            raise ValueError("CircuitSpec needs exactly one of builder= or cqasm=")
        if self.measure not in ("all", "asis"):
            raise ValueError(f"measure must be 'all' or 'asis', got {self.measure!r}")

    def build(self) -> Circuit:
        if self.cqasm is not None:
            from repro.cqasm.parser import cqasm_to_circuit

            circuit = cqasm_to_circuit(self.cqasm)
        else:
            builder = resolve_reference(self.builder, BUILDERS)
            circuit = builder(**self.kwargs)
        if not isinstance(circuit, Circuit):
            raise TypeError(f"circuit builder {self.builder!r} returned {type(circuit).__name__}")
        if self.measure == "all" and not circuit.measurements():
            circuit.measure_all()
        return circuit


@dataclass
class PlatformSpec:
    """Which compilation/simulation target the experiment runs against."""

    factory: str = "perfect"
    kwargs: dict = field(default_factory=dict)

    def build(self, default_num_qubits: int | None = None) -> Platform:
        factory = resolve_reference(self.factory, PLATFORMS)
        kwargs = dict(self.kwargs)
        if (
            self.factory in _SIZED_PLATFORMS
            and "num_qubits" not in kwargs
            and default_num_qubits is not None
        ):
            kwargs["num_qubits"] = default_num_qubits
        return factory(**kwargs)


@dataclass
class SimulationSpec:
    """Which simulation engine executes the shots, and its accuracy knobs.

    ``backend=None`` (the default) lets the
    :class:`~repro.qx.backends.DispatchPolicy` cost model choose per
    circuit; an explicit name pins the engine for every sweep point and
    fails fast (:class:`~repro.qx.backends.UnsupportedBackendError`) when
    the circuit is outside its capability matrix.  ``max_bond`` and
    ``truncation_threshold`` are the MPS Schmidt-truncation knobs (``None``
    = engine defaults: unbounded bond, i.e. exact).  ``channel_fusion``
    controls whether density-engine points fuse each gate with its trailing
    noise channels into one superoperator (a cost knob, never an accuracy
    knob; on by default).  All fields are sweepable as
    ``"simulation.<field>"``; the backend axis also has the short form
    ``"backend"`` (e.g. ``backend=statevector,mps``).
    """

    backend: str | None = None
    max_bond: int | None = None
    truncation_threshold: float | None = None
    channel_fusion: bool = True

    def __post_init__(self) -> None:
        if self.backend is not None:
            from repro.qx.backends import BACKENDS

            if self.backend not in BACKENDS:
                raise ValueError(
                    f"unknown backend {self.backend!r}: expected one of {sorted(BACKENDS)}"
                )
        if isinstance(self.channel_fusion, str):
            # Sweep axes arrive as strings from the CLI.
            lowered = self.channel_fusion.lower()
            if lowered not in ("true", "false", "on", "off", "1", "0"):
                raise ValueError(
                    f"channel_fusion must be a boolean, got {self.channel_fusion!r}"
                )
            self.channel_fusion = lowered in ("true", "on", "1")
        if self.max_bond is not None and self.max_bond < 1:
            raise ValueError("max_bond must be >= 1 (or None for unbounded)")
        if self.truncation_threshold is not None and self.truncation_threshold < 0.0:
            raise ValueError("truncation_threshold must be >= 0")


@dataclass
class CompilerSpec:
    """Which OpenQL-style passes to run before simulation."""

    enabled: bool = True
    optimize: bool = True
    map_circuits: bool = True
    schedule_policy: str = "asap"
    #: Append the opt-in dataflow verification pass (warn-only; the runner's
    #: ``strict_verify`` escalates findings to errors at plan time).
    verify: bool = False

    def build(self) -> Compiler:
        return Compiler(
            optimize=self.optimize,
            map_circuits=self.map_circuits,
            schedule_policy=self.schedule_policy,
            verify=self.verify,
        )


@dataclass
class QecSpec:
    """One surface-code memory experiment (the stabilizer/QEC track).

    An experiment of ``kind="qec"`` runs
    :meth:`repro.qec.surface_code.PlanarSurfaceCode.run_memory_experiment`
    instead of a circuit: the spec's ``shots`` budget is the trial count,
    sharded and seeded exactly like circuit shots, and the merged histogram
    uses key ``"1"`` for logical failures and ``"0"`` for successes (so
    ``point.probability("1")`` is the logical error rate).
    """

    distance: int = 3
    rounds: int | None = None
    physical_error_rate: float = 1e-3
    measurement_error_rate: float | None = None
    #: ``"phenomenological"`` flips data/measurement bits i.i.d. per round;
    #: ``"circuit"`` runs the real syndrome-extraction circuit through the
    #: Pauli-frame sampler (depolarizing CNOTs, faulty measurements/resets).
    noise_model: str = "phenomenological"
    #: Decoder registry name; ``None`` keeps the per-noise-model default
    #: ("matching" phenomenological, "union_find" circuit).
    decoder: str | None = None

    def __post_init__(self) -> None:
        if self.distance < 3 or self.distance % 2 == 0:
            raise ValueError("distance must be an odd integer >= 3")
        if not 0.0 <= self.physical_error_rate <= 1.0:
            raise ValueError("physical_error_rate outside [0, 1]")
        read_out = self.measurement_error_rate
        if read_out is not None and not 0.0 <= read_out <= 1.0:
            raise ValueError("measurement_error_rate outside [0, 1]")
        if self.rounds is not None and self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.noise_model not in ("phenomenological", "circuit"):
            raise ValueError(
                f"noise_model must be 'phenomenological' or 'circuit', got {self.noise_model!r}"
            )
        if self.decoder is not None and self.decoder not in ("matching", "union_find"):
            raise ValueError(
                f"decoder must be 'matching' or 'union_find', got {self.decoder!r}"
            )

    @property
    def effective_decoder(self) -> str:
        """Decoder name after applying the per-noise-model default."""
        if self.decoder is not None:
            return self.decoder
        return "union_find" if self.noise_model == "circuit" else "matching"


@dataclass
class CompileSpec:
    """One compile-and-map pipeline configuration (``kind="compile"``).

    A compile experiment runs the full OpenQL-style pass pipeline —
    decomposition, optimisation, hybrid-aware placement + routing, timed
    scheduling — for the spec's circuit against a constrained topology, and
    records mapping metrics (SWAPs inserted, routing overhead, schedule
    makespan, :class:`~repro.mapping.traffic.TrafficAnalyzer` locality) per
    sweep point instead of a measurement histogram.  Sweep axes address the
    fields here as ``"compile.<field>"``, so placement strategy x router
    mode x topology x schedule policy sweeps run across worker shards under
    the same deterministic merge contract as ``qec``.
    """

    placement: str = "greedy"  # "greedy" | "trivial"
    router: str = "sabre"  # "sabre" | "path"
    topology: str = "grid"  # a TOPOLOGIES short name
    rows: int | None = None
    cols: int | None = None
    schedule_policy: str = "asap"  # "asap" | "alap"
    lookahead_window: int = 20
    decay: float = 0.7

    def __post_init__(self) -> None:
        if self.placement not in ("greedy", "trivial"):
            raise ValueError("placement must be 'greedy' or 'trivial'")
        if self.router not in ("path", "sabre"):
            raise ValueError("router must be 'path' or 'sabre'")
        if self.schedule_policy not in ("asap", "alap"):
            raise ValueError("schedule_policy must be 'asap' or 'alap'")
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}: expected one of {sorted(TOPOLOGIES)}"
            )
        if self.rows is not None and self.rows < 1:
            raise ValueError("rows must be >= 1")
        if self.cols is not None and self.cols < 1:
            raise ValueError("cols must be >= 1")
        if self.topology != "grid" and self.rows is not None:
            raise ValueError(
                f"rows only applies to topology='grid'; use cols to size {self.topology!r}"
            )
        if self.topology in ("surface7", "surface17") and self.cols is not None:
            raise ValueError(f"topology {self.topology!r} has a fixed layout; cols does not apply")
        if self.lookahead_window < 0:
            raise ValueError("lookahead_window must be >= 0")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")

    def build_topology(self, min_sites: int):
        """Instantiate the target topology with at least ``min_sites`` sites."""
        from repro.mapping.topology import grid_topology, square_grid_topology

        if self.topology == "grid":
            if self.rows is None and self.cols is None:
                return square_grid_topology(min_sites)
            rows = self.rows if self.rows is not None else -(-min_sites // self.cols)
            cols = self.cols if self.cols is not None else -(-min_sites // self.rows)
            return grid_topology(rows, cols)
        factory = resolve_reference(self.topology, TOPOLOGIES)
        if self.topology in ("linear", "square_grid", "full"):
            return factory(max(min_sites, self.cols or 0))
        if self.topology == "heavy_hex":
            return factory(max(min_sites, self.cols or 20))
        return factory()  # fixed-size layouts: surface7, surface17


@dataclass
class ExperimentSpec:
    """One declarative full-stack experiment (possibly a parameter sweep).

    ``kind="circuit"`` (the default) compiles and simulates a circuit;
    ``kind="qec"`` runs a surface-code memory experiment described by the
    ``qec`` field on the stabilizer/Pauli-frame track; ``kind="compile"``
    runs the compile-and-map pipeline described by the ``compile`` field and
    reports mapping metrics.  All kinds share the sharding, seeding and
    merging contract.
    """

    name: str
    circuit: CircuitSpec | None = None
    platform: PlatformSpec = field(default_factory=PlatformSpec)
    compiler: CompilerSpec = field(default_factory=CompilerSpec)
    simulation: SimulationSpec = field(default_factory=SimulationSpec)
    shots: int = 1024
    seed: int = 0
    sweep: dict[str, list] = field(default_factory=dict)
    #: Sharding knobs.  The shard layout depends only on these and on the
    #: effective shot count — never on the worker count — so merged results
    #: are bit-identical for any parallelism level (see docs/runtime.md).
    max_shard_shots: int = 4096
    min_shards: int = 8
    kind: str = "circuit"
    qec: QecSpec | None = None
    compile: CompileSpec | None = None

    def __post_init__(self) -> None:
        if self.shots < 1:
            raise ValueError("shots must be >= 1")
        if self.kind not in ("circuit", "qec", "compile"):
            raise ValueError(f"kind must be 'circuit', 'qec' or 'compile', got {self.kind!r}")
        if self.kind in ("circuit", "compile") and self.circuit is None:
            raise ValueError(f"{self.kind} experiments need circuit=")
        if self.kind == "qec" and self.qec is None:
            raise ValueError("qec experiments need qec=")
        if self.kind == "compile" and self.compile is None:
            self.compile = CompileSpec()
        for key in self.sweep:
            self._check_sweep_key(key)

    def _check_sweep_key(self, key: str) -> None:
        head, _, tail = key.partition(".")
        if self.kind == "qec":
            if key == "shots" or (head == "qec" and tail):
                return
            raise ValueError(
                f"invalid sweep key {key!r} for a qec experiment: expected "
                "'shots' or 'qec.<field>'"
            )
        if self.kind == "compile":
            if head in ("compile", "circuit") and tail:
                return
            raise ValueError(
                f"invalid sweep key {key!r} for a compile experiment: expected "
                "'compile.<field>' or 'circuit.<kwarg>'"
            )
        if key in ("shots", "backend"):
            return
        if head in ("circuit", "platform", "compiler", "simulation") and tail:
            return
        raise ValueError(
            f"invalid sweep key {key!r}: expected 'shots', 'backend', 'circuit.<kwarg>', "
            "'platform.<kwarg>', 'compiler.<field>' or 'simulation.<field>'"
        )

    # ------------------------------------------------------------------ #
    def points(self) -> list["SweepPoint"]:
        """Expand the sweep into resolved per-point specs.

        Points are ordered by the cartesian product of the sweep axes in
        declaration order, so point indices (and therefore shard seeds) are
        stable across runs of the same spec.
        """
        if not self.sweep:
            return [SweepPoint(index=0, params={}, spec=replace(self, sweep={}))]
        axes = list(self.sweep.items())
        points = []
        for index, values in enumerate(product(*(values for _, values in axes))):
            params = {key: value for (key, _), value in zip(axes, values, strict=True)}
            points.append(SweepPoint(index=index, params=params, spec=self._bind(params)))
        return points

    def _bind(self, params: dict) -> "ExperimentSpec":
        bound = replace(
            self,
            circuit=copy.deepcopy(self.circuit),
            platform=copy.deepcopy(self.platform),
            compiler=copy.deepcopy(self.compiler),
            simulation=copy.deepcopy(self.simulation),
            qec=copy.deepcopy(self.qec),
            compile=copy.deepcopy(self.compile),
            sweep={},
        )
        for key, value in params.items():
            head, _, tail = key.partition(".")
            if key == "shots":
                bound.shots = int(value)
            elif key == "backend":
                bound.simulation.backend = value
            elif head == "simulation":
                if not hasattr(bound.simulation, tail):
                    raise ValueError(f"unknown simulation field in sweep key {key!r}")
                setattr(bound.simulation, tail, value)
            elif head == "circuit":
                bound.circuit.kwargs[tail] = value
            elif head == "platform":
                bound.platform.kwargs[tail] = value
            elif head == "compiler":
                if not hasattr(bound.compiler, tail):
                    raise ValueError(f"unknown compiler field in sweep key {key!r}")
                setattr(bound.compiler, tail, value)
            elif head == "qec":
                if not hasattr(bound.qec, tail):
                    raise ValueError(f"unknown qec field in sweep key {key!r}")
                setattr(bound.qec, tail, value)
            elif head == "compile":
                if not hasattr(bound.compile, tail):
                    raise ValueError(f"unknown compile field in sweep key {key!r}")
                setattr(bound.compile, tail, value)
            else:  # pragma: no cover - rejected in __post_init__
                raise ValueError(f"invalid sweep key {key!r}")
        if bound.shots < 1:
            raise ValueError("swept shots must be >= 1")
        bound.simulation.__post_init__()  # re-validate swept simulation fields
        if bound.qec is not None:
            bound.qec.__post_init__()  # re-validate swept qec fields
        if bound.compile is not None:
            bound.compile.__post_init__()  # re-validate swept compile fields
        return bound

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        data = dict(data)
        if data.get("circuit") is not None:
            data["circuit"] = CircuitSpec(**data["circuit"])
        if "platform" in data:
            data["platform"] = PlatformSpec(**data["platform"])
        if "compiler" in data:
            data["compiler"] = CompilerSpec(**data["compiler"])
        if "simulation" in data:
            data["simulation"] = SimulationSpec(**data["simulation"])
        if data.get("qec") is not None:
            data["qec"] = QecSpec(**data["qec"])
        if data.get("compile") is not None:
            data["compile"] = CompileSpec(**data["compile"])
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))


@dataclass
class SweepPoint:
    """One resolved point of a sweep: its index, axis values and bound spec."""

    index: int
    params: dict
    spec: ExperimentSpec
