"""Many-circuit batched execution: fleets of small circuits, one pass.

The per-experiment runtime (:mod:`repro.runtime.runner`) treats a circuit
as the unit of work: build, compile, lower, shard, dispatch.  The paper's
target workloads (RB sequences, QAOA iterates, VQE parameter steps) arrive
instead as *thousands of distinct small circuits*, where that per-circuit
pipeline overhead dwarfs the simulation itself.  :class:`BatchRunner`
amortises every stage across the fleet:

* **lowering** goes through the structural plan cache of
  :mod:`repro.qx.compiled` — the thousand RB sequences that share gate
  positions share one fusion plan, and the content-addressed program cache
  deduplicates outright-identical circuits;
* **execution** groups statevector-dispatched circuits whose lowered
  programs share a skeleton (same op kinds at the same positions on the
  same operands) and evolves each group as one stacked ``(batch, 2**n)``
  ndarray pass through the batched kernels of :mod:`repro.qx.kernels` —
  one kernel call per gate position instead of one per circuit per shard;
* **dispatch** ships whole *chunks* of circuits to pool workers, so the
  process-pool round trip is paid per chunk, not per shard.

Determinism contract: circuit ``i``'s histogram is the merge of its shard
histograms, where shard ``s`` samples with
``SeedSequence(entropy=seed_i, spawn_key=(i, s))`` — exactly the stream a
serial :class:`~repro.runtime.runner.ExperimentRunner` sweep assigns to
point ``i``, for any worker count and any chunk layout.  Circuits the
stacked path cannot take (noise, feedback, pinned or auto-dispatched
non-dense engines, >2-qubit gates) run through the ordinary
:func:`~repro.runtime.worker.run_shard` inside fallback chunks, so their
results match the serial path by construction.
"""

from __future__ import annotations

import copy
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from itertools import product
from pathlib import Path

import numpy as np

from repro.analysis.circuit_check import report
from repro.core.circuit import Circuit
from repro.qx import compiled, kernels
from repro.qx.backends import CircuitProfile, DispatchPolicy, profile_circuit
from repro.qx.compiled import LoweringPlan, program_for
from repro.qx.error_models import error_model_for, noise_kind
from repro.qx.keying import PreparedIndexSampler
from repro.runtime.aggregate import PointResult, merge_counts, merge_metrics
from repro.runtime.cache import ArtifactCache, default_cache_dir
from repro.runtime.seeding import shard_seed, shard_sizes
from repro.runtime.spec import CircuitSpec, CompilerSpec, PlatformSpec, SimulationSpec
from repro.runtime.worker import ShardResult, ShardTask, program_cache_key, run_shard


@dataclass
class BatchCircuit:
    """One circuit of a batch, with optional per-circuit overrides.

    ``None`` fields inherit the batch-level default.  ``label`` names the
    circuit in reports (defaults to ``circuit[<index>]``).
    """

    circuit: CircuitSpec
    shots: int | None = None
    seed: int | None = None
    backend: str | None = None
    max_bond: int | None = None
    truncation_threshold: float | None = None
    channel_fusion: bool | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if self.shots is not None and self.shots < 1:
            raise ValueError("per-circuit shots must be >= 1")
        if self.backend is not None:
            from repro.qx.backends import BACKENDS

            if self.backend not in BACKENDS:
                raise ValueError(
                    f"unknown backend {self.backend!r}: expected one of {sorted(BACKENDS)}"
                )


@dataclass
class BatchSpec:
    """A fleet of circuits sharing shots/seed/platform/backend defaults.

    JSON-serialisable like :class:`~repro.runtime.spec.ExperimentSpec`.
    ``max_chunk_circuits`` and ``max_chunk_bytes`` bound how many circuits
    (and how much stacked amplitude memory) one pool task carries; both
    only affect scheduling granularity, never results.
    """

    name: str
    circuits: list[BatchCircuit] = field(default_factory=list)
    shots: int = 1024
    seed: int = 0
    platform: PlatformSpec = field(default_factory=PlatformSpec)
    compiler: CompilerSpec = field(default_factory=CompilerSpec)
    simulation: SimulationSpec = field(default_factory=SimulationSpec)
    max_shard_shots: int = 4096
    min_shards: int = 8
    max_chunk_circuits: int = 64
    max_chunk_bytes: int = 1 << 27

    def __post_init__(self) -> None:
        if not self.circuits:
            raise ValueError("BatchSpec needs at least one circuit")
        if self.shots < 1:
            raise ValueError("shots must be >= 1")
        if self.max_chunk_circuits < 1:
            raise ValueError("max_chunk_circuits must be >= 1")
        if self.max_chunk_bytes < 1:
            raise ValueError("max_chunk_bytes must be >= 1")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_product(
        cls,
        name: str,
        builder: str,
        axes: dict[str, list],
        base_kwargs: dict | None = None,
        measure: str = "all",
        **defaults,
    ) -> "BatchSpec":
        """Batch over the cartesian product of builder-parameter axes.

        ``from_product("rb", "rotations", {"seed": range(1000)},
        base_kwargs={"num_qubits": 10})`` builds one
        :class:`BatchCircuit` per axis combination, labelled by its
        parameter values, in the same declaration-order product as an
        :class:`~repro.runtime.spec.ExperimentSpec` sweep — so circuit
        indices (and therefore shard seeds) line up with the equivalent
        serial sweep's point indices.
        """
        keys = list(axes)
        circuits = [
            BatchCircuit(
                circuit=CircuitSpec(
                    builder=builder,
                    kwargs={**(base_kwargs or {}), **dict(zip(keys, values, strict=True))},
                    measure=measure,
                ),
                label=",".join(f"{key}={value}" for key, value in zip(keys, values, strict=True)),
            )
            for values in product(*(list(axes[key]) for key in keys))
        ]
        return cls(name=name, circuits=circuits, **defaults)

    # ------------------------------------------------------------------ #
    def resolved_circuit(self, index: int) -> tuple[int, int, SimulationSpec, str]:
        """Circuit ``index``'s ``(shots, seed, simulation, label)`` after overrides.

        The single resolution rule shared by :class:`BatchRunner` and the
        experiment service (which schedules batch circuits as individual
        points): ``None`` fields inherit the batch-level default, and the
        returned :class:`~repro.runtime.spec.SimulationSpec` is an
        independent copy.
        """
        batch_circuit = self.circuits[index]
        shots = batch_circuit.shots if batch_circuit.shots is not None else self.shots
        seed = batch_circuit.seed if batch_circuit.seed is not None else self.seed
        simulation = copy.deepcopy(self.simulation)
        if batch_circuit.backend is not None:
            simulation.backend = batch_circuit.backend
        if batch_circuit.max_bond is not None:
            simulation.max_bond = batch_circuit.max_bond
        if batch_circuit.truncation_threshold is not None:
            simulation.truncation_threshold = batch_circuit.truncation_threshold
        if batch_circuit.channel_fusion is not None:
            simulation.channel_fusion = batch_circuit.channel_fusion
        label = batch_circuit.label or f"circuit[{index}]"
        return shots, seed, simulation, label

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BatchSpec":
        data = dict(data)
        circuits = []
        for entry in data.get("circuits", []):
            entry = dict(entry)
            entry["circuit"] = CircuitSpec(**entry["circuit"])
            circuits.append(BatchCircuit(**entry))
        data["circuits"] = circuits
        if "platform" in data:
            data["platform"] = PlatformSpec(**data["platform"])
        if "compiler" in data:
            data["compiler"] = CompilerSpec(**data["compiler"])
        if "simulation" in data:
            data["simulation"] = SimulationSpec(**data["simulation"])
        return cls(**data)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "BatchSpec":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------- #
# Planned circuits and chunks
# ---------------------------------------------------------------------- #
@dataclass
class PlannedBatchCircuit:
    """One batch circuit resolved down to an executable description."""

    index: int
    label: str
    shots: int
    seed: int
    num_qubits: int
    gate_count: int
    shard_shots: list[int]
    stackable: bool
    #: Shared lowering plan and concrete circuit of a stackable circuit
    #: (matrices are stacked straight off the circuit at chunk build time —
    #: no per-circuit program is ever materialised on this path).
    plan: LoweringPlan | None = None
    circuit: Circuit | None = None
    #: Ordinary worker tasks of a fallback circuit.
    tasks: list[ShardTask] = field(default_factory=list)
    compile_cached: bool = False
    plan_metrics: dict = field(default_factory=dict)


@dataclass
class StackEntry:
    """One row of a stacked chunk (picklable)."""

    index: int
    seed: int
    shard_shots: list[int]


@dataclass
class StackChunk:
    """Circuits sharing a lowering plan, executed as one ndarray pass.

    The parent materialises the fleet's evolution *position-stacked* as
    ``steps``: a ``("gate", qubits, structures, matrices)`` step carries the
    ``(batch, 2, 2)`` / ``(batch, 4, 4)`` per-row matrices of one gate
    position (fused runs already reduced by vectorised matmul, adjacent
    dense pairs merged into 4x4 gemms), and a ``("perm", indices)`` step is
    a run of row-shared permutation gates (a cnot ladder) collapsed into
    one basis-index gather.  Workers only run kernels and sample.
    """

    num_qubits: int
    steps: list[tuple]
    #: Shared sampling sources (structural, identical across the group).
    sources: tuple[int, ...]
    entries: list[StackEntry]


@dataclass
class FallbackChunk:
    """A bundle of per-shard worker tasks (amortises pool dispatch only)."""

    tasks: list[ShardTask]


def run_batch_chunk(chunk: StackChunk | FallbackChunk) -> list[ShardResult]:
    """Execute one chunk; the unit of pool dispatch (top-level: picklable)."""
    if isinstance(chunk, FallbackChunk):
        return [run_shard(task) for task in chunk.tasks]
    return _run_stack_chunk(chunk)


def _run_stack_chunk(chunk: StackChunk) -> list[ShardResult]:
    """One stacked statevector pass over every circuit of the chunk.

    All rows start at |0...0>, every gate position applies the per-row
    matrices through one batched kernel call, and each row then samples its
    shards from its final distribution with the shard's own seed stream —
    the identical draw stream and inverse transform the serial
    ``_run_sampled`` path consumes, with the cumulative distribution
    prepared once per row instead of once per shard.
    """
    entries = chunk.entries
    stacked = np.zeros((len(entries), 1 << chunk.num_qubits), dtype=complex)
    stacked[:, 0] = 1.0
    # Double buffer: dense 1q gemms write into the spare instead of copying a
    # temporary back over their input, halving the memory traffic of the
    # dominant kernel.  apply_gate_batch returns whichever buffer now holds
    # the amplitudes; values are identical to single-buffer execution.
    spare = np.empty_like(stacked)
    for step in chunk.steps:
        if step[0] == "perm":
            result = kernels.permute_basis_batch(stacked, step[1], scratch=spare)
        else:
            _, qubits, structures, matrices = step
            result = kernels.apply_gate_batch(stacked, matrices, qubits, structures, scratch=spare)
        if result is spare:
            stacked, spare = spare, stacked
    results: list[ShardResult] = []
    for row, entry in zip(stacked, entries, strict=True):
        sampler = PreparedIndexSampler(np.abs(row) ** 2, chunk.sources)
        for shard_index, size in enumerate(entry.shard_shots):
            rng = np.random.default_rng(shard_seed(entry.seed, entry.index, shard_index))
            results.append(
                ShardResult(
                    point_index=entry.index,
                    shard_index=shard_index,
                    shots=size,
                    counts=sampler.sample(size, rng),
                )
            )
    return results


_IDENTITY_2 = np.eye(2, dtype=complex)


def _step_first_index(step: tuple) -> int:
    """First circuit-op index a plan step references (program-order key)."""
    if step[0] == "run":
        return step[1][0]
    return step[1]


def _stack_positions(plan: LoweringPlan, circuits: list[Circuit]) -> list[tuple]:
    """Materialise one group's evolution steps, position-stacked across the fleet.

    Replays the plan's fusion steps with *vectorised* matrix arithmetic —
    one ``(batch, 2, 2)`` matmul chain per fused run instead of a Python
    loop per circuit.  A fused run that reduces to the identity on every
    row is elided like :func:`repro.qx.compiled.lower` would elide it; a
    run that is identity on only some rows stays, which multiplies those
    rows by the exact identity (a value-preserving no-op).  Two rewrite
    passes then shrink the number of full-stack traversals: adjacent dense
    1q positions merge into 4x4 gemms, and runs of row-shared permutation
    gates collapse into single basis-index gathers.
    """
    steps: list[tuple] = []
    ops_lists = [circuit.operations for circuit in circuits]
    # Replay in *program order* (first referenced op index), not the plan's
    # ready-list order.  Steps sharing a qubit keep their relative order
    # either way (ops on one qubit are fused contiguously), and disjoint
    # steps commute — but program order restores the builder's grouping
    # (all of a layer's rotations, then its entangler ladder), which is
    # what the pairing and permutation passes below feed on.
    for step in sorted(plan.steps, key=_step_first_index):
        kind = step[0]
        if kind == "run":
            _, indices, qubit = step
            stack = np.array([ops[indices[0]].gate.matrix for ops in ops_lists], dtype=complex)
            for index in indices[1:]:
                factors = np.array([ops[index].gate.matrix for ops in ops_lists], dtype=complex)
                stack = np.matmul(factors, stack)
            if plan.fused and bool((stack == _IDENTITY_2).all()):
                continue
            steps.append(("gate", (qubit,), None, stack))
        elif kind == "gate":
            index = step[1]
            qubits = tuple(ops_lists[0][index].qubits)
            stack = np.array([ops[index].gate.matrix for ops in ops_lists], dtype=complex)
            structures = (
                [kernels.classify_2q(matrix) for matrix in stack]
                if len(qubits) == 2
                else None
            )
            steps.append(("gate", qubits, structures, stack))
        # "measure" has no evolution semantics on the sampled path, and
        # "cond" steps never reach the stacked path (needs_trajectories).
    return _compose_permutations(_pair_dense_steps(steps), circuits[0].num_qubits)


def _gemm_dense_1q(stack: np.ndarray) -> bool:
    """Whether a 1q matrix stack takes :func:`kernels.apply_1q_batch`'s gemm path."""
    diag = (np.abs(stack[:, 0, 1]) < kernels._ATOL) & (np.abs(stack[:, 1, 0]) < kernels._ATOL)
    anti = (np.abs(stack[:, 0, 0]) < kernels._ATOL) & (np.abs(stack[:, 1, 1]) < kernels._ATOL)
    return not (bool(diag.all()) or bool(anti.all()))


def _pair_dense_steps(steps: list[tuple]) -> list[tuple]:
    """Merge consecutive dense 1q gate steps on adjacent qubits into 4x4 gemms.

    Rotation-ladder-style fleets apply a dense 2x2 to every qubit each
    layer; each position is one full traversal of the stack.  Two
    consecutive positions acting on *adjacent* qubits commute (disjoint
    operands), so their Kronecker product ``kron(M_high, M_low)`` applied
    through :func:`kernels.apply_2q_batch`'s dense-adjacent gemm path does
    both in a single traversal — the evolution is the same product of
    unitaries, reassociated, which the histogram-level determinism contract
    absorbs.  Only gemm-bound (dense) pairs merge; scale-only positions
    stay on the cheaper masked kernels.
    """
    merged: list[tuple] = []
    index = 0
    while index < len(steps):
        _, qubits, structures, stack = steps[index]
        if index + 1 < len(steps) and len(qubits) == 1:
            _, next_qubits, _, next_stack = steps[index + 1]
            if (
                len(next_qubits) == 1
                and abs(next_qubits[0] - qubits[0]) == 1
                and _gemm_dense_1q(stack)
                and _gemm_dense_1q(next_stack)
            ):
                if qubits[0] > next_qubits[0]:
                    high, low = stack, next_stack
                else:
                    high, low = next_stack, stack
                batch = stack.shape[0]
                combined = np.einsum("bij,bkl->bikjl", high, low).reshape(batch, 4, 4)
                merged.append(
                    (
                        "gate",
                        (max(qubits[0], next_qubits[0]), min(qubits[0], next_qubits[0])),
                        [kernels.DENSE_2Q] * batch,
                        combined,
                    )
                )
                index += 2
                continue
        merged.append(steps[index])
        index += 1
    return merged


def _compose_permutations(steps: list[tuple], num_qubits: int) -> list[tuple]:
    """Collapse runs of row-shared permutation gates into single gathers.

    A cnot ladder is ``depth * (n - 1)`` full-stack traversals on the
    gate-by-gate path; as basis permutations the whole run composes into
    one ``("perm", indices)`` step — one gather pass, and since gathering
    moves amplitudes without arithmetic, bit-identical to applying the
    gates one at a time.
    """
    composed: list[tuple] = []
    pending: list[tuple] = []

    def flush() -> None:
        # A lone permutation gate stays on its scalar block-move kernel,
        # which touches only the moved subspace; the full-space gather only
        # wins once it replaces two or more traversals.
        if len(pending) == 1:
            composed.append(pending[0][0])
        elif pending:
            combined = pending[0][1]
            for _, indices in pending[1:]:
                combined = combined[indices]
            composed.append(("perm", combined))
        pending.clear()

    for step in steps:
        indices = None
        if step[0] == "gate":
            _, qubits, _, stack = step
            if bool((stack == stack[0]).all()):
                indices = kernels.permutation_index(stack[0], qubits, num_qubits)
        if indices is None:
            flush()
            composed.append(step)
        else:
            pending.append((step, indices))
    flush()
    return composed


@dataclass
class BatchResult:
    """Merged per-circuit results plus plan/cache observability."""

    name: str
    workers: int
    circuits: list[PointResult] = field(default_factory=list)
    total_time_s: float = 0.0
    cache_stats: dict = field(default_factory=dict)
    #: Plan shape: stacked vs fallback counts, group/chunk layout, and the
    #: lowering-cache counters accumulated while planning.
    plan: dict = field(default_factory=dict)

    def circuit(self, label: str) -> PointResult:
        """Look up a circuit's result by its label."""
        for candidate in self.circuits:
            if candidate.params.get("label") == label:
                return candidate
        raise KeyError(f"no batch circuit labelled {label!r}")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "workers": self.workers,
            "total_time_s": round(self.total_time_s, 6),
            "cache_stats": dict(self.cache_stats),
            "plan": dict(self.plan),
            "circuits": [point.to_dict() for point in self.circuits],
        }

    def save(self, path: str | os.PathLike) -> Path:
        """Write the result JSON atomically (tmp + rename, never torn)."""
        from repro.runtime.cache import atomic_write_text

        return atomic_write_text(path, json.dumps(self.to_dict(), indent=2) + "\n")


def _plan_profile(plan: LoweringPlan, circuit: Circuit, shots: int, noise: str) -> CircuitProfile:
    """Build the dispatch profile of a plan's lowered form.

    Equivalent to ``profile_program(lower(circuit))`` for every feature the
    policy reads — gate arities, operand pairs, span, measurement and
    trajectory flags, ``is_clifford=False`` — without materialising the
    program.  (Fused runs count one gate each even when a particular
    circuit's run would elide to the identity; that total only feeds the
    cost model beyond the dense-engine tier, where stacking is off anyway.)
    """
    gate_count = 0
    two_qubit = 0
    span = 0
    max_arity = 1
    pairs: list[tuple[int, int]] = []
    ops = circuit.operations
    for step in plan.steps:
        kind = step[0]
        if kind == "run":
            gate_count += 1
        elif kind != "measure":  # "gate" or "cond"
            qubits = ops[step[1]].qubits
            arity = len(qubits)
            gate_count += 1
            if arity > max_arity:
                max_arity = arity
            if arity == 2:
                first, second = qubits
                two_qubit += 1
                span += abs(first - second)
                pairs.append((first, second))
    return CircuitProfile(
        num_qubits=circuit.num_qubits,
        shots=shots,
        gate_count=gate_count,
        two_qubit_gate_count=two_qubit,
        num_measurements=plan.num_measurements,
        needs_trajectories=plan.needs_trajectories,
        is_clifford=False,
        noise=noise,
        max_gate_qubits=max_arity,
        total_gate_span=span,
        _pairs=pairs,
    )


# ---------------------------------------------------------------------- #
# The batch runner
# ---------------------------------------------------------------------- #
class BatchRunner:
    """Plans and executes a :class:`BatchSpec`.

    Mirrors :class:`~repro.runtime.runner.ExperimentRunner`'s three stages
    (plan, shard, execute) with the fleet-level amortisations described in
    the module docstring.
    """

    def __init__(
        self,
        spec: BatchSpec,
        workers: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        use_cache: bool = True,
        strict_verify: bool = False,
    ):
        from repro.runtime.runner import available_workers

        self.spec = spec
        self.workers = max(1, workers if workers is not None else available_workers())
        self.strict_verify = strict_verify
        if use_cache:
            self.cache: ArtifactCache | None = ArtifactCache(cache_dir or default_cache_dir())
        else:
            self.cache = None
        self.policy = DispatchPolicy()
        #: (plan, shard shots, pinned backend, noise) -> chosen engine.
        self._dispatch_memo: dict[tuple, str] = {}
        #: Plans already dataflow-verified (identity-keyed, like the
        #: dispatch memo): structurally identical fleet circuits share a
        #: plan, so the batch pays for one verification per structure.
        self._verified_plans: set = set()

    # ------------------------------------------------------------------ #
    def _stack_dispatch(
        self,
        plan: LoweringPlan,
        circuit: Circuit,
        size: int,
        backend: str | None,
        noise: str,
    ) -> str:
        """The engine a shard of ``size`` shots would dispatch to.

        Mirrors the worker's ``profile_program`` + ``DispatchPolicy.choose``
        on the lowered program, built from the plan instead: every profile
        feature is structural (lowered programs are never Clifford-eligible,
        and fused runs count one gate each), so one decision serves every
        circuit sharing the plan.  Gates wider than two qubits are mapped to
        a non-stackable pseudo-engine, since the batched kernels stop at 4x4.
        """
        # Keyed on the plan object itself (identity hash): holding the
        # reference prevents an evicted-and-freed plan's id being reused.
        key = (plan, size, backend, noise)
        chosen = self._dispatch_memo.get(key)
        if chosen is None:
            profile = _plan_profile(plan, circuit, size, noise)
            if profile.max_gate_qubits > 2:
                chosen = "unstackable"
            elif backend is not None:
                chosen = backend
            else:
                chosen = self.policy.choose(profile)
            self._dispatch_memo[key] = chosen
        return chosen

    # ------------------------------------------------------------------ #
    def _plan_circuit(
        self, index: int, batch_circuit: BatchCircuit, platforms: dict
    ) -> PlannedBatchCircuit:
        spec = self.spec
        shots, seed, simulation, label = spec.resolved_circuit(index)
        circuit = batch_circuit.circuit.build()
        platform = platforms.get(circuit.num_qubits)
        if platform is None:
            platform = spec.platform.build(default_num_qubits=circuit.num_qubits)
            platforms[circuit.num_qubits] = platform
        if circuit.num_qubits > platform.num_qubits:
            raise ValueError(
                f"batch circuit {label!r} needs {circuit.num_qubits} qubits, "
                f"platform {platform.name!r} has {platform.num_qubits}"
            )
        qubit_model = platform.qubit_model
        noise_free = qubit_model.is_perfect

        compile_cached = False
        cqasm: str | None = None
        if spec.compiler.enabled:
            # Same compile-cache key as the serial runner, so batch and
            # serial runs share compiled artifacts both ways.
            from repro.cqasm.parser import cqasm_to_circuit
            from repro.cqasm.writer import circuit_to_cqasm

            source_cqasm = circuit_to_cqasm(circuit)
            key = ArtifactCache.key_for(
                "compile",
                source=source_cqasm,
                platform=platform.describe(),
                compiler=vars(spec.compiler),
            )
            compiled_cqasm = self.cache.get(key) if self.cache is not None else None
            if not isinstance(compiled_cqasm, str):
                built = spec.compiler.build().compile_circuit(circuit, platform)
                compiled_cqasm = circuit_to_cqasm(built)
                if self.cache is not None:
                    self.cache.put(key, compiled_cqasm)
            else:
                compile_cached = True
            cqasm = compiled_cqasm
            exec_circuit = cqasm_to_circuit(cqasm)
        else:
            # No compilation: lower the built circuit directly.  The cQASM
            # round trip is value-preserving (shortest-round-trip floats,
            # gates rebuilt from the same mnemonics), so this matches the
            # serial path's canonicalised lowering while skipping a
            # write+parse per circuit; the text is only rendered lazily for
            # circuits that fall back to worker tasks.
            exec_circuit = circuit

        shard_shots = shard_sizes(shots, spec.max_shard_shots, spec.min_shards)
        noise = noise_kind(error_model_for(qubit_model))
        if simulation.backend is not None:
            # Fail fast in the parent, exactly like the serial runner.
            self.policy.validate(
                simulation.backend,
                profile_circuit(exec_circuit, shots=shots, noise=noise),
            )

        plan: LoweringPlan | None = None
        plan_metrics: dict = {}
        if noise_free:
            before = compiled.plan_cache_stats()
            plan = compiled.plan_for(exec_circuit, fuse=True)
            after = compiled.plan_cache_stats()
            plan_metrics = {
                "plan_cache_hits": after["hits"] - before["hits"],
                "plan_cache_misses": after["misses"] - before["misses"],
            }

        # Lowering-time dataflow check.  Structurally identical circuits
        # share a lowering plan, so fleets pay for one verification per
        # structure rather than per circuit.
        if plan is None or plan not in self._verified_plans:
            if plan is not None:
                self._verified_plans.add(plan)
            report(exec_circuit, where=f"batch circuit {label!r}", strict=self.strict_verify)

        stackable = (
            plan is not None
            and not plan.needs_trajectories
            and plan.num_measurements > 0
            # The engine run_shard would pick, per shard size (the cost
            # model sees the shard's shots, not the circuit's): stack only
            # when every shard lands on the dense sampled path.  The
            # decision is structural, so it is memoised per (plan, size).
            and all(
                self._stack_dispatch(plan, exec_circuit, size, simulation.backend, noise)
                == "statevector"
                for size in sorted(set(shard_shots))
            )
        )

        planned = PlannedBatchCircuit(
            index=index,
            label=label,
            shots=shots,
            seed=seed,
            num_qubits=exec_circuit.num_qubits,
            gate_count=exec_circuit.gate_count(),
            shard_shots=shard_shots,
            stackable=stackable,
            plan=plan if stackable else None,
            circuit=exec_circuit if stackable else None,
            compile_cached=compile_cached,
            plan_metrics=plan_metrics,
        )
        if not stackable:
            if cqasm is None:
                from repro.cqasm.writer import circuit_to_cqasm

                cqasm = circuit_to_cqasm(circuit)
            if self.cache is not None and noise_free:
                # Pre-warm the disk program cache like the serial planner,
                # so pool workers get artifact hits instead of re-lowering.
                disk_key = program_cache_key(cqasm, True)
                if self.cache.get(disk_key) is None:
                    self.cache.put(disk_key, program_for(exec_circuit, fuse=True))
            cache_dir = str(self.cache.directory) if self.cache is not None else None
            planned.tasks = [
                ShardTask(
                    cqasm=cqasm,
                    num_qubits=exec_circuit.num_qubits,
                    shots=size,
                    root_seed=seed,
                    point_index=index,
                    shard_index=shard_index,
                    qubit_model=None if noise_free else qubit_model,
                    cache_dir=cache_dir,
                    backend=simulation.backend,
                    max_bond=simulation.max_bond,
                    truncation_threshold=simulation.truncation_threshold,
                    channel_fusion=simulation.channel_fusion,
                )
                for shard_index, size in enumerate(shard_shots)
            ]
        return planned

    def plan(self) -> list[PlannedBatchCircuit]:
        platforms: dict = {}
        return [
            self._plan_circuit(index, batch_circuit, platforms)
            for index, batch_circuit in enumerate(self.spec.circuits)
        ]

    # ------------------------------------------------------------------ #
    def _chunks(
        self, planned: list[PlannedBatchCircuit]
    ) -> tuple[list[StackChunk | FallbackChunk], int, int]:
        """Deterministic chunk layout: pure function of the planned batch."""
        spec = self.spec
        groups: dict[tuple, list[PlannedBatchCircuit]] = {}
        fallback: list[PlannedBatchCircuit] = []
        for circuit in planned:
            if not circuit.stackable:
                fallback.append(circuit)
                continue
            # Stack rows that share a lowering plan: same gate positions on
            # the same operands (matrices and angles free to differ per
            # row).  Plan objects are interned by the structural cache, so
            # identity is structure equality here.
            key = (circuit.num_qubits, id(circuit.plan))
            groups.setdefault(key, []).append(circuit)

        chunks: list[StackChunk | FallbackChunk] = []
        # Insertion order = first-seen circuit order: deterministic layout.
        for key, members in groups.items():
            num_qubits = key[0]
            plan = members[0].plan
            _, sources = plan.sample_sources()
            row_bytes = 16 << num_qubits
            per_chunk = max(1, min(spec.max_chunk_circuits, spec.max_chunk_bytes // row_bytes))
            for start in range(0, len(members), per_chunk):
                window = members[start : start + per_chunk]
                steps = _stack_positions(plan, [member.circuit for member in window])
                chunks.append(
                    StackChunk(
                        num_qubits=num_qubits,
                        steps=steps,
                        sources=sources,
                        entries=[
                            StackEntry(
                                index=member.index,
                                seed=member.seed,
                                shard_shots=member.shard_shots,
                            )
                            for member in window
                        ],
                    )
                )
        stack_chunk_count = len(chunks)
        pending: list[ShardTask] = []
        pending_circuits = 0
        for circuit in fallback:
            pending.extend(circuit.tasks)
            pending_circuits += 1
            if pending_circuits >= spec.max_chunk_circuits:
                chunks.append(FallbackChunk(tasks=pending))
                pending, pending_circuits = [], 0
        if pending:
            chunks.append(FallbackChunk(tasks=pending))
        return chunks, stack_chunk_count, len(groups)

    # ------------------------------------------------------------------ #
    def run(self) -> BatchResult:
        start = time.perf_counter()
        planned = self.plan()
        chunks, stack_chunk_count, stack_groups = self._chunks(planned)
        exec_start = time.perf_counter()

        if self.workers == 1 or len(chunks) <= 1:
            chunk_results = [run_batch_chunk(chunk) for chunk in chunks]
        else:
            with ProcessPoolExecutor(max_workers=min(self.workers, len(chunks))) as pool:
                chunk_results = list(pool.map(run_batch_chunk, chunks))
        shard_results = [shard for result in chunk_results for shard in result]
        end = time.perf_counter()

        by_circuit: dict[int, list[ShardResult]] = {}
        for shard in shard_results:
            by_circuit.setdefault(shard.point_index, []).append(shard)

        result = BatchResult(
            name=self.spec.name,
            workers=self.workers,
            cache_stats=self.cache.stats() if self.cache is not None else {},
            plan={
                "circuits": len(planned),
                "stacked_circuits": sum(1 for c in planned if c.stackable),
                "fallback_circuits": sum(1 for c in planned if not c.stackable),
                "stack_groups": stack_groups,
                "stack_chunks": stack_chunk_count,
                "chunks": len(chunks),
                "plan_cache": compiled.plan_cache_stats(),
                "program_content_cache": compiled.content_cache_stats(),
            },
        )
        for circuit in planned:
            shards = by_circuit.get(circuit.index, [])
            metrics = merge_metrics([circuit.plan_metrics] + [shard.metrics for shard in shards])
            result.circuits.append(
                PointResult(
                    index=circuit.index,
                    params={"label": circuit.label},
                    shots=sum(shard.shots for shard in shards),
                    num_qubits=circuit.num_qubits,
                    counts=merge_counts(shard.counts for shard in shards),
                    errors_injected=sum(shard.errors_injected for shard in shards),
                    metrics=metrics,
                    gate_count=circuit.gate_count,
                    compile_cached=circuit.compile_cached,
                    wall_time_s=end - exec_start,
                )
            )
        result.total_time_s = end - start
        return result


def run_batch(
    spec: BatchSpec,
    workers: int | None = None,
    cache_dir: str | os.PathLike | None = None,
    use_cache: bool = True,
) -> BatchResult:
    """Convenience wrapper: plan and execute a batch in one call."""
    return BatchRunner(spec, workers=workers, cache_dir=cache_dir, use_cache=use_cache).run()
