"""Merging shard histograms into per-point and per-experiment results."""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path


def merge_counts(histograms) -> dict[str, int]:
    """Sum measurement histograms; keys are sorted so merges are canonical."""
    merged: Counter[str] = Counter()
    for histogram in histograms:
        merged.update(histogram)
    return {key: int(merged[key]) for key in sorted(merged)}


def merge_metrics(metric_dicts) -> dict:
    """Merge per-shard metric dicts into one per-point dict.

    Cache counters (``program_cache_*``, ``plan_cache_*``) are additive
    across shards; accuracy metrics (``truncation_error``) aggregate
    pessimistically (the worst shard bounds the point); everything else is
    a per-point constant where last-write-wins.
    """
    metrics: dict = {}
    for shard_metrics in metric_dicts:
        for key, value in shard_metrics.items():
            if key.startswith(("program_cache_", "plan_cache_")):
                metrics[key] = metrics.get(key, 0) + value
            elif key == "truncation_error" and key in metrics:
                metrics[key] = max(metrics[key], value)
            else:
                metrics[key] = value
    return metrics


@dataclass
class PointResult:
    """Merged outcome of one sweep point."""

    index: int
    params: dict
    shots: int
    num_qubits: int
    counts: dict[str, int] = field(default_factory=dict)
    errors_injected: int = 0
    gate_count: int = 0
    compile_cached: bool = False
    compile_time_s: float = 0.0
    wall_time_s: float = 0.0
    #: Mapping metrics of a ``kind="compile"`` point (swaps, overhead,
    #: makespan, locality); empty for circuit/qec points.
    metrics: dict = field(default_factory=dict)

    def probability(self, bitstring: str) -> float:
        return self.counts.get(bitstring, 0) / max(self.shots, 1)

    def success_probability(self, *bitstrings: str) -> float:
        """Total probability mass on the given outcomes."""
        return sum(self.probability(bitstring) for bitstring in bitstrings)

    def most_frequent(self) -> str:
        if not self.counts:
            raise ValueError("no measurement results recorded")
        return max(self.counts.items(), key=lambda item: item[1])[0]

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "params": dict(self.params),
            "shots": self.shots,
            "num_qubits": self.num_qubits,
            "counts": dict(self.counts),
            "errors_injected": self.errors_injected,
            "gate_count": self.gate_count,
            "compile_cached": self.compile_cached,
            "compile_time_s": round(self.compile_time_s, 6),
            "wall_time_s": round(self.wall_time_s, 6),
            "metrics": dict(self.metrics),
        }


@dataclass
class ExperimentResult:
    """Everything one :class:`~repro.runtime.runner.ExperimentRunner` run produced."""

    name: str
    workers: int
    points: list[PointResult] = field(default_factory=list)
    total_time_s: float = 0.0
    cache_stats: dict = field(default_factory=dict)

    def point(self, **params) -> PointResult:
        """Look up the point whose sweep params contain the given values."""
        for candidate in self.points:
            if all(candidate.params.get(key) == value for key, value in params.items()):
                return candidate
        raise KeyError(f"no sweep point matching {params!r}")

    @property
    def total_shots(self) -> int:
        return sum(point.shots for point in self.points)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "workers": self.workers,
            "total_time_s": round(self.total_time_s, 6),
            "total_shots": self.total_shots,
            "cache_stats": dict(self.cache_stats),
            "points": [point.to_dict() for point in self.points],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> None:
        """Write the result JSON atomically (tmp + rename, never torn)."""
        from repro.runtime.cache import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")
