"""Parallel experiment runtime for full-stack runs.

The paper's point is a *full stack* — algorithm -> OpenQL-style compilation
-> mapping -> micro-architecture -> QX simulation — but hand-wiring those
layers per script does not scale past a handful of experiments.  This
package turns a full-stack run into data: an :class:`ExperimentSpec`
declares the circuit source, target platform, compiler configuration, shot
budget and parameter sweep, and :class:`ExperimentRunner` executes the
resulting sweep points and shot batches across a process pool with
deterministic per-shard seeding and an on-disk cache of compiled artifacts.

Every workload (GHZ scaling, QGS, TSP, QEC sweeps) enters through the same
API, and multi-core scaling is a property of the runtime rather than of any
one script.  See ``docs/runtime.md`` for the spec format, the
sharding/seeding model and cache invalidation rules.
"""

from repro.runtime.aggregate import ExperimentResult, PointResult, merge_counts, merge_metrics
from repro.runtime.batch import BatchCircuit, BatchResult, BatchRunner, BatchSpec, run_batch
from repro.runtime.cache import ArtifactCache, atomic_write_text, default_cache_dir
from repro.runtime.runner import ExperimentRunner
from repro.runtime.seeding import shard_seed, shard_sizes
from repro.runtime.spec import (
    CircuitSpec,
    CompilerSpec,
    CompileSpec,
    ExperimentSpec,
    PlatformSpec,
    QecSpec,
    SimulationSpec,
    SweepPoint,
)

__all__ = [
    "ArtifactCache",
    "BatchCircuit",
    "BatchResult",
    "BatchRunner",
    "BatchSpec",
    "CircuitSpec",
    "CompileSpec",
    "CompilerSpec",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "PlatformSpec",
    "PointResult",
    "QecSpec",
    "SimulationSpec",
    "SweepPoint",
    "atomic_write_text",
    "default_cache_dir",
    "merge_counts",
    "merge_metrics",
    "run_batch",
    "shard_seed",
    "shard_sizes",
]
