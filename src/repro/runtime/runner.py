"""The parallel experiment runner.

:class:`ExperimentRunner` turns an :class:`~repro.runtime.spec.ExperimentSpec`
into executed results in three stages:

1. **plan** — expand the sweep into points; for each point build the source
   circuit, build the platform, run the OpenQL-style pass pipeline (through
   the compile cache) and lower the compiled cQASM to a
   :class:`~repro.qx.compiled.KernelProgram` (through the program cache, so
   pool workers get disk hits instead of re-lowering);
2. **shard** — split each point's shot budget into a worker-independent
   list of shards, each carrying its ``(root seed, point, shard)`` seed
   coordinates (:mod:`repro.runtime.seeding`);
3. **execute** — run every shard inline (``workers=1``) or across a
   ``ProcessPoolExecutor``, then merge shard histograms per point.  Merging
   is a commutative sum over a deterministic shard list, so the merged
   counts are bit-identical for any worker count.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.analysis.circuit_check import report
from repro.cqasm.parser import cqasm_to_circuit
from repro.cqasm.writer import circuit_to_cqasm
from repro.qx.compiled import lower
from repro.runtime.aggregate import ExperimentResult, PointResult, merge_counts, merge_metrics
from repro.runtime.cache import ArtifactCache, default_cache_dir
from repro.runtime.seeding import shard_sizes
from repro.runtime.spec import ExperimentSpec, SweepPoint
from repro.runtime.worker import (
    CompileShardTask,
    QecShardTask,
    ShardTask,
    mapping_cache_key,
    program_cache_key,
    run_shard,
)


def available_workers() -> int:
    """Usable CPU count (respects scheduler affinity where exposed)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class PlannedPoint:
    """A sweep point compiled down to executable shard tasks."""

    point: SweepPoint
    cqasm: str
    num_qubits: int
    gate_count: int
    compile_cached: bool
    compile_time_s: float
    tasks: list[ShardTask] = field(default_factory=list)


class ExperimentRunner:
    """Executes one spec's sweep points and shot shards, possibly in parallel."""

    def __init__(
        self,
        spec: ExperimentSpec,
        workers: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        use_cache: bool = True,
        strict_verify: bool = False,
    ):
        self.spec = spec
        self.workers = max(1, workers if workers is not None else available_workers())
        self.strict_verify = strict_verify
        if use_cache:
            self.cache: ArtifactCache | None = ArtifactCache(cache_dir or default_cache_dir())
        else:
            self.cache = None

    # ------------------------------------------------------------------ #
    # Planning: compile + lower once per point, through the cache.
    # ------------------------------------------------------------------ #
    def _compile_point(self, point: SweepPoint) -> PlannedPoint:
        spec = point.spec
        start = time.perf_counter()
        circuit = spec.circuit.build()
        platform = spec.platform.build(default_num_qubits=circuit.num_qubits)
        if circuit.num_qubits > platform.num_qubits:
            raise ValueError(
                f"point {point.params!r}: circuit needs {circuit.num_qubits} qubits, "
                f"platform {platform.name!r} has {platform.num_qubits}"
            )
        cached = False
        if spec.compiler.enabled:
            source_cqasm = circuit_to_cqasm(circuit)
            key = ArtifactCache.key_for(
                "compile",
                source=source_cqasm,
                platform=platform.describe(),
                compiler=vars(spec.compiler),
            )
            compiled_cqasm = self.cache.get(key) if self.cache is not None else None
            if not isinstance(compiled_cqasm, str):
                compiled = spec.compiler.build().compile_circuit(circuit, platform)
                compiled_cqasm = circuit_to_cqasm(compiled)
                if self.cache is not None:
                    self.cache.put(key, compiled_cqasm)
            else:
                cached = True
            cqasm = compiled_cqasm
        else:
            cqasm = circuit_to_cqasm(circuit)

        # Canonicalise through the parser so the parent lowers exactly the
        # circuit every worker will reconstruct, then pre-warm the program
        # cache with it.
        canonical = cqasm_to_circuit(cqasm)
        # Plan-time dataflow check: a malformed circuit (out-of-range bits,
        # use-before-write conditionals) should surface once in the parent,
        # not as N confusing worker results.
        report(canonical, where=f"point {point.params!r}", strict=self.strict_verify)
        qubit_model = platform.qubit_model
        fuse = qubit_model.is_perfect
        if self.cache is not None:
            program_key = program_cache_key(cqasm, fuse)
            if self.cache.get(program_key) is None:
                self.cache.put(program_key, lower(canonical, fuse=fuse))
        compile_time = time.perf_counter() - start

        simulation = spec.simulation
        if simulation.backend is not None:
            # Fail fast in the parent: an explicitly pinned engine that
            # cannot run this point's circuit should surface as one clear
            # UnsupportedBackendError, not as N worker crashes.
            from repro.qx.backends import DispatchPolicy, profile_circuit
            from repro.qx.error_models import error_model_for, noise_kind

            DispatchPolicy().validate(
                simulation.backend,
                profile_circuit(
                    canonical,
                    shots=spec.shots,
                    noise=noise_kind(error_model_for(qubit_model)),
                ),
            )
        cache_dir = str(self.cache.directory) if self.cache is not None else None
        tasks = [
            ShardTask(
                cqasm=cqasm,
                num_qubits=canonical.num_qubits,
                shots=size,
                root_seed=spec.seed,
                point_index=point.index,
                shard_index=shard_index,
                qubit_model=None if qubit_model.is_perfect else qubit_model,
                cache_dir=cache_dir,
                backend=simulation.backend,
                max_bond=simulation.max_bond,
                truncation_threshold=simulation.truncation_threshold,
                channel_fusion=simulation.channel_fusion,
            )
            for shard_index, size in enumerate(
                shard_sizes(spec.shots, spec.max_shard_shots, spec.min_shards)
            )
        ]
        return PlannedPoint(
            point=point,
            cqasm=cqasm,
            num_qubits=canonical.num_qubits,
            gate_count=canonical.gate_count(),
            compile_cached=cached,
            compile_time_s=compile_time,
            tasks=tasks,
        )

    def _plan_qec_point(self, point: SweepPoint) -> PlannedPoint:
        """Shard one surface-code memory-experiment point.

        No compilation or artifact cache is involved: the point's trial
        budget (the spec's ``shots``) is sharded with the same layout and
        seed coordinates as circuit shots, so qec sweeps inherit the
        bit-identical 1-vs-N-workers contract for free.
        """
        from repro.qec.surface_code import PlanarSurfaceCode

        spec = point.spec
        start = time.perf_counter()
        qec = spec.qec
        code = PlanarSurfaceCode(qec.distance)  # validates the distance
        tasks = [
            QecShardTask(
                distance=qec.distance,
                trials=size,
                root_seed=spec.seed,
                point_index=point.index,
                shard_index=shard_index,
                rounds=qec.rounds,
                physical_error_rate=qec.physical_error_rate,
                measurement_error_rate=qec.measurement_error_rate,
                noise_model=qec.noise_model,
                decoder=qec.decoder,
            )
            for shard_index, size in enumerate(
                shard_sizes(spec.shots, spec.max_shard_shots, spec.min_shards)
            )
        ]
        return PlannedPoint(
            point=point,
            cqasm="",
            num_qubits=code.num_physical_qubits,
            gate_count=0,
            compile_cached=False,
            compile_time_s=time.perf_counter() - start,
            tasks=tasks,
        )

    def _plan_compile_point(self, point: SweepPoint) -> PlannedPoint:
        """Turn one compile-and-map sweep point into a single worker task.

        Compilation is deterministic, so each point is exactly one shard;
        the pool parallelises across sweep points instead of shot batches.
        ``compile_cached`` reports whether the mapping artifact is already
        on disk (the worker will publish it otherwise).
        """
        spec = point.spec
        start = time.perf_counter()
        circuit = spec.circuit.build()
        source_cqasm = circuit_to_cqasm(circuit)
        config = spec.compile
        task = CompileShardTask(
            cqasm=source_cqasm,
            placement=config.placement,
            router=config.router,
            topology=config.topology,
            rows=config.rows,
            cols=config.cols,
            schedule_policy=config.schedule_policy,
            lookahead_window=config.lookahead_window,
            decay=config.decay,
            point_index=point.index,
            cache_dir=str(self.cache.directory) if self.cache is not None else None,
        )
        cached = False
        if self.cache is not None:
            # Cheap existence probe (the worker loads the artifact itself),
            # recorded in the cache stats so warm compile runs report hits.
            cached = self.cache.path_for(mapping_cache_key(task)).exists()
            if cached:
                self.cache.hits += 1
            else:
                self.cache.misses += 1
        return PlannedPoint(
            point=point,
            cqasm=source_cqasm,
            num_qubits=circuit.num_qubits,
            gate_count=circuit.gate_count(),
            compile_cached=cached,
            compile_time_s=time.perf_counter() - start,
            tasks=[task],
        )

    def plan_point(self, point: SweepPoint) -> PlannedPoint:
        """Plan one (possibly externally fabricated) sweep point.

        Dispatches on the *point's* kind, not the runner's spec, so callers
        such as the experiment service can plan heterogeneous point lists —
        e.g. batch circuits rewritten as single-circuit points — through
        one runner sharing one cache.
        """
        if point.spec.kind == "qec":
            return self._plan_qec_point(point)
        if point.spec.kind == "compile":
            return self._plan_compile_point(point)
        return self._compile_point(point)

    def plan(self) -> list[PlannedPoint]:
        return [self.plan_point(point) for point in self.spec.points()]

    # ------------------------------------------------------------------ #
    # Execution.
    # ------------------------------------------------------------------ #
    def run(self) -> ExperimentResult:
        start = time.perf_counter()
        planned = self.plan()
        tasks = [task for planned_point in planned for task in planned_point.tasks]
        exec_start = time.perf_counter()

        if self.workers == 1 or len(tasks) <= 1:
            shard_results = [run_shard(task) for task in tasks]
        else:
            with ProcessPoolExecutor(max_workers=min(self.workers, len(tasks))) as pool:
                shard_results = list(pool.map(run_shard, tasks))

        end = time.perf_counter()
        result = ExperimentResult(
            name=self.spec.name,
            workers=self.workers,
            cache_stats=self.cache.stats() if self.cache is not None else {},
        )
        for planned_point in planned:
            index = planned_point.point.index
            shards = [shard for shard in shard_results if shard.point_index == index]
            metrics = merge_metrics(shard.metrics for shard in shards)
            result.points.append(
                PointResult(
                    index=index,
                    params=planned_point.point.params,
                    shots=sum(shard.shots for shard in shards),
                    num_qubits=planned_point.num_qubits,
                    counts=merge_counts(shard.counts for shard in shards),
                    errors_injected=sum(shard.errors_injected for shard in shards),
                    metrics=metrics,
                    gate_count=planned_point.gate_count,
                    compile_cached=planned_point.compile_cached,
                    compile_time_s=planned_point.compile_time_s,
                    # Shards share one pool, so per-point wall time is the
                    # execution wall of the whole batch.
                    wall_time_s=end - exec_start,
                )
            )
        result.total_time_s = end - start
        return result
