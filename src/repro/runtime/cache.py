"""On-disk cache for compiled full-stack artifacts.

Two artifact kinds are cached between runs (and shared between the parent
process and pool workers):

* ``"compile"`` — the cQASM text produced by the OpenQL-style pass
  pipeline, keyed by the *source* circuit's cQASM, the platform
  description and the compiler configuration;
* ``"program"`` — a lowered :class:`~repro.qx.compiled.KernelProgram`,
  keyed by the compiled cQASM text and the fusion flag.

Keys are SHA-256 hashes of a canonical JSON encoding of the key parts, and
every key embeds :data:`CACHE_SCHEMA_VERSION`; bumping that constant when
the lowering format changes invalidates all previously cached entries at
once.  Values are pickles written atomically (temp file + ``os.replace``)
so concurrent writers — e.g. several pool workers lowering the same point
— can only ever publish complete entries.  Unreadable or truncated entries
are treated as misses and deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

#: Bump to invalidate every cached artifact (e.g. when KernelProgram or the
#: pass pipeline changes in a way that alters lowered semantics).
CACHE_SCHEMA_VERSION = 1


def default_cache_dir() -> Path:
    """Cache location: ``$REPRO_RUNTIME_CACHE`` or ``~/.cache/repro-runtime``."""
    override = os.environ.get("REPRO_RUNTIME_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-runtime"


class ArtifactCache:
    """Content-addressed pickle store with hit/miss accounting."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def key_for(kind: str, **parts) -> str:
        """Stable key: SHA-256 over canonical JSON of the key parts."""
        payload = json.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "kind": kind, "parts": parts},
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------ #
    def get(self, key: str):
        """Load a cached value, or ``None`` on a miss (corrupt entries are purged)."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return value

    def put(self, key: str, value) -> None:
        """Atomically publish a value under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.writes += 1

    # ------------------------------------------------------------------ #
    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}
