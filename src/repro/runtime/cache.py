"""On-disk cache for compiled full-stack artifacts.

Two artifact kinds are cached between runs (and shared between the parent
process and pool workers):

* ``"compile"`` — the cQASM text produced by the OpenQL-style pass
  pipeline, keyed by the *source* circuit's cQASM, the platform
  description and the compiler configuration;
* ``"program"`` — a lowered :class:`~repro.qx.compiled.KernelProgram`,
  keyed by the compiled cQASM text and the fusion flag.

Keys are SHA-256 hashes of a canonical JSON encoding of the key parts, and
every key embeds :data:`CACHE_SCHEMA_VERSION`; bumping that constant when
the lowering format changes invalidates all previously cached entries at
once.  Values are pickles written atomically (temp file + ``os.replace``)
so concurrent writers — e.g. several pool workers lowering the same point
— can only ever publish complete entries.  Unreadable or truncated entries
are treated as misses and deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

#: Bump to invalidate every cached artifact (e.g. when KernelProgram or the
#: pass pipeline changes in a way that alters lowered semantics).
CACHE_SCHEMA_VERSION = 1


def default_cache_dir() -> Path:
    """Cache location: ``$REPRO_RUNTIME_CACHE`` or ``~/.cache/repro-runtime``."""
    override = os.environ.get("REPRO_RUNTIME_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-runtime"


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Publish ``text`` at ``path`` via the cache's tmp + ``os.replace`` pattern.

    Readers (and a process killed mid-write) only ever observe the old
    content or the complete new content, never a torn file.  Used for
    result files and journal snapshots, so a SIGKILLed daemon cannot leave
    a partially written artifact behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(descriptor, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


class ArtifactCache:
    """Content-addressed pickle store with hit/miss accounting.

    Long-lived owners (the experiment service daemon) bound the store with
    :meth:`prune`: least-recently-*written* entries (mtime order — ``get``
    does not touch files, so mtime is publication time) are evicted until
    the directory fits ``max_bytes``.  Eviction is safe against concurrent
    readers: a pruned entry simply becomes a miss and is recomputed.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def key_for(kind: str, **parts) -> str:
        """Stable key: SHA-256 over canonical JSON of the key parts."""
        payload = json.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "kind": kind, "parts": parts},
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------ #
    def get(self, key: str):
        """Load a cached value, or ``None`` on a miss (corrupt entries are purged)."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return value

    def put(self, key: str, value) -> None:
        """Atomically publish a value under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.writes += 1

    # ------------------------------------------------------------------ #
    def _entries(self) -> list[tuple[float, int, Path]]:
        """``(mtime, size, path)`` per entry; vanished files are skipped."""
        entries: list[tuple[float, int, Path]] = []
        for path in sorted(self.directory.glob("*/*.pkl")):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def size_bytes(self) -> int:
        """Total on-disk size of all cached entries (scans the directory)."""
        return sum(size for _, size, _ in self._entries())

    def prune(self, max_bytes: int) -> dict:
        """Evict least-recently-written entries until the store fits ``max_bytes``.

        Returns ``{"evicted": n, "size_bytes": remaining}``.  Concurrent
        writers are fine: eviction only turns future ``get`` calls into
        misses, never corrupts an entry (writes are atomic renames).
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        evicted = 0
        # Oldest mtime first; path as a deterministic tie-break.
        for _, size, path in sorted(entries, key=lambda entry: (entry[0], str(entry[2]))):
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        self.evictions += evicted
        return {"evicted": evicted, "size_bytes": total}

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
        }
