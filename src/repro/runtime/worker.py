"""Shard execution — the function that runs inside pool workers.

A :class:`ShardTask` is a small picklable record: the compiled cQASM text,
the qubit model, the shot count and the ``(root seed, point, shard)``
coordinates that determine the shard's random stream.  Workers rebuild the
executable :class:`~repro.qx.compiled.KernelProgram` from the on-disk
artifact cache (falling back to parse + lower, then publishing the result)
and memoise it per process, so a worker pays the lowering cost at most once
per distinct circuit regardless of how many shards it executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.qubits import QubitModel
from repro.qx.compiled import KernelProgram, lower
from repro.qx.simulator import QXSimulator
from repro.runtime.cache import ArtifactCache
from repro.runtime.seeding import shard_seed


@dataclass(frozen=True)
class ShardTask:
    """One batch of shots of one sweep point, with its seed coordinates."""

    cqasm: str
    num_qubits: int
    shots: int
    root_seed: int
    point_index: int
    shard_index: int
    qubit_model: QubitModel | None = None
    cache_dir: str | None = None


@dataclass
class ShardResult:
    """Histogram and error statistics of one executed shard."""

    point_index: int
    shard_index: int
    shots: int
    counts: dict[str, int] = field(default_factory=dict)
    errors_injected: int = 0


@dataclass(frozen=True)
class QecShardTask:
    """One batch of surface-code memory-experiment trials.

    The ``kind="qec"`` analogue of :class:`ShardTask`: ``trials`` plays the
    role of shots and the ``(root seed, point, shard)`` coordinates feed the
    same :func:`~repro.runtime.seeding.shard_seed` contract, so distance and
    error-rate sweeps merge bit-identically for any worker count.
    """

    distance: int
    trials: int
    root_seed: int
    point_index: int
    shard_index: int
    rounds: int | None = None
    physical_error_rate: float = 1e-3
    measurement_error_rate: float | None = None


def program_cache_key(cqasm: str, fuse: bool) -> str:
    """Cache key of a lowered program: compiled text + fusion flag."""
    return ArtifactCache.key_for("program", cqasm=cqasm, fuse=fuse)


def _noise_free(qubit_model: QubitModel | None) -> bool:
    return qubit_model is None or qubit_model.is_perfect


#: Per-process memo of lowered programs, keyed by cache key.
_PROGRAMS: dict[str, KernelProgram] = {}


def load_program(task: ShardTask) -> KernelProgram:
    """Lowered program for a task: process memo -> disk cache -> lower()."""
    fuse = _noise_free(task.qubit_model)
    key = program_cache_key(task.cqasm, fuse)
    program = _PROGRAMS.get(key)
    if program is not None:
        return program
    cache = ArtifactCache(task.cache_dir) if task.cache_dir else None
    program = cache.get(key) if cache is not None else None
    if not isinstance(program, KernelProgram):
        from repro.cqasm.parser import cqasm_to_circuit

        program = lower(cqasm_to_circuit(task.cqasm), fuse=fuse)
        if cache is not None:
            cache.put(key, program)
    _PROGRAMS[key] = program
    return program


def _run_qec_shard(task: QecShardTask) -> ShardResult:
    """Execute one batch of memory-experiment trials inside a pool worker.

    The histogram uses key ``"1"`` for logical failures and ``"0"`` for
    successes; ``errors_injected`` carries the space-time defect total, so
    merged points report the decoder load alongside the failure rate.
    """
    from repro.qec.surface_code import PlanarSurfaceCode

    code = PlanarSurfaceCode(task.distance)
    result = code.run_memory_experiment(
        task.physical_error_rate,
        rounds=task.rounds,
        trials=task.trials,
        measurement_error_rate=task.measurement_error_rate,
        seed=shard_seed(task.root_seed, task.point_index, task.shard_index),
    )
    counts: dict[str, int] = {}
    successes = result.trials - result.logical_failures
    if successes:
        counts["0"] = successes
    if result.logical_failures:
        counts["1"] = result.logical_failures
    return ShardResult(
        point_index=task.point_index,
        shard_index=task.shard_index,
        shots=task.trials,
        counts=counts,
        errors_injected=result.total_defects,
    )


def run_shard(task: ShardTask | QecShardTask) -> ShardResult:
    """Execute one shard and return its merged-ready histogram."""
    if isinstance(task, QecShardTask):
        return _run_qec_shard(task)
    program = load_program(task)
    seed = shard_seed(task.root_seed, task.point_index, task.shard_index)
    if _noise_free(task.qubit_model):
        simulator = QXSimulator(num_qubits=task.num_qubits, seed=seed)
    else:
        simulator = QXSimulator(
            num_qubits=task.num_qubits, qubit_model=task.qubit_model, seed=seed
        )
    result = simulator.run_program(program, shots=task.shots)
    return ShardResult(
        point_index=task.point_index,
        shard_index=task.shard_index,
        shots=task.shots,
        counts=result.counts,
        errors_injected=result.errors_injected,
    )
