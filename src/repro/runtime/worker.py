"""Shard execution — the function that runs inside pool workers.

A :class:`ShardTask` is a small picklable record: the compiled cQASM text,
the qubit model, the shot count and the ``(root seed, point, shard)``
coordinates that determine the shard's random stream.  Workers rebuild the
executable :class:`~repro.qx.compiled.KernelProgram` from the on-disk
artifact cache (falling back to parse + lower, then publishing the result)
and memoise it per process, so a worker pays the lowering cost at most once
per distinct circuit regardless of how many shards it executes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.qubits import QubitModel
from repro.qx.compiled import KernelProgram, lower
from repro.qx.simulator import QXSimulator
from repro.runtime.cache import ArtifactCache
from repro.runtime.seeding import shard_seed


@dataclass(frozen=True)
class ShardTask:
    """One batch of shots of one sweep point, with its seed coordinates.

    ``backend`` pins the simulation engine (``None`` = policy
    auto-dispatch); ``max_bond`` and ``truncation_threshold`` are the MPS
    accuracy knobs; ``channel_fusion`` is the density engine's
    superoperator-fusion cost knob.  All of them come verbatim from the
    spec's :class:`~repro.runtime.spec.SimulationSpec` (possibly swept), so
    every shard of a point runs on the same engine configuration and the
    merged histogram stays bit-identical for any worker count.
    """

    cqasm: str
    num_qubits: int
    shots: int
    root_seed: int
    point_index: int
    shard_index: int
    qubit_model: QubitModel | None = None
    cache_dir: str | None = None
    backend: str | None = None
    max_bond: int | None = None
    truncation_threshold: float | None = None
    channel_fusion: bool = True


@dataclass
class ShardResult:
    """Histogram and error statistics of one executed shard."""

    point_index: int
    shard_index: int
    shots: int
    counts: dict[str, int] = field(default_factory=dict)
    errors_injected: int = 0
    #: Mapping metrics of a compile shard (empty for circuit/qec shards).
    metrics: dict = field(default_factory=dict)


@dataclass(frozen=True)
class QecShardTask:
    """One batch of surface-code memory-experiment trials.

    The ``kind="qec"`` analogue of :class:`ShardTask`: ``trials`` plays the
    role of shots and the ``(root seed, point, shard)`` coordinates feed the
    same :func:`~repro.runtime.seeding.shard_seed` contract, so distance and
    error-rate sweeps merge bit-identically for any worker count.
    """

    distance: int
    trials: int
    root_seed: int
    point_index: int
    shard_index: int
    rounds: int | None = None
    physical_error_rate: float = 1e-3
    measurement_error_rate: float | None = None
    noise_model: str = "phenomenological"
    decoder: str | None = None


@dataclass(frozen=True)
class CompileShardTask:
    """One compile-and-map pipeline run of one sweep point.

    The ``kind="compile"`` analogue of :class:`ShardTask`: the payload is
    the *source* circuit's cQASM plus the resolved
    :class:`~repro.runtime.spec.CompileSpec` fields.  Compilation is
    deterministic, so a point is a single shard and merged results are
    bit-identical for any worker count by construction.
    """

    cqasm: str
    placement: str
    router: str
    topology: str
    rows: int | None
    cols: int | None
    schedule_policy: str
    lookahead_window: int
    decay: float
    point_index: int
    shard_index: int = 0
    cache_dir: str | None = None


def program_cache_key(cqasm: str, fuse: bool) -> str:
    """Cache key of a lowered program: compiled text + fusion flag."""
    return ArtifactCache.key_for("program", cqasm=cqasm, fuse=fuse)


def mapping_cache_key(task: CompileShardTask) -> str:
    """Cache key of a compile-and-map artifact: source text + pipeline config."""
    return ArtifactCache.key_for(
        "mapping",
        cqasm=task.cqasm,
        placement=task.placement,
        router=task.router,
        topology=task.topology,
        rows=task.rows,
        cols=task.cols,
        schedule_policy=task.schedule_policy,
        lookahead_window=task.lookahead_window,
        decay=task.decay,
    )


def _noise_free(qubit_model: QubitModel | None) -> bool:
    return qubit_model is None or qubit_model.is_perfect


#: Per-process memo of lowered programs, keyed by cache key.  LRU with a
#: hard size cap: long-lived batch workers stream thousands of distinct
#: circuits through one process, so an unbounded memo would grow without
#: limit.  Hit/miss counters are surfaced per shard (and summed per point
#: by the runner) for cache observability.
PROGRAM_MEMO_CAP = 128
_PROGRAMS: OrderedDict[str, KernelProgram] = OrderedDict()
_program_memo_stats = {"hits": 0, "misses": 0}


def program_memo_stats() -> dict[str, int]:
    """Cumulative hit/miss counters of this process's program memo."""
    return dict(_program_memo_stats)


def load_program(task: ShardTask) -> KernelProgram:  # contract: ignore[REPRO006]
    """Lowered program for a task: process memo -> disk cache -> lower().

    The REPRO006 ignore is deliberate: the program memo is a *per-process*
    LRU keyed by content hash, so its state never changes a result — only
    whether the lowering work is repeated.  Its hit/miss counters are
    surfaced per shard precisely so that divergence would be visible.
    """
    fuse = _noise_free(task.qubit_model)
    key = program_cache_key(task.cqasm, fuse)
    program = _PROGRAMS.get(key)
    if program is not None:
        _program_memo_stats["hits"] += 1
        _PROGRAMS.move_to_end(key)
        return program
    _program_memo_stats["misses"] += 1
    cache = ArtifactCache(task.cache_dir) if task.cache_dir else None
    program = cache.get(key) if cache is not None else None
    if not isinstance(program, KernelProgram):
        from repro.cqasm.parser import cqasm_to_circuit

        program = lower(cqasm_to_circuit(task.cqasm), fuse=fuse)
        if cache is not None:
            cache.put(key, program)
    _PROGRAMS[key] = program
    while len(_PROGRAMS) > PROGRAM_MEMO_CAP:
        _PROGRAMS.popitem(last=False)
    return program


def _run_qec_shard(task: QecShardTask) -> ShardResult:
    """Execute one batch of memory-experiment trials inside a pool worker.

    The histogram uses key ``"1"`` for logical failures and ``"0"`` for
    successes; ``errors_injected`` carries the space-time defect total, so
    merged points report the decoder load alongside the failure rate.
    """
    from repro.qec.surface_code import PlanarSurfaceCode

    code = PlanarSurfaceCode(task.distance)
    seed = shard_seed(task.root_seed, task.point_index, task.shard_index)
    if task.noise_model == "circuit":
        result = code.run_circuit_memory_experiment(
            task.physical_error_rate,
            rounds=task.rounds,
            trials=task.trials,
            measurement_error_rate=task.measurement_error_rate,
            seed=seed,
            decoder=task.decoder or "union_find",
        )
    else:
        result = code.run_memory_experiment(
            task.physical_error_rate,
            rounds=task.rounds,
            trials=task.trials,
            measurement_error_rate=task.measurement_error_rate,
            seed=seed,
            decoder=task.decoder or "matching",
        )
    counts: dict[str, int] = {}
    successes = result.trials - result.logical_failures
    if successes:
        counts["0"] = successes
    if result.logical_failures:
        counts["1"] = result.logical_failures
    return ShardResult(
        point_index=task.point_index,
        shard_index=task.shard_index,
        shots=task.trials,
        counts=counts,
        errors_injected=result.total_defects,
    )


def compile_and_map(task: CompileShardTask):
    """Run the full pass pipeline for a compile task; returns the artifact dict.

    The artifact bundles the :class:`~repro.openql.compiler.CompilationResult`
    with the extracted mapping metrics, so cache hits skip the whole
    pipeline, not just the metric extraction.
    """
    from repro.core.qubits import REALISTIC
    from repro.cqasm.parser import cqasm_to_circuit
    from repro.mapping.traffic import TrafficAnalyzer
    from repro.openql.compiler import Compiler
    from repro.openql.kernel import Kernel
    from repro.openql.passes.decomposition import DecompositionPass
    from repro.openql.passes.mapping_pass import MappingPass
    from repro.openql.passes.optimization import OptimizationPass
    from repro.openql.passes.scheduling_pass import SchedulingPass
    from repro.openql.platform import Platform
    from repro.openql.program import Program
    from repro.runtime.spec import CompileSpec

    circuit = cqasm_to_circuit(task.cqasm)
    topology = CompileSpec(
        placement=task.placement,
        router=task.router,
        topology=task.topology,
        rows=task.rows,
        cols=task.cols,
        schedule_policy=task.schedule_policy,
        lookahead_window=task.lookahead_window,
        decay=task.decay,
    ).build_topology(circuit.num_qubits)
    platform = Platform(
        name=f"compile_{topology.name}",
        num_qubits=topology.num_qubits,
        qubit_model=REALISTIC,
        topology=topology,
    )
    mapping_pass = MappingPass(
        strategy=task.placement,
        mode=task.router,
        lookahead_window=task.lookahead_window,
        decay=task.decay,
    )
    compiler = Compiler(
        passes=[
            DecompositionPass(),
            OptimizationPass(),
            mapping_pass,
            SchedulingPass(policy=task.schedule_policy),
        ]
    )
    program = Program(name="compile", platform=platform)
    # Keep the kernel at the logical circuit width: the router, not the
    # kernel, widens the register to the topology, so placement only ever
    # reasons about qubits the program actually uses.
    kernel = Kernel(circuit.name or "main", platform, num_qubits=circuit.num_qubits)
    kernel.extend(circuit)
    program.add_kernel(kernel)
    result = compiler.compile(program)
    routed = result.kernels[0]
    schedule = result.schedules[0]
    routing = mapping_pass.last_result
    traffic = TrafficAnalyzer()
    if routing is not None:
        report = traffic.analyze_routing(routing)
    else:  # pragma: no cover - REALISTIC always routes
        report = traffic.analyze_circuit(routed)
    metrics = {
        "swaps": routing.swaps_inserted if routing is not None else 0,
        "routing_overhead": round(routing.overhead, 6) if routing is not None else 0.0,
        "makespan_ns": schedule.makespan,
        "parallelism": round(schedule.parallelism(), 4),
        "locality": round(report.locality_score, 6),
        "movement_fraction": round(report.movement_fraction, 6),
        "total_hops": report.total_hops,
        "routed_gate_count": routed.gate_count(),
        "routed_depth": routed.depth(),
        "topology_sites": topology.num_qubits,
    }
    return {"compilation": result, "metrics": metrics}


def _run_compile_shard(task: CompileShardTask) -> ShardResult:
    """Execute one compile-and-map point inside a pool worker (cache-backed)."""
    cache = ArtifactCache(task.cache_dir) if task.cache_dir else None
    key = mapping_cache_key(task)
    artifact = cache.get(key) if cache is not None else None
    if not (isinstance(artifact, dict) and "metrics" in artifact):
        artifact = compile_and_map(task)
        if cache is not None:
            cache.put(key, artifact)
    return ShardResult(
        point_index=task.point_index,
        shard_index=task.shard_index,
        shots=1,
        counts={},
        metrics=dict(artifact["metrics"]),
    )


def run_shard(task: ShardTask | QecShardTask | CompileShardTask) -> ShardResult:
    """Execute one shard and return its merged-ready histogram."""
    if isinstance(task, QecShardTask):
        return _run_qec_shard(task)
    if isinstance(task, CompileShardTask):
        return _run_compile_shard(task)
    seed = shard_seed(task.root_seed, task.point_index, task.shard_index)
    simulator = QXSimulator(
        num_qubits=task.num_qubits,
        qubit_model=None if _noise_free(task.qubit_model) else task.qubit_model,
        seed=seed,
        backend=task.backend,
        max_bond=task.max_bond,
        truncation_threshold=task.truncation_threshold,
        channel_fusion=task.channel_fusion,
    )
    metrics: dict = {}
    if task.backend == "stabilizer":
        # The tableau engine executes named gates, not lowered matrices, so
        # a stabilizer-pinned shard re-parses the compiled cQASM instead of
        # loading the cached KernelProgram.
        from repro.cqasm.parser import cqasm_to_circuit

        result = simulator.run(cqasm_to_circuit(task.cqasm), shots=task.shots)
    else:
        before = dict(_program_memo_stats)
        result = simulator.run_program(load_program(task), shots=task.shots)
        metrics["program_cache_hits"] = _program_memo_stats["hits"] - before["hits"]
        metrics["program_cache_misses"] = _program_memo_stats["misses"] - before["misses"]
    if result.backend != "statevector":
        metrics["backend"] = result.backend
    if result.backend == "mps":
        metrics["truncation_error"] = result.truncation_error
    return ShardResult(
        point_index=task.point_index,
        shard_index=task.shard_index,
        shots=task.shots,
        counts=result.counts,
        errors_injected=result.errors_injected,
        metrics=metrics,
    )
