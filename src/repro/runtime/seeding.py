"""Deterministic sharding and per-shard seeding.

The runtime's reproducibility contract is that a merged histogram depends
only on the :class:`~repro.runtime.spec.ExperimentSpec` (including its
``seed``) — never on the worker count, the scheduling order, or whether
compiled artifacts came from the cache.  Two properties deliver that:

* the **shard layout** (:func:`shard_sizes`) is a pure function of the shot
  count and the spec's sharding knobs; and
* each shard's random stream (:func:`shard_seed`) is a
  ``numpy`` ``SeedSequence`` keyed by ``(root seed, point index, shard
  index)``, so streams are statistically independent across shards and
  identical no matter which process executes the shard.

Merging per-shard histograms is a commutative sum, so any assignment of
shards to workers produces the same merged counts.
"""

from __future__ import annotations

import numpy as np


def shard_sizes(shots: int, max_shard_shots: int = 4096, min_shards: int = 8) -> list[int]:
    """Split ``shots`` into a worker-independent list of shard sizes.

    At least ``min_shards`` shards are produced (so small sweeps still
    spread over a pool), capped by the shot count; large shot budgets grow
    the shard count so no shard exceeds ``max_shard_shots``.
    """
    if shots < 1:
        raise ValueError("shots must be >= 1")
    if max_shard_shots < 1:
        raise ValueError("max_shard_shots must be >= 1")
    target = max(min_shards, 1, -(-shots // max_shard_shots))
    count = min(shots, target)
    base, extra = divmod(shots, count)
    return [base + 1] * extra + [base] * (count - extra)


def shard_seed(root_seed: int, point_index: int, shard_index: int) -> np.random.SeedSequence:
    """Independent seed for one shard of one sweep point.

    Built directly from a spawn key rather than by calling ``spawn()`` on a
    parent sequence, so the seed for shard *(p, s)* can be reconstructed in
    any process without shared state.
    """
    return np.random.SeedSequence(entropy=root_seed, spawn_key=(point_index, shard_index))
