"""Simulated quantum annealing (path-integral Monte Carlo).

Stand-in for the D-Wave-style quantum annealer of Section 4.2: the
transverse-field Ising Hamiltonian is simulated with the standard
Suzuki-Trotter mapping onto ``P`` coupled classical replicas ("imaginary
time slices").  The transverse field Gamma is ramped down while the problem
Hamiltonian is ramped up, letting the system tunnel between configurations —
the "quantum effects like superposition, entanglement and tunnelling" the
accelerator exploits.
"""

from __future__ import annotations

import numpy as np

from repro.annealing.ising import IsingModel
from repro.annealing.qubo import QUBO
from repro.annealing.simulated_annealing import AnnealResult


class SimulatedQuantumAnnealer:
    """Path-integral (Suzuki-Trotter) simulated quantum annealing."""

    def __init__(
        self,
        num_sweeps: int = 300,
        num_reads: int = 5,
        num_replicas: int = 16,
        beta: float = 10.0,
        gamma_start: float = 3.0,
        gamma_end: float = 0.05,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        if num_replicas < 2:
            raise ValueError("need at least 2 Trotter replicas")
        self.num_sweeps = num_sweeps
        self.num_reads = num_reads
        self.num_replicas = num_replicas
        self.beta = beta
        self.gamma_start = gamma_start
        self.gamma_end = gamma_end
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def _replica_coupling(self, gamma: float) -> float:
        """Ferromagnetic coupling between adjacent Trotter slices.

        J_perp = -(P / (2 beta)) * ln tanh(beta * Gamma / P); always >= 0 and
        grows as Gamma shrinks, freezing the replicas together at the end of
        the anneal.
        """
        p = self.num_replicas
        argument = np.tanh(self.beta * gamma / p)
        argument = max(argument, 1e-12)
        return -0.5 * (p / self.beta) * np.log(argument)

    def solve_ising(self, model: IsingModel) -> AnnealResult:
        n = model.num_spins
        p = self.num_replicas
        symmetric = model.couplings + model.couplings.T
        gammas = np.linspace(self.gamma_start, self.gamma_end, self.num_sweeps)
        beta_slice = self.beta / p

        best_spins: np.ndarray | None = None
        best_energy = np.inf
        trace: list[float] = []

        for _ in range(self.num_reads):
            replicas = self.rng.choice([-1.0, 1.0], size=(p, n))
            for gamma in gammas:
                j_perp = self._replica_coupling(gamma)
                for k in range(p):
                    up = replicas[(k - 1) % p]
                    down = replicas[(k + 1) % p]
                    spins = replicas[k]
                    fields = model.h + symmetric @ spins
                    for index in self.rng.permutation(n):
                        classical_delta = -2.0 * spins[index] * fields[index]
                        quantum_delta = (
                            2.0 * j_perp * spins[index] * (up[index] + down[index])
                        )
                        delta = classical_delta + quantum_delta
                        # Metropolis acceptance at the per-slice temperature.
                        if delta <= 0.0 or self.rng.random() < np.exp(-beta_slice * delta):
                            spins[index] = -spins[index]
                            fields += 2.0 * spins[index] * symmetric[:, index]
                # Track the best classical configuration across replicas.
                energies = [model.energy(replicas[k]) for k in range(p)]
                best_replica = int(np.argmin(energies))
                trace.append(energies[best_replica])
                if energies[best_replica] < best_energy:
                    best_energy = energies[best_replica]
                    best_spins = replicas[best_replica].copy()
        assert best_spins is not None
        return AnnealResult(
            spins=best_spins.astype(int),
            energy=float(best_energy),
            num_sweeps=self.num_sweeps,
            num_reads=self.num_reads,
            energy_trace=trace,
            solver="simulated_quantum_annealing",
        )

    def solve_qubo(self, qubo: QUBO) -> AnnealResult:
        ising, offset = qubo.to_ising()
        result = self.solve_ising(ising)
        result.energy += offset
        return result
