"""Quadratic Unconstrained Binary Optimisation (QUBO) model.

``minimise  y = x^T Q x`` with ``x_i`` binary, exactly as written in
Section 3.3 of the paper.  Q is stored as an upper-triangular matrix; the
model converts to/from the Ising spin formulation, evaluates candidate
solutions, and enumerates small instances exactly (the paper's "enumerate
all possible solutions" step for the 4-city TSP).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class QUBO:
    """A QUBO instance ``y = x^T Q x`` over binary decision variables."""

    matrix: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("Q must be a square matrix")
        # Canonicalise to upper-triangular form: Q'[i,j] = Q[i,j] + Q[j,i] for i<j.
        upper = np.triu(matrix) + np.tril(matrix, -1).T
        self.matrix = upper

    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, num_variables: int) -> "QUBO":
        return cls(np.zeros((num_variables, num_variables)))

    @classmethod
    def from_dict(cls, num_variables: int, terms: dict[tuple[int, int], float]) -> "QUBO":
        """Build from a ``{(i, j): weight}`` dictionary (i == j for linear terms)."""
        matrix = np.zeros((num_variables, num_variables))
        for (i, j), weight in terms.items():
            a, b = min(i, j), max(i, j)
            matrix[a, b] += weight
        return cls(matrix)

    @property
    def num_variables(self) -> int:
        return self.matrix.shape[0]

    def add_term(self, i: int, j: int, weight: float) -> None:
        a, b = min(i, j), max(i, j)
        self.matrix[a, b] += weight

    def linear(self) -> np.ndarray:
        return np.diag(self.matrix).copy()

    def quadratic_terms(self) -> dict[tuple[int, int], float]:
        terms: dict[tuple[int, int], float] = {}
        n = self.num_variables
        for i in range(n):
            for j in range(i + 1, n):
                if self.matrix[i, j] != 0.0:
                    terms[(i, j)] = float(self.matrix[i, j])
        return terms

    def interaction_graph_edges(self) -> list[tuple[int, int]]:
        """Variable pairs with a non-zero quadratic coefficient (embedding input)."""
        return sorted(self.quadratic_terms().keys())

    # ------------------------------------------------------------------ #
    def energy(self, assignment: np.ndarray) -> float:
        """Evaluate ``x^T Q x`` for a binary assignment."""
        x = np.asarray(assignment, dtype=float)
        if x.shape != (self.num_variables,):
            raise ValueError("assignment has the wrong length")
        return float(x @ self.matrix @ x)

    def brute_force(self) -> tuple[np.ndarray, float]:
        """Exact minimisation by enumeration (up to 24 variables)."""
        n = self.num_variables
        if n > 24:
            raise ValueError("brute force limited to 24 variables")
        best_energy = np.inf
        best = np.zeros(n, dtype=int)
        for value in range(2 ** n):
            x = np.array([(value >> i) & 1 for i in range(n)], dtype=float)
            energy = self.energy(x)
            if energy < best_energy:
                best_energy = energy
                best = x.astype(int)
        return best, float(best_energy)

    # ------------------------------------------------------------------ #
    def to_ising(self) -> tuple["IsingModel", float]:
        """Convert to the isomorphic Ising model (x = (1 - s) / 2 ... x = (1+s)/2).

        Uses the substitution ``x_i = (1 + s_i) / 2`` with spins s in {-1, +1};
        returns the Ising model and the constant energy offset so that
        ``qubo.energy(x) == ising.energy(s) + offset``.
        """
        from repro.annealing.ising import IsingModel

        n = self.num_variables
        h = np.zeros(n)
        j = np.zeros((n, n))
        offset = 0.0
        for i in range(n):
            q_ii = self.matrix[i, i]
            h[i] += q_ii / 2.0
            offset += q_ii / 2.0
        for (a, b), weight in self.quadratic_terms().items():
            j[a, b] += weight / 4.0
            h[a] += weight / 4.0
            h[b] += weight / 4.0
            offset += weight / 4.0
        return IsingModel(h=h, couplings=j), offset

    def __repr__(self) -> str:  # pragma: no cover
        return f"QUBO(variables={self.num_variables}, terms={len(self.quadratic_terms())})"


def random_qubo(
    num_variables: int,
    density: float = 0.5,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> QUBO:
    """Random QUBO instance used by the solver-comparison benchmarks."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    matrix = np.zeros((num_variables, num_variables))
    for i in range(num_variables):
        matrix[i, i] = rng.uniform(-1.0, 1.0)
        for j in range(i + 1, num_variables):
            if rng.random() < density:
                matrix[i, j] = rng.uniform(-1.0, 1.0)
    return QUBO(matrix)


def maxcut_qubo(edges: list[tuple[int, int]], num_vertices: int) -> QUBO:
    """MaxCut as a QUBO: minimise ``sum_{(i,j)} (2 x_i x_j - x_i - x_j)``."""
    qubo = QUBO.empty(num_vertices)
    for i, j in edges:
        qubo.add_term(i, j, 2.0)
        qubo.add_term(i, i, -1.0)
        qubo.add_term(j, j, -1.0)
    return qubo
