"""Chimera topology of D-Wave-style quantum annealers.

A Chimera graph C(m, n, t) is an m x n grid of unit cells, each cell a
complete bipartite graph K_{t,t}; left-shore qubits couple vertically to the
neighbouring cells, right-shore qubits horizontally.  The D-Wave 2000Q is
C(16, 16, 4) with 2048 qubits — the machine the paper says can embed TSP
instances of at most ~9 cities.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx


@dataclass(frozen=True)
class ChimeraCoordinate:
    """(row, column, shore, index-in-shore) coordinate of a Chimera qubit."""

    row: int
    column: int
    shore: int  # 0 = left (vertical couplers), 1 = right (horizontal couplers)
    index: int


class ChimeraGraph:
    """Chimera graph C(rows, cols, shore_size) with linear qubit indices."""

    def __init__(self, rows: int = 16, cols: int = 16, shore_size: int = 4):
        if rows < 1 or cols < 1 or shore_size < 1:
            raise ValueError("rows, cols and shore_size must be positive")
        self.rows = rows
        self.cols = cols
        self.shore_size = shore_size
        self.graph = self._build()

    # ------------------------------------------------------------------ #
    def _build(self) -> nx.Graph:
        graph = nx.Graph()
        for row in range(self.rows):
            for col in range(self.cols):
                # Intra-cell K_{t,t}.
                for left in range(self.shore_size):
                    for right in range(self.shore_size):
                        graph.add_edge(
                            self.linear_index(row, col, 0, left),
                            self.linear_index(row, col, 1, right),
                        )
                # Inter-cell couplers.
                for k in range(self.shore_size):
                    if row + 1 < self.rows:
                        graph.add_edge(
                            self.linear_index(row, col, 0, k),
                            self.linear_index(row + 1, col, 0, k),
                        )
                    if col + 1 < self.cols:
                        graph.add_edge(
                            self.linear_index(row, col, 1, k),
                            self.linear_index(row, col + 1, 1, k),
                        )
        return graph

    def linear_index(self, row: int, col: int, shore: int, index: int) -> int:
        cell = row * self.cols + col
        return cell * 2 * self.shore_size + shore * self.shore_size + index

    def coordinate(self, linear: int) -> ChimeraCoordinate:
        per_cell = 2 * self.shore_size
        cell, offset = divmod(linear, per_cell)
        row, col = divmod(cell, self.cols)
        shore, index = divmod(offset, self.shore_size)
        return ChimeraCoordinate(row=row, column=col, shore=shore, index=index)

    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        return self.rows * self.cols * 2 * self.shore_size

    def degree(self) -> float:
        return 2.0 * self.graph.number_of_edges() / self.num_qubits

    def max_clique_size(self) -> int:
        """Largest complete graph embeddable without chains (= shore_size + 1)."""
        return self.shore_size + 1

    def largest_native_complete_graph(self) -> int:
        """Largest K_n minor-embeddable using the standard triangular layout.

        For C(m, m, t) the known construction gives K_{t*m + 1}; for the
        D-Wave 2000Q (m = 16, t = 4) this is K_65, which bounds TSP capacity.
        """
        m = min(self.rows, self.cols)
        return self.shore_size * m + 1


def chimera_topology(rows: int = 16, cols: int = 16, shore_size: int = 4) -> nx.Graph:
    """Convenience constructor returning the bare networkx graph."""
    return ChimeraGraph(rows, cols, shore_size).graph


def dwave_2000q_graph() -> ChimeraGraph:
    """The C(16,16,4), 2048-qubit Chimera graph of the D-Wave 2000Q."""
    return ChimeraGraph(16, 16, 4)
