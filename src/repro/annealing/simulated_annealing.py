"""Classical simulated annealing for Ising/QUBO problems.

The classical heuristic baseline of Section 3.3 ("Heuristics like Monte
Carlo methods are used for larger inputs"): single-spin-flip Metropolis
moves under a decreasing temperature schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.annealing.ising import IsingModel
from repro.annealing.qubo import QUBO


@dataclass
class AnnealResult:
    """Best configuration found by an annealing-style solver."""

    spins: np.ndarray
    energy: float
    num_sweeps: int
    num_reads: int
    energy_trace: list[float] = field(default_factory=list)
    solver: str = "simulated_annealing"

    def binary(self) -> np.ndarray:
        """Solution as binary variables (x = (1 + s) / 2)."""
        return ((self.spins + 1) // 2).astype(int)


class SimulatedAnnealer:
    """Metropolis single-spin-flip simulated annealing."""

    def __init__(
        self,
        num_sweeps: int = 500,
        num_reads: int = 10,
        beta_start: float = 0.1,
        beta_end: float = 10.0,
        schedule: str = "geometric",
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        if schedule not in ("geometric", "linear"):
            raise ValueError("schedule must be 'geometric' or 'linear'")
        self.num_sweeps = num_sweeps
        self.num_reads = num_reads
        self.beta_start = beta_start
        self.beta_end = beta_end
        self.schedule = schedule
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def betas(self) -> np.ndarray:
        """Inverse-temperature schedule."""
        if self.schedule == "geometric":
            return np.geomspace(self.beta_start, self.beta_end, self.num_sweeps)
        return np.linspace(self.beta_start, self.beta_end, self.num_sweeps)

    def solve_ising(self, model: IsingModel) -> AnnealResult:
        best_spins: np.ndarray | None = None
        best_energy = np.inf
        trace: list[float] = []
        n = model.num_spins
        betas = self.betas()
        # Dense symmetric coupling matrix for fast local-field updates;
        # C-contiguous so the per-flip row access below is a contiguous read.
        symmetric = np.ascontiguousarray(model.couplings + model.couplings.T)
        for _ in range(self.num_reads):
            spins = self.rng.choice([-1.0, 1.0], size=n)
            fields = model.h + symmetric @ spins
            energy = model.energy(spins)
            for beta in betas:
                order = self.rng.permutation(n)
                # Pre-drawn Metropolis thresholds: accept a flip of spin i
                # iff delta_i < limit_i, where limit = -log(u)/beta.  This
                # reproduces `delta <= 0 or u < exp(-beta*delta)` without a
                # per-spin rng call or exp.
                uniforms = self.rng.random(n)
                limits = -np.log(np.maximum(uniforms, 1e-300)) / beta
                # Batch accept test against the sweep-start fields: spins
                # that fail it under *stale* fields are rejected outright;
                # surviving candidates are re-tested sequentially with the
                # exact (updated) local fields.  At low temperature almost
                # every spin is filtered here, skipping the Python loop.
                # Deliberate deviation from strict sequential Metropolis: a
                # spin whose delta only drops below its threshold because a
                # neighbour flipped earlier in the same sweep stays rejected
                # until the next sweep — a valid annealing heuristic (every
                # accepted move still satisfies the exact-field test), traded
                # for the vectorised prefilter.
                stale_accept = (-2.0 * spins * fields) < limits
                candidates = order[stale_accept[order]]
                for index in candidates:
                    delta = -2.0 * spins[index] * fields[index]
                    if delta < limits[index]:
                        spins[index] = -spins[index]
                        energy += delta
                        fields += (2.0 * spins[index]) * symmetric[index]
                trace.append(energy)
            if energy < best_energy:
                best_energy = energy
                best_spins = spins.copy()
        assert best_spins is not None
        return AnnealResult(
            spins=best_spins.astype(int),
            energy=float(best_energy),
            num_sweeps=self.num_sweeps,
            num_reads=self.num_reads,
            energy_trace=trace,
        )

    def solve_qubo(self, qubo: QUBO) -> AnnealResult:
        """Solve a QUBO by converting to Ising and back."""
        ising, offset = qubo.to_ising()
        result = self.solve_ising(ising)
        result.energy += offset
        return result
