"""Quantum annealing substrate (Sections 3.3 and 4.2).

The paper's second accelerator class solves Quadratic Unconstrained Binary
Optimisation (QUBO) problems either on a quantum annealer (D-Wave-like,
Chimera connectivity, minor embedding required) or on a fully connected
"digital annealer" (Fujitsu-like).  This subpackage implements the QUBO and
Ising models, their inter-conversion, classical simulated annealing,
path-integral simulated *quantum* annealing, the Chimera topology with a
minor-embedding heuristic, and the digital-annealer solver.
"""

from repro.annealing.qubo import QUBO
from repro.annealing.ising import IsingModel
from repro.annealing.simulated_annealing import SimulatedAnnealer, AnnealResult
from repro.annealing.quantum_annealer import SimulatedQuantumAnnealer
from repro.annealing.chimera import chimera_topology, ChimeraGraph
from repro.annealing.embedding import MinorEmbedder, EmbeddingResult
from repro.annealing.digital_annealer import DigitalAnnealer

__all__ = [
    "QUBO",
    "IsingModel",
    "SimulatedAnnealer",
    "AnnealResult",
    "SimulatedQuantumAnnealer",
    "chimera_topology",
    "ChimeraGraph",
    "MinorEmbedder",
    "EmbeddingResult",
    "DigitalAnnealer",
]
