"""Minor embedding of problem graphs into hardware topologies.

"Just like superconducting gate-model quantum computers, superconducting
quantum annealers also suffer from limited connectivity.  It means that we
have to find a graph minor embedding, combining several physical qubits into
a logical qubit.  Finding an embedding is NP-hard in itself, so probabilistic
heuristics are normally used." (Section 4.2)

:class:`MinorEmbedder` implements a greedy chain-growth heuristic in the
spirit of minorminer: logical variables are placed one by one (highest
degree first) as connected chains of physical qubits, each new chain grown
along shortest free paths towards the chains of its already-placed
neighbours.  The embedding capacity experiment (E9) uses it to measure how
many TSP cities fit on a Chimera-connected annealer versus a fully connected
digital annealer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np


@dataclass
class EmbeddingResult:
    """A (possibly failed) minor embedding."""

    success: bool
    chains: dict[int, list[int]] = field(default_factory=dict)
    num_physical_qubits_used: int = 0
    max_chain_length: int = 0
    failure_reason: str = ""

    @property
    def average_chain_length(self) -> float:
        if not self.chains:
            return 0.0
        return self.num_physical_qubits_used / len(self.chains)


class MinorEmbedder:
    """Greedy chain-growth minor-embedding heuristic."""

    def __init__(
        self,
        hardware_graph: nx.Graph,
        seed: int | None = None,
        tries: int = 3,
        rng: np.random.Generator | None = None,
    ):
        if hardware_graph.number_of_nodes() == 0:
            raise ValueError("hardware graph is empty")
        self.hardware = hardware_graph
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.tries = max(1, tries)

    # ------------------------------------------------------------------ #
    def embed(self, problem_graph: nx.Graph) -> EmbeddingResult:
        """Try to embed ``problem_graph``; returns the best attempt."""
        if problem_graph.number_of_nodes() > self.hardware.number_of_nodes():
            return EmbeddingResult(
                success=False,
                failure_reason="more logical variables than physical qubits",
            )
        best: EmbeddingResult | None = None
        for attempt in range(self.tries):
            result = self._embed_once(problem_graph, attempt)
            if result.success:
                if best is None or result.num_physical_qubits_used < best.num_physical_qubits_used:
                    best = result
            elif best is None:
                best = result
        assert best is not None
        return best

    def verify(self, problem_graph: nx.Graph, result: EmbeddingResult) -> bool:
        """Check chain connectivity, disjointness and edge coverage."""
        if not result.success:
            return False
        seen: set[int] = set()
        for chain in result.chains.values():
            if not chain:
                return False
            if seen & set(chain):
                return False
            seen.update(chain)
            if len(chain) > 1 and not nx.is_connected(self.hardware.subgraph(chain)):
                return False
        for u, v in problem_graph.edges():
            chain_u, chain_v = result.chains[u], result.chains[v]
            if not any(self.hardware.has_edge(a, b) for a in chain_u for b in chain_v):
                return False
        return True

    # ------------------------------------------------------------------ #
    def _embed_once(self, problem_graph: nx.Graph, attempt: int) -> EmbeddingResult:
        order = sorted(
            problem_graph.nodes,
            key=lambda n: (-problem_graph.degree(n), self.rng.random()),
        )
        chains: dict[int, list[int]] = {}
        used: set[int] = set()

        for logical in order:
            placed_neighbours = [n for n in problem_graph.neighbors(logical) if n in chains]
            if not placed_neighbours:
                seed_qubit = self._best_free_seed(used)
                if seed_qubit is None:
                    return EmbeddingResult(success=False, failure_reason="no free qubits left")
                chains[logical] = [seed_qubit]
                used.add(seed_qubit)
                continue
            chain = self._grow_chain(placed_neighbours, chains, used)
            if chain is None:
                return EmbeddingResult(
                    success=False,
                    chains=chains,
                    failure_reason=f"could not route logical variable {logical}",
                )
            chains[logical] = chain
            used.update(chain)

        total = sum(len(c) for c in chains.values())
        return EmbeddingResult(
            success=True,
            chains=chains,
            num_physical_qubits_used=total,
            max_chain_length=max(len(c) for c in chains.values()),
        )

    def _best_free_seed(self, used: set[int]) -> int | None:
        free = [q for q in self.hardware.nodes if q not in used]
        if not free:
            return None
        return max(
            free,
            key=lambda q: sum(1 for n in self.hardware.neighbors(q) if n not in used),
        )

    def _grow_chain(
        self,
        placed_neighbours: list[int],
        chains: dict[int, list[int]],
        used: set[int],
    ) -> list[int] | None:
        """Grow a new chain adjacent to every placed neighbour chain.

        Runs a BFS over free qubits from each neighbour chain's frontier; the
        chain root is the free qubit minimising the total distance, and the
        chain is the union of the BFS paths from the root back to each
        frontier.
        """
        distance_maps: list[dict[int, tuple[int, int | None]]] = []
        for neighbour in placed_neighbours:
            frontier = chains[neighbour]
            distances = self._bfs_from_chain(frontier, used)
            if not distances:
                return None
            distance_maps.append(distances)

        candidates: dict[int, int] = {}
        for qubit in self.hardware.nodes:
            if qubit in used:
                continue
            total = 0
            feasible = True
            for distances in distance_maps:
                if qubit not in distances:
                    feasible = False
                    break
                total += distances[qubit][0]
            if feasible:
                candidates[qubit] = total
        if not candidates:
            return None
        root = min(candidates, key=lambda q: (candidates[q], q))

        chain: set[int] = {root}
        for distances in distance_maps:
            node = root
            while True:
                _, parent = distances[node]
                if parent is None or parent in used:
                    break
                chain.add(parent)
                node = parent
        return sorted(chain)

    def _bfs_from_chain(
        self, chain: list[int], used: set[int]
    ) -> dict[int, tuple[int, int | None]]:
        """BFS over free qubits starting from the neighbours of a chain.

        Returns ``{qubit: (distance, parent)}`` where parent leads back
        towards the chain (parent of a frontier qubit is None).
        """
        from collections import deque

        distances: dict[int, tuple[int, int | None]] = {}
        queue: deque[int] = deque()
        for member in chain:
            for neighbour in self.hardware.neighbors(member):
                if neighbour in used or neighbour in distances:
                    continue
                distances[neighbour] = (1, None)
                queue.append(neighbour)
        while queue:
            current = queue.popleft()
            current_distance, _ = distances[current]
            for neighbour in self.hardware.neighbors(current):
                if neighbour in used or neighbour in distances:
                    continue
                distances[neighbour] = (current_distance + 1, current)
                queue.append(neighbour)
        return distances


def chimera_clique_embedding(chimera, num_variables: int) -> EmbeddingResult:
    """Deterministic clique (complete-graph) embedding for Chimera graphs.

    The standard "triangle" construction: variable ``v = t*b + a`` (block b,
    in-shore index a) is represented by an L-shaped chain — the right-shore
    qubits of row ``b`` from column ``b`` rightwards plus the left-shore
    qubits of column ``b`` from row ``0`` down to ``b`` — giving chains of
    length ``m + 1`` and a K_{t*m} clique minor on C(m, m, t).  This is the
    construction behind the D-Wave capacity figures quoted in the paper
    (about 9 TSP cities on a 2000Q).
    """
    from repro.annealing.chimera import ChimeraGraph

    if not isinstance(chimera, ChimeraGraph):
        raise TypeError("chimera_clique_embedding requires a ChimeraGraph")
    m = min(chimera.rows, chimera.cols)
    t = chimera.shore_size
    capacity = t * m
    if num_variables > capacity:
        return EmbeddingResult(
            success=False,
            failure_reason=(
                f"clique embedding capacity is K_{capacity} on C({m},{m},{t}), "
                f"requested K_{num_variables}"
            ),
        )
    chains: dict[int, list[int]] = {}
    for variable in range(num_variables):
        block, index = divmod(variable, t)
        chain = [
            chimera.linear_index(block, col, 1, index) for col in range(block, m)
        ]
        chain.extend(
            chimera.linear_index(row, block, 0, index) for row in range(0, block + 1)
        )
        chains[variable] = sorted(set(chain))
    total = sum(len(c) for c in chains.values())
    return EmbeddingResult(
        success=True,
        chains=chains,
        num_physical_qubits_used=total,
        max_chain_length=max(len(c) for c in chains.values()),
    )


def embedding_capacity(
    hardware_graph: nx.Graph,
    problem_for_size,
    sizes: list[int],
    seed: int | None = None,
) -> dict[int, bool]:
    """Feasibility sweep: which problem sizes embed into the hardware graph.

    ``problem_for_size(size)`` must return the logical interaction graph for
    that size (e.g. the TSP QUBO graph for ``size`` cities).
    """
    embedder = MinorEmbedder(hardware_graph, seed=seed, tries=2)
    feasibility: dict[int, bool] = {}
    for size in sizes:
        problem = problem_for_size(size)
        result = embedder.embed(problem)
        feasibility[size] = result.success and embedder.verify(problem, result)
    return feasibility
