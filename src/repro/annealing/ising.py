"""Classical Ising spin model.

``E(s) = sum_i h_i s_i + sum_{i<j} J_ij s_i s_j`` with spins in {-1, +1}.
Quantum annealers natively minimise this form (Section 3.3: "Quantum
annealers use the Ising model of spin variables ... isomorphic to the QUBO
model").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class IsingModel:
    """Ising Hamiltonian with local fields ``h`` and couplings ``J`` (upper-triangular)."""

    h: np.ndarray
    couplings: np.ndarray

    def __post_init__(self) -> None:
        self.h = np.asarray(self.h, dtype=float)
        couplings = np.asarray(self.couplings, dtype=float)
        if couplings.shape != (self.h.size, self.h.size):
            raise ValueError("couplings must be an n x n matrix")
        self.couplings = np.triu(couplings, 1) + np.tril(couplings, -1).T

    @property
    def num_spins(self) -> int:
        return self.h.size

    # ------------------------------------------------------------------ #
    def energy(self, spins: np.ndarray) -> float:
        s = np.asarray(spins, dtype=float)
        if s.shape != (self.num_spins,):
            raise ValueError("spin vector has the wrong length")
        return float(self.h @ s + s @ self.couplings @ s)

    def local_field(self, spins: np.ndarray, index: int) -> float:
        """Effective field on one spin: dE/ds_i (used by single-spin-flip moves)."""
        s = np.asarray(spins, dtype=float)
        coupling_row = self.couplings[index, :] + self.couplings[:, index]
        return float(self.h[index] + coupling_row @ s)

    def energy_delta(self, spins: np.ndarray, index: int) -> float:
        """Energy change if spin ``index`` were flipped."""
        return -2.0 * spins[index] * self.local_field(spins, index)

    def brute_force(self) -> tuple[np.ndarray, float]:
        """Exact ground state by enumeration (up to 24 spins)."""
        n = self.num_spins
        if n > 24:
            raise ValueError("brute force limited to 24 spins")
        best_energy = np.inf
        best = np.ones(n, dtype=int)
        for value in range(2 ** n):
            spins = np.array([1 if (value >> i) & 1 else -1 for i in range(n)], dtype=float)
            energy = self.energy(spins)
            if energy < best_energy:
                best_energy = energy
                best = spins.astype(int)
        return best, float(best_energy)

    # ------------------------------------------------------------------ #
    def to_qubo(self) -> tuple["QUBO", float]:
        """Convert to the isomorphic QUBO via ``s_i = 2 x_i - 1``."""
        from repro.annealing.qubo import QUBO

        n = self.num_spins
        matrix = np.zeros((n, n))
        offset = 0.0
        for i in range(n):
            matrix[i, i] += 2.0 * self.h[i]
            offset -= self.h[i]
        for i in range(n):
            for j in range(i + 1, n):
                j_ij = self.couplings[i, j]
                if j_ij == 0.0:
                    continue
                matrix[i, j] += 4.0 * j_ij
                matrix[i, i] += -2.0 * j_ij
                matrix[j, j] += -2.0 * j_ij
                offset += j_ij
        return QUBO(matrix), offset

    def edges(self) -> list[tuple[int, int]]:
        """Spin pairs with non-zero coupling."""
        rows, cols = np.nonzero(self.couplings)
        return sorted((int(i), int(j)) for i, j in zip(rows, cols, strict=True))

    def __repr__(self) -> str:  # pragma: no cover
        return f"IsingModel(spins={self.num_spins}, couplings={len(self.edges())})"


def random_ising(
    num_spins: int,
    density: float = 0.5,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> IsingModel:
    """Random spin-glass instance for solver benchmarks."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    h = rng.uniform(-1.0, 1.0, size=num_spins)
    couplings = np.zeros((num_spins, num_spins))
    for i in range(num_spins):
        for j in range(i + 1, num_spins):
            if rng.random() < density:
                couplings[i, j] = rng.choice([-1.0, 1.0])
    return IsingModel(h=h, couplings=couplings)
