"""Digital annealer: fully connected quantum-inspired QUBO solver.

Models the Fujitsu Digital Annealer of Section 4.2: 8192 fully connected
nodes, so no minor embedding is needed, and a massively parallel-trial
Monte-Carlo search.  The parallel-trial rule evaluates every single-bit flip
each step and accepts one of the improving (or thermally excited) moves,
with an escape offset added when the search is stuck — a faithful
functional model of the published digital-annealer algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.annealing.qubo import QUBO
from repro.annealing.simulated_annealing import AnnealResult


class DigitalAnnealer:
    """Fully connected parallel-trial annealer (Fujitsu-style)."""

    def __init__(
        self,
        num_nodes: int = 8192,
        num_sweeps: int = 1000,
        num_reads: int = 4,
        beta_start: float = 0.05,
        beta_end: float = 20.0,
        escape_offset: float = 0.1,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.num_nodes = num_nodes
        self.num_sweeps = num_sweeps
        self.num_reads = num_reads
        self.beta_start = beta_start
        self.beta_end = beta_end
        self.escape_offset = escape_offset
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def capacity_check(self, qubo: QUBO) -> bool:
        """Fully connected: the only limit is the number of nodes."""
        return qubo.num_variables <= self.num_nodes

    def solve_qubo(self, qubo: QUBO) -> AnnealResult:
        if not self.capacity_check(qubo):
            raise ValueError(
                f"problem has {qubo.num_variables} variables, digital annealer has "
                f"{self.num_nodes} nodes"
            )
        n = qubo.num_variables
        # Symmetrised Q for O(n) incremental energy deltas.
        symmetric = qubo.matrix + qubo.matrix.T - np.diag(np.diag(qubo.matrix))
        linear = np.diag(qubo.matrix).copy()
        betas = np.geomspace(self.beta_start, self.beta_end, self.num_sweeps)

        best_x: np.ndarray | None = None
        best_energy = np.inf
        trace: list[float] = []

        for _ in range(self.num_reads):
            x = self.rng.integers(0, 2, size=n).astype(float)
            energy = qubo.energy(x)
            offset = 0.0
            for beta in betas:
                # Energy change of flipping each bit, evaluated in parallel.
                interaction = symmetric @ x - np.diag(symmetric) * x
                deltas = np.where(
                    x == 0,
                    linear + interaction,
                    -(linear + interaction),
                )
                acceptance = np.exp(-beta * np.clip(deltas - offset, 0.0, 50.0 / beta))
                accepted = np.nonzero(self.rng.random(n) < acceptance)[0]
                if accepted.size == 0:
                    # Dynamic escape: raise the offset until a move is taken.
                    offset += self.escape_offset
                    continue
                offset = 0.0
                choice = int(self.rng.choice(accepted))
                x[choice] = 1.0 - x[choice]
                energy += deltas[choice]
                trace.append(energy)
                if energy < best_energy:
                    best_energy = energy
                    best_x = x.copy()
            if energy < best_energy:
                best_energy = energy
                best_x = x.copy()
        assert best_x is not None
        spins = (2 * best_x - 1).astype(int)
        return AnnealResult(
            spins=spins,
            energy=float(best_energy),
            num_sweeps=self.num_sweeps,
            num_reads=self.num_reads,
            energy_trace=trace,
            solver="digital_annealer",
        )
