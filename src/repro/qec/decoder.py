"""Syndrome decoders.

:class:`MatchingDecoder` implements minimum-weight perfect matching over the
space-time defect graph of the surface code (networkx blossom matching),
pairing defects either with each other or with the nearest open boundary —
the real-time graph-processing task the paper assigns to the
micro-architecture's "quantum error decoder" system-on-chip.

:class:`LookupDecoder` is the table-based decoder appropriate for small
codes (repetition, Steane) where the syndrome uniquely identifies the most
likely single error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import networkx as nx
import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.qec.surface_code import PlanarSurfaceCode


class MatchingDecoder:
    """Minimum-weight perfect matching decoder for the planar surface code.

    ``decode(defects)`` receives space-time defects ``(round, ancilla)`` and
    returns the *crossing parity* of the implied correction with respect to
    the code's reference row: 1 when the correction flips the logical
    observable, 0 otherwise.  Comparing this parity with the true error
    parity decides logical success, which avoids materialising the full
    correction chain.

    All geometry is memoised against the code's incidence layout at
    construction: the ancilla-by-ancilla Chebyshev distance matrix, the
    per-ancilla boundary distance, and the crossing-parity indicators.
    ``decode`` only combines these tables with the defects' round indices,
    so repeated calls (one per trial in a memory experiment) no longer
    recompute all-pairs plaquette distances from the centre coordinates.
    """

    def __init__(self, code: "PlanarSurfaceCode", time_weight: float = 1.0):
        self.code = code
        self.time_weight = time_weight
        centres = np.asarray(code.plaquette_centres, dtype=float)
        self._rows = centres[:, 0]
        #: Chebyshev spatial distance between every pair of plaquettes,
        #: memoised once per decoder instead of per decode call.
        self._spatial = np.maximum(
            np.abs(self._rows[:, None] - self._rows[None, :]),
            np.abs(centres[:, 1][:, None] - centres[:, 1][None, :]),
        )
        #: Distance from each plaquette to its nearest open boundary.
        self._boundary_dist = np.minimum(self._rows + 0.5, (code.distance - 0.5) - self._rows)
        #: 1 when the plaquette sits above the reference row (rows are
        #: half-integers, never equal to the integer reference row).
        above = self._rows < code.reference_row
        self._above = above.astype(np.int8)
        #: Crossing parity of the chain to the nearest boundary: it crosses
        #: the reference row iff the defect and its nearest boundary lie on
        #: opposite sides of it.
        nearest_top = self._rows + 0.5 <= (code.distance - 0.5) - self._rows
        self._boundary_par = (nearest_top & ~above).astype(np.int8) | (
            ~nearest_top & above
        ).astype(np.int8)

    # ------------------------------------------------------------------ #
    def decode(self, defects: list[tuple[int, int]]) -> int:
        if not defects:
            return 0
        # Small defect sets — the common case below threshold — are matched
        # exactly without building the blossom graph: one defect can only
        # pair with its boundary, two defects have exactly two candidate
        # matchings.  Weight ties fall through to blossom so tie-breaking is
        # identical to the general path.
        if len(defects) == 1:
            return self._boundary_parity(defects[0])
        if len(defects) == 2:
            pair_weight = self._spacetime_weight(defects[0], defects[1])
            split_weight = self._boundary_weight(defects[0]) + self._boundary_weight(defects[1])
            if pair_weight < split_weight:
                return self._pair_parity(defects[0], defects[1])
            if pair_weight > split_weight:
                return self._boundary_parity(defects[0]) ^ self._boundary_parity(defects[1])
        matching = self._match(defects)
        parity = 0
        for (kind_a, index_a), (kind_b, index_b) in matching:
            if kind_a == "boundary" and kind_b == "boundary":
                continue
            if kind_a == "defect" and kind_b == "defect":
                parity ^= self._pair_parity(defects[index_a], defects[index_b])
            else:
                defect_index = index_a if kind_a == "defect" else index_b
                parity ^= self._boundary_parity(defects[defect_index])
        return parity

    def _pair_parity(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        """Crossing parity of the correction chain joining two defects."""
        return int(self._above[a[1]] ^ self._above[b[1]])

    def _boundary_parity(self, defect: tuple[int, int]) -> int:
        """Crossing parity of a chain from a defect to its nearest boundary
        (top when closer to the top)."""
        return int(self._boundary_par[defect[1]])

    # ------------------------------------------------------------------ #
    def _defect_row(self, defect: tuple[int, int]) -> float:
        return float(self._rows[defect[1]])

    def _spacetime_weight(self, a: tuple[int, int], b: tuple[int, int]) -> float:
        return float(self._spatial[a[1], b[1]]) + self.time_weight * abs(a[0] - b[0])

    def _boundary_weight(self, defect: tuple[int, int]) -> float:
        return float(self._boundary_dist[defect[1]])

    def _match(self, defects: list[tuple[int, int]]):
        """Blossom matching over defects plus one virtual boundary node each.

        All pairwise weights come from the memoised distance tables in one
        vectorized gather; only the graph assembly and blossom search remain
        per-call work.
        """
        count = len(defects)
        times = np.asarray([t for t, _ in defects], dtype=float)
        ancillas = np.asarray([a for _, a in defects], dtype=np.intp)
        weights = self._spatial[np.ix_(ancillas, ancillas)] + self.time_weight * np.abs(
            times[:, None] - times[None, :]
        )
        boundary_weights = self._boundary_dist[ancillas]
        graph = nx.Graph()
        nodes = [("defect", i) for i in range(count)]
        boundary_nodes = [("boundary", i) for i in range(count)]
        large = 1e6
        for i, node_a in enumerate(nodes):
            for j in range(i + 1, count):
                graph.add_edge(node_a, nodes[j], weight=large - weights[i, j])
            graph.add_edge(node_a, boundary_nodes[i], weight=large - boundary_weights[i])
        for i, boundary_a in enumerate(boundary_nodes):
            for j in range(i + 1, count):
                graph.add_edge(boundary_a, boundary_nodes[j], weight=large)
        matching = nx.max_weight_matching(graph, maxcardinality=True)
        return list(matching)


#: Names accepted by :func:`decoder_for` (and the runtime's ``decoder=`` knob).
DECODER_NAMES = ("matching", "union_find")


def decoder_for(code: "PlanarSurfaceCode", name: str, time_weight: float = 1.0):
    """Instantiate a surface-code decoder by registry name.

    ``"matching"`` is the exact blossom decoder (cross-check fallback);
    ``"union_find"`` is the almost-linear weighted-growth decoder that keeps
    d >= 15 decoding tractable.  Both share the ``decode(defects) -> parity``
    interface.
    """
    if name == "matching":
        return MatchingDecoder(code, time_weight=time_weight)
    if name == "union_find":
        from repro.qec.union_find import UnionFindDecoder

        return UnionFindDecoder(code, time_weight=time_weight)
    raise ValueError(f"unknown decoder {name!r}; expected one of {DECODER_NAMES}")


class LookupDecoder:
    """Table-based decoder: syndrome tuple -> correction (set of qubits)."""

    def __init__(self, table: dict[tuple[int, ...], tuple[int, ...]]):
        self.table = dict(table)

    @classmethod
    def for_parity_checks(
        cls, checks: tuple[tuple[int, ...], ...], num_qubits: int
    ) -> "LookupDecoder":
        """Build the single-error lookup table for a set of parity checks."""
        table: dict[tuple[int, ...], tuple[int, ...]] = {
            tuple(0 for _ in checks): (),
        }
        for qubit in range(num_qubits):
            syndrome = tuple(1 if qubit in check else 0 for check in checks)
            table.setdefault(syndrome, (qubit,))
        return cls(table)

    def decode(self, syndrome: tuple[int, ...]) -> tuple[int, ...]:
        """Return the qubits to flip, or the empty tuple when unknown."""
        return self.table.get(tuple(syndrome), ())

    def __len__(self) -> int:
        return len(self.table)
