"""Syndrome decoders.

:class:`MatchingDecoder` implements minimum-weight perfect matching over the
space-time defect graph of the surface code (networkx blossom matching),
pairing defects either with each other or with the nearest open boundary —
the real-time graph-processing task the paper assigns to the
micro-architecture's "quantum error decoder" system-on-chip.

:class:`LookupDecoder` is the table-based decoder appropriate for small
codes (repetition, Steane) where the syndrome uniquely identifies the most
likely single error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.qec.surface_code import PlanarSurfaceCode


class MatchingDecoder:
    """Minimum-weight perfect matching decoder for the planar surface code.

    ``decode(defects)`` receives space-time defects ``(round, ancilla)`` and
    returns the *crossing parity* of the implied correction with respect to
    the code's reference row: 1 when the correction flips the logical
    observable, 0 otherwise.  Comparing this parity with the true error
    parity decides logical success, which avoids materialising the full
    correction chain.
    """

    def __init__(self, code: "PlanarSurfaceCode", time_weight: float = 1.0):
        self.code = code
        self.time_weight = time_weight

    # ------------------------------------------------------------------ #
    def decode(self, defects: list[tuple[int, int]]) -> int:
        if not defects:
            return 0
        # Small defect sets — the common case below threshold — are matched
        # exactly without building the blossom graph: one defect can only
        # pair with its boundary, two defects have exactly two candidate
        # matchings.  Weight ties fall through to blossom so tie-breaking is
        # identical to the general path.
        if len(defects) == 1:
            return self._boundary_parity(defects[0])
        if len(defects) == 2:
            pair_weight = self._spacetime_weight(defects[0], defects[1])
            split_weight = self._boundary_weight(defects[0]) + self._boundary_weight(defects[1])
            if pair_weight < split_weight:
                return self._pair_parity(defects[0], defects[1])
            if pair_weight > split_weight:
                return self._boundary_parity(defects[0]) ^ self._boundary_parity(defects[1])
        matching = self._match(defects)
        parity = 0
        for (kind_a, index_a), (kind_b, index_b) in matching:
            if kind_a == "boundary" and kind_b == "boundary":
                continue
            if kind_a == "defect" and kind_b == "defect":
                parity ^= self._pair_parity(defects[index_a], defects[index_b])
            else:
                defect_index = index_a if kind_a == "defect" else index_b
                parity ^= self._boundary_parity(defects[defect_index])
        return parity

    def _pair_parity(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        """Crossing parity of the correction chain joining two defects."""
        row_a = self._defect_row(a)
        row_b = self._defect_row(b)
        low, high = min(row_a, row_b), max(row_a, row_b)
        return 1 if low < self.code.reference_row < high else 0

    def _boundary_parity(self, defect: tuple[int, int]) -> int:
        """Crossing parity of a chain from a defect to its nearest boundary
        (top when closer to the top)."""
        reference = self.code.reference_row
        row = self._defect_row(defect)
        to_top = row + 0.5
        to_bottom = (self.code.distance - 0.5) - row
        if to_top <= to_bottom:
            return 1 if reference < row else 0
        return 1 if reference > row else 0

    # ------------------------------------------------------------------ #
    def _defect_row(self, defect: tuple[int, int]) -> float:
        _, ancilla = defect
        return self.code.plaquette_centres[ancilla][0]

    def _defect_position(self, defect: tuple[int, int]) -> tuple[float, float, float]:
        round_index, ancilla = defect
        row, col = self.code.plaquette_centres[ancilla]
        return (row, col, float(round_index))

    def _spacetime_weight(self, a: tuple[int, int], b: tuple[int, int]) -> float:
        row_a, col_a, t_a = self._defect_position(a)
        row_b, col_b, t_b = self._defect_position(b)
        spatial = max(abs(row_a - row_b), abs(col_a - col_b))
        return spatial + self.time_weight * abs(t_a - t_b)

    def _boundary_weight(self, defect: tuple[int, int]) -> float:
        row = self._defect_row(defect)
        return min(row + 0.5, (self.code.distance - 0.5) - row)

    def _match(self, defects: list[tuple[int, int]]):
        """Blossom matching over defects plus one virtual boundary node each."""
        graph = nx.Graph()
        nodes = [("defect", i) for i in range(len(defects))]
        boundary_nodes = [("boundary", i) for i in range(len(defects))]
        large = 1e6
        for i, node_a in enumerate(nodes):
            for j in range(i + 1, len(nodes)):
                weight = self._spacetime_weight(defects[i], defects[j])
                graph.add_edge(node_a, nodes[j], weight=large - weight)
            graph.add_edge(node_a, boundary_nodes[i], weight=large - self._boundary_weight(defects[i]))
        for i, boundary_a in enumerate(boundary_nodes):
            for j in range(i + 1, len(boundary_nodes)):
                graph.add_edge(boundary_a, boundary_nodes[j], weight=large)
        matching = nx.max_weight_matching(graph, maxcardinality=True)
        return list(matching)


class LookupDecoder:
    """Table-based decoder: syndrome tuple -> correction (set of qubits)."""

    def __init__(self, table: dict[tuple[int, ...], tuple[int, ...]]):
        self.table = dict(table)

    @classmethod
    def for_parity_checks(cls, checks: tuple[tuple[int, ...], ...], num_qubits: int) -> "LookupDecoder":
        """Build the single-error lookup table for a set of parity checks."""
        table: dict[tuple[int, ...], tuple[int, ...]] = {
            tuple(0 for _ in checks): (),
        }
        for qubit in range(num_qubits):
            syndrome = tuple(1 if qubit in check else 0 for check in checks)
            table.setdefault(syndrome, (qubit,))
        return cls(table)

    def decode(self, syndrome: tuple[int, ...]) -> tuple[int, ...]:
        """Return the qubits to flip, or the empty tuple when unknown."""
        return self.table.get(tuple(syndrome), ())

    def __len__(self) -> int:
        return len(self.table)
