"""Rotated planar surface code with error-syndrome measurement.

Pauli-frame simulation of the rotated distance-d surface code: d*d data
qubits sit on a d x d grid, Z-type ancillas measure plaquette parities every
round (detecting X errors), measurement outcomes may themselves be faulty,
and a matching-based decoder pairs up syndrome *defects* (changes between
consecutive rounds) in space-time.  This is the workload the paper describes
for realistic qubits: "after every sequence of quantum gates, the system
needs to measure out its state and interpret those measurements to see if an
error has been produced ... a very large graph needs to be processed and
interpreted in real-time".

Only the bit-flip (X error / Z stabiliser) sector is simulated; the
phase-flip sector is related by exchanging rows and columns and has
identical statistics under the symmetric error model used here.

Geometry conventions
--------------------
* data qubit (r, c) has index ``r * d + c``;
* Z-plaquette centres sit at half-integer coordinates; interior plaquettes
  have weight 4, boundary plaquettes (left and right columns) weight 2;
* X-error chains terminate on the top and bottom boundaries;
* the logical observable is the parity of X errors along the middle data
  row (a horizontal logical-Z line), so a logical failure is an X chain
  connecting top to bottom.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.circuit import Circuit
from repro.qec.decoder import decoder_for
from repro.qec.pauli_frame import FrameNoise, PauliFrameSampler

#: Process-wide cache of compiled extraction-circuit samplers, keyed by
#: (distance, rounds).  The reference tableau run and schedule compilation
#: are pure functions of the geometry, so shards of a runtime sweep reuse
#: them instead of re-simulating the noiseless circuit per shard.
_SAMPLER_CACHE: dict[tuple[int, int], PauliFrameSampler] = {}


@dataclass
class SurfaceCodeResult:
    """Outcome of a multi-round logical-memory experiment."""

    distance: int
    rounds: int
    trials: int
    physical_error_rate: float
    measurement_error_rate: float
    logical_failures: int
    total_defects: int = 0
    noise_model: str = "phenomenological"
    decoder: str = "matching"

    @property
    def logical_error_rate(self) -> float:
        return self.logical_failures / max(self.trials, 1)

    @property
    def defects_per_round(self) -> float:
        return self.total_defects / max(self.trials * self.rounds, 1)


class PlanarSurfaceCode:
    """Rotated planar surface code of odd distance d (d*d data qubits)."""

    def __init__(self, distance: int = 3):
        if distance < 3 or distance % 2 == 0:
            raise ValueError("distance must be an odd integer >= 3")
        self.distance = distance
        self._build_layout()

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #
    def _build_layout(self) -> None:
        d = self.distance
        self.num_data = d * d
        self.plaquettes: list[tuple[int, ...]] = []
        self.plaquette_centres: list[tuple[float, float]] = []
        # Interior weight-4 Z-plaquettes on a checkerboard ((r + c) even).
        for r in range(d - 1):
            for c in range(d - 1):
                if (r + c) % 2 == 0:
                    self.plaquettes.append(
                        (r * d + c, r * d + c + 1, (r + 1) * d + c, (r + 1) * d + c + 1)
                    )
                    self.plaquette_centres.append((r + 0.5, c + 0.5))
        # Weight-2 boundary Z-plaquettes on the left (c = -1) and right
        # (c = d - 1) edges, continuing the checkerboard.
        for r in range(d - 1):
            if (r + (-1)) % 2 == 0:
                self.plaquettes.append((r * d, (r + 1) * d))
                self.plaquette_centres.append((r + 0.5, -0.5))
            if (r + (d - 1)) % 2 == 0:
                self.plaquettes.append((r * d + d - 1, (r + 1) * d + d - 1))
                self.plaquette_centres.append((r + 0.5, d - 0.5))
        self.num_ancilla = len(self.plaquettes)
        #: Plaquette incidence matrix: ``incidence[a, q] == 1`` when data
        #: qubit q is in the support of Z-plaquette a.  Syndrome extraction
        #: is one matrix product against it instead of a per-plaquette loop.
        self.incidence = np.zeros((self.num_ancilla, self.num_data), dtype=np.int8)
        for index, plaquette in enumerate(self.plaquettes):
            self.incidence[index, list(plaquette)] = 1
        #: Reference data row whose X-error parity is the logical observable.
        self.reference_row = d // 2

    def x_stabilizers(self) -> list[tuple[int, ...]]:
        """Supports of the X-type stabilisers (the complementary checkerboard).

        X-stabilisers commute with every Z-plaquette (they overlap in 0 or 2
        data qubits), so applying one as an X-error pattern is undetectable
        *and* does not flip the logical observable — the property test of the
        stabiliser group structure.
        """
        d = self.distance
        stabilizers: list[tuple[int, ...]] = []
        for r in range(d - 1):
            for c in range(d - 1):
                if (r + c) % 2 == 1:
                    stabilizers.append(
                        (r * d + c, r * d + c + 1, (r + 1) * d + c, (r + 1) * d + c + 1)
                    )
        for c in range(d - 1):
            if (-1 + c) % 2 == 1:
                stabilizers.append((c, c + 1))
            if ((d - 1) + c) % 2 == 1:
                stabilizers.append(((d - 1) * d + c, (d - 1) * d + c + 1))
        return stabilizers

    @property
    def num_physical_qubits(self) -> int:
        """Data plus ancilla qubits — the resource count the paper's NISQ
        argument is about (surface codes "require too many ancilla qubits")."""
        return self.num_data + self.num_ancilla

    # ------------------------------------------------------------------ #
    # Syndromes and logical observable
    # ------------------------------------------------------------------ #
    def syndrome(self, errors: np.ndarray) -> np.ndarray:
        """Parity of every Z-plaquette for a given X-error pattern."""
        errors = np.asarray(errors, dtype=np.int8)
        return (self.incidence @ errors) & 1

    def syndrome_batch(self, errors: np.ndarray) -> np.ndarray:
        """Syndromes of a ``(trials, num_data)`` block of error patterns."""
        errors = np.asarray(errors, dtype=np.int8)
        return (errors @ self.incidence.T) & 1

    def syndrome_reference(self, errors: np.ndarray) -> np.ndarray:
        """Per-plaquette loop implementation, kept as the ground truth the
        vectorized :meth:`syndrome` is tested and benchmarked against."""
        result = np.zeros(self.num_ancilla, dtype=np.int8)
        for index, plaquette in enumerate(self.plaquettes):
            result[index] = int(np.sum(errors[list(plaquette)]) % 2)
        return result

    def error_crossing_parity(self, errors: np.ndarray) -> int:
        """Parity of X errors on the reference row (logical observable)."""
        d = self.distance
        row = errors[self.reference_row * d : (self.reference_row + 1) * d]
        return int(np.sum(row) % 2)

    def minimum_weight_logical(self) -> np.ndarray:
        """A minimum-weight logical X operator (one full column of X errors)."""
        errors = np.zeros(self.num_data, dtype=np.int8)
        for r in range(self.distance):
            errors[r * self.distance] = 1
        return errors

    # ------------------------------------------------------------------ #
    # Syndrome-extraction circuit (circuit-level noise)
    # ------------------------------------------------------------------ #
    def extraction_circuit(self, rounds: int | None = None) -> Circuit:
        """Build the multi-round syndrome-extraction circuit.

        Data qubit ``r * d + c`` keeps its layout index; ancilla ``a`` is
        qubit ``num_data + a``.  Each round measures every Z-plaquette: a
        CNOT from each support data qubit onto the ancilla (in the
        plaquette's tuple order), a measurement of the ancilla into bit
        ``round * num_ancilla + a``, then the measure-then-``c-x`` reset
        idiom re-preparing the ancilla in |0> for the next round.  With all
        qubits starting in |0> every reference outcome is deterministically
        0, which is what :class:`~repro.qec.pauli_frame.PauliFrameSampler`
        requires.
        """
        rounds = rounds if rounds is not None else self.distance
        if rounds < 1:
            raise ValueError("extraction circuit needs at least one round")
        circuit = Circuit(
            self.num_physical_qubits,
            name=f"esm_d{self.distance}_r{rounds}",
            num_bits=rounds * self.num_ancilla,
        )
        for round_index in range(rounds):
            for ancilla, plaquette in enumerate(self.plaquettes):
                ancilla_qubit = self.num_data + ancilla
                bit = round_index * self.num_ancilla + ancilla
                for data_qubit in plaquette:
                    circuit.cnot(data_qubit, ancilla_qubit)
                circuit.measure(ancilla_qubit, bit)
                circuit.conditional_gate("x", bit, ancilla_qubit)
        return circuit

    def _sampler(self, rounds: int) -> PauliFrameSampler:
        key = (self.distance, rounds)
        sampler = _SAMPLER_CACHE.get(key)
        if sampler is None:
            sampler = PauliFrameSampler(self.extraction_circuit(rounds))
            _SAMPLER_CACHE[key] = sampler
        return sampler

    def run_circuit_memory_experiment(
        self,
        physical_error_rate: float,
        rounds: int | None = None,
        trials: int = 500,
        measurement_error_rate: float | None = None,
        seed: int | np.random.SeedSequence | None = None,
        decoder: str = "union_find",
    ) -> SurfaceCodeResult:
        """Logical memory experiment under circuit-level noise.

        The actual syndrome-extraction circuit runs through the Pauli-frame
        sampler: every CNOT suffers two-qubit depolarizing noise at
        ``physical_error_rate``, every ancilla measurement and reset flips
        at ``measurement_error_rate`` (defaulting to the physical rate).
        Defects are the round-to-round syndrome changes plus a final perfect
        read-out closing open chains, exactly as in the phenomenological
        :meth:`run_memory_experiment` — only the noise locations differ.

        ``decoder`` selects the registry entry (default ``"union_find"``:
        circuit-level volume is where blossom stops being tractable).
        """
        rounds = rounds if rounds is not None else self.distance
        measurement_error_rate = (
            measurement_error_rate if measurement_error_rate is not None else physical_error_rate
        )
        sampler = self._sampler(rounds)
        noise = FrameNoise(
            cnot_error_rate=physical_error_rate,
            measurement_error_rate=measurement_error_rate,
            reset_error_rate=measurement_error_rate,
        )
        sample = sampler.sample(trials, noise, seed=seed)
        observed = sample.bits.reshape(trials, rounds, self.num_ancilla)
        final_errors = sample.final_x[:, : self.num_data]
        final_syndromes = self.syndrome_batch(final_errors)
        syndromes = np.concatenate([observed, final_syndromes[:, np.newaxis, :]], axis=1)
        changed = syndromes.copy()
        changed[:, 1:, :] ^= syndromes[:, :-1, :]
        row_start = self.reference_row * self.distance
        true_parities = final_errors[:, row_start : row_start + self.distance].sum(axis=1) & 1
        decode = decoder_for(self, decoder).decode
        failures = 0
        total_defects = 0
        for trial in range(trials):
            times, ancillas = np.nonzero(changed[trial])
            defects = list(zip(times.tolist(), ancillas.tolist(), strict=True))
            total_defects += len(defects)
            if decode(defects) != int(true_parities[trial]):
                failures += 1
        return SurfaceCodeResult(
            distance=self.distance,
            rounds=rounds,
            trials=trials,
            physical_error_rate=physical_error_rate,
            measurement_error_rate=measurement_error_rate,
            logical_failures=failures,
            total_defects=total_defects,
            noise_model="circuit",
            decoder=decoder,
        )

    # ------------------------------------------------------------------ #
    # Memory experiment
    # ------------------------------------------------------------------ #
    def run_memory_experiment(
        self,
        physical_error_rate: float,
        rounds: int | None = None,
        trials: int = 500,
        measurement_error_rate: float | None = None,
        seed: int | np.random.SeedSequence | None = None,
        decoder: str = "matching",
    ) -> SurfaceCodeResult:
        """Logical memory experiment: accumulate errors over ESM rounds.

        Each round every data qubit suffers an X error with probability
        ``physical_error_rate`` and every ancilla reports a wrong parity with
        probability ``measurement_error_rate``.  Space-time defects are
        matched by :class:`~repro.qec.decoder.MatchingDecoder`; a trial fails
        when the decoder's correction disagrees with the true logical parity.

        Every trial's rounds are processed as one batch: a single uniform
        block per trial (consumed in the same order as the per-round loops of
        :meth:`run_memory_experiment_reference`, so outcomes are
        bit-identical for equal seeds), a cumulative-XOR error history, and a
        single incidence-matrix product for all syndromes.
        """
        rng = np.random.default_rng(seed)
        rounds = rounds if rounds is not None else self.distance
        measurement_error_rate = (
            measurement_error_rate if measurement_error_rate is not None else physical_error_rate
        )
        decode = decoder_for(self, decoder).decode
        failures = 0
        total_defects = 0
        for _ in range(trials):
            # One draw per trial; columns split into data-error and
            # measurement-flip thresholds, row-major consumption matching the
            # reference implementation's per-round interleaving exactly.
            block = rng.random((rounds, self.num_data + self.num_ancilla))
            new_errors = (block[:, : self.num_data] < physical_error_rate).astype(np.int8)
            flips = (block[:, self.num_data :] < measurement_error_rate).astype(np.int8)
            # Row t of the accumulated history is the error pattern after
            # round t; syndromes of every round are one matrix product.
            history = np.bitwise_xor.accumulate(new_errors, axis=0)
            if rounds:
                observed = self.syndrome_batch(history) ^ flips
                final_errors = history[-1]
            else:
                observed = np.zeros((0, self.num_ancilla), dtype=np.int8)
                final_errors = np.zeros(self.num_data, dtype=np.int8)
            # Final perfect read-out round closes open defect chains in time.
            syndromes = np.vstack([observed, self.syndrome(final_errors)[np.newaxis, :]])
            changed = syndromes.copy()
            changed[1:] ^= syndromes[:-1]
            times, ancillas = np.nonzero(changed)
            defects = list(zip(times.tolist(), ancillas.tolist(), strict=True))
            total_defects += len(defects)

            correction_parity = decode(defects)
            if correction_parity != self.error_crossing_parity(final_errors):
                failures += 1
        return SurfaceCodeResult(
            distance=self.distance,
            rounds=rounds,
            trials=trials,
            physical_error_rate=physical_error_rate,
            measurement_error_rate=measurement_error_rate,
            logical_failures=failures,
            total_defects=total_defects,
            decoder=decoder,
        )

    def run_memory_experiment_reference(
        self,
        physical_error_rate: float,
        rounds: int | None = None,
        trials: int = 500,
        measurement_error_rate: float | None = None,
        seed: int | np.random.SeedSequence | None = None,
        decoder: str = "matching",
    ) -> SurfaceCodeResult:
        """Per-round, per-plaquette loop implementation of the memory
        experiment — the pre-vectorization ground truth.

        Kept (like ``kernels.apply_gate_generic`` on the state-vector side)
        so equivalence tests can assert that :meth:`run_memory_experiment`
        produces bit-identical failure counts and defect totals for equal
        seeds, and so benchmarks can measure the speedup against it.
        """
        rng = np.random.default_rng(seed)
        rounds = rounds if rounds is not None else self.distance
        measurement_error_rate = (
            measurement_error_rate if measurement_error_rate is not None else physical_error_rate
        )
        decode = decoder_for(self, decoder).decode
        failures = 0
        total_defects = 0
        for _ in range(trials):
            errors = np.zeros(self.num_data, dtype=np.int8)
            previous = np.zeros(self.num_ancilla, dtype=np.int8)
            defects: list[tuple[int, int]] = []
            for round_index in range(rounds):
                new_errors = (rng.random(self.num_data) < physical_error_rate).astype(np.int8)
                errors ^= new_errors
                observed = self.syndrome_reference(errors)
                flips = (rng.random(self.num_ancilla) < measurement_error_rate).astype(np.int8)
                observed = observed ^ flips
                changed = observed ^ previous
                defects.extend((round_index, int(a)) for a in np.nonzero(changed)[0])
                previous = observed
            observed = self.syndrome_reference(errors)
            changed = observed ^ previous
            defects.extend((rounds, int(a)) for a in np.nonzero(changed)[0])
            total_defects += len(defects)

            correction_parity = decode(defects)
            if correction_parity != self.error_crossing_parity(errors):
                failures += 1
        return SurfaceCodeResult(
            distance=self.distance,
            rounds=rounds,
            trials=trials,
            physical_error_rate=physical_error_rate,
            measurement_error_rate=measurement_error_rate,
            logical_failures=failures,
            total_defects=total_defects,
            decoder=decoder,
        )

    def logical_error_rate(
        self,
        physical_error_rate: float,
        trials: int = 500,
        rounds: int | None = None,
        measurement_error_rate: float | None = None,
        seed: int | None = None,
        decoder: str = "matching",
    ) -> float:
        """Convenience wrapper returning only the logical error rate."""
        return self.run_memory_experiment(
            physical_error_rate,
            rounds=rounds,
            trials=trials,
            measurement_error_rate=measurement_error_rate,
            seed=seed,
            decoder=decoder,
        ).logical_error_rate
