"""Quantum error correction.

The realistic-qubit track of the paper (Section 2.1) relies on QEC: data
qubits hold the state, ancilla qubits detect bit-flip and phase-flip errors
through error-syndrome measurements (ESM), and a decoder interprets the
syndrome graph in real time.  This subpackage implements

* small codes as circuits (3-qubit repetition, Shor-9, Steane-7) executed on
  the QX simulator, and
* a Pauli-frame planar surface-code model with multi-round syndrome
  extraction and a matching-based decoder, used for the logical-vs-physical
  error-rate experiment (E6).
"""

from repro.qec.codes import RepetitionCode, ShorCode, SteaneCode
from repro.qec.surface_code import PlanarSurfaceCode, SurfaceCodeResult
from repro.qec.decoder import MatchingDecoder, LookupDecoder

__all__ = [
    "RepetitionCode",
    "ShorCode",
    "SteaneCode",
    "PlanarSurfaceCode",
    "SurfaceCodeResult",
    "MatchingDecoder",
    "LookupDecoder",
]
