"""Quantum error correction.

The realistic-qubit track of the paper (Section 2.1) relies on QEC: data
qubits hold the state, ancilla qubits detect bit-flip and phase-flip errors
through error-syndrome measurements (ESM), and a decoder interprets the
syndrome graph in real time.  This subpackage implements

* small codes as circuits (3-qubit repetition, Shor-9, Steane-7) executed on
  the QX simulator,
* a planar surface-code model with multi-round syndrome extraction under
  phenomenological noise, used for the logical-vs-physical error-rate
  experiment (E6),
* a Pauli-frame sampler for *circuit-level* noise on the real
  syndrome-extraction circuit (depolarizing CNOTs, faulty
  measurements/resets), and
* two space-time decoders: exact blossom matching and the almost-linear
  union-find decoder that keeps d >= 15 decoding tractable.
"""

from repro.qec.codes import RepetitionCode, ShorCode, SteaneCode
from repro.qec.surface_code import PlanarSurfaceCode, SurfaceCodeResult
from repro.qec.decoder import DECODER_NAMES, MatchingDecoder, LookupDecoder, decoder_for
from repro.qec.pauli_frame import FrameNoise, FrameSample, PauliFrameSampler
from repro.qec.union_find import UnionFindDecoder

__all__ = [
    "RepetitionCode",
    "ShorCode",
    "SteaneCode",
    "PlanarSurfaceCode",
    "SurfaceCodeResult",
    "MatchingDecoder",
    "LookupDecoder",
    "UnionFindDecoder",
    "DECODER_NAMES",
    "decoder_for",
    "FrameNoise",
    "FrameSample",
    "PauliFrameSampler",
]
