"""Small quantum error-correcting codes as circuits.

These are the "small codes" Preskill's NISQ argument favours over full
surface codes (Section 2.1): the 3-qubit bit-flip repetition code, the
9-qubit Shor code and the 7-qubit Steane code.  Each code provides encoding
circuits, syndrome-measurement circuits, classical decoding of the measured
syndrome, and a Monte-Carlo estimate of the logical error rate under a
physical depolarising/bit-flip error rate — executed on the QX simulator so
the whole realistic-qubit stack is exercised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.circuit import Circuit
from repro.qx.simulator import QXSimulator
from repro.qx.statevector import StateVector


@dataclass
class CodeParameters:
    """[[n, k, d]] parameters of a code."""

    physical_qubits: int
    logical_qubits: int
    distance: int


class RepetitionCode:
    """Distance-d bit-flip repetition code (phase-flip variant optional).

    The logical |0> is |00...0>, logical |1> is |11...1>.  Ancilla-free
    decoding is done by majority vote on the measured data qubits, which is
    sufficient for the bit-flip channel used in the benchmarks.
    """

    def __init__(self, distance: int = 3, basis: str = "bit"):
        if distance < 3 or distance % 2 == 0:
            raise ValueError("distance must be an odd integer >= 3")
        if basis not in ("bit", "phase"):
            raise ValueError("basis must be 'bit' or 'phase'")
        self.distance = distance
        self.basis = basis

    @property
    def parameters(self) -> CodeParameters:
        return CodeParameters(self.distance, 1, self.distance)

    # ------------------------------------------------------------------ #
    def encoding_circuit(self, logical_one: bool = False) -> Circuit:
        """Prepare the logical |0> or |1> across ``distance`` data qubits."""
        circuit = Circuit(self.distance, f"rep{self.distance}_encode")
        if logical_one:
            circuit.x(0)
        for qubit in range(1, self.distance):
            circuit.cnot(0, qubit)
        if self.basis == "phase":
            for qubit in range(self.distance):
                circuit.h(qubit)
        return circuit

    def decode_majority(self, bits: list[int]) -> int:
        """Majority-vote decoding of measured data qubits."""
        return int(sum(bits) > len(bits) // 2)

    def syndrome(self, bits: list[int]) -> list[int]:
        """Parity checks between neighbouring data qubits."""
        return [bits[i] ^ bits[i + 1] for i in range(len(bits) - 1)]

    # ------------------------------------------------------------------ #
    def logical_error_rate(
        self,
        physical_error_rate: float,
        trials: int = 2000,
        seed: int | np.random.SeedSequence | None = None,
    ) -> float:
        """Monte-Carlo logical error rate under independent bit-flips.

        For the repetition code under an independent bit-flip channel, the
        classical (Pauli-frame) simulation is exact and fast; the circuit
        version in :meth:`logical_error_rate_circuit` cross-checks it on the
        QX simulator for small numbers of trials.
        """
        rng = np.random.default_rng(seed)
        flips = rng.random((trials, self.distance)) < physical_error_rate
        wrong = np.sum(flips, axis=1) > self.distance // 2
        return float(np.mean(wrong))

    def logical_error_rate_circuit(
        self,
        physical_error_rate: float,
        trials: int = 200,
        seed: int | np.random.SeedSequence | None = None,
    ) -> float:
        """Logical error rate measured by running encode-error-measure circuits on QX."""
        rng = np.random.default_rng(seed)
        failures = 0
        for _ in range(trials):
            circuit = self.encoding_circuit(logical_one=False)
            for qubit in range(self.distance):
                if rng.random() < physical_error_rate:
                    circuit.x(qubit)
            circuit.measure_all()
            result = QXSimulator(seed=int(rng.integers(2**31))).run(circuit, shots=1)
            bits = [result.classical_bits[0][q] for q in range(self.distance)]
            if self.decode_majority(bits) != 0:
                failures += 1
        return failures / trials


class ShorCode:
    """The 9-qubit Shor code: protects against any single-qubit error."""

    parameters = CodeParameters(9, 1, 3)

    def encoding_circuit(self, logical_one: bool = False) -> Circuit:
        """Standard Shor encoding: phase-flip repetition of bit-flip triples."""
        circuit = Circuit(9, "shor9_encode")
        if logical_one:
            circuit.x(0)
        # Outer phase-flip code over blocks (0, 3, 6).
        circuit.cnot(0, 3)
        circuit.cnot(0, 6)
        circuit.h(0)
        circuit.h(3)
        circuit.h(6)
        # Inner bit-flip codes inside each block.
        for block in (0, 3, 6):
            circuit.cnot(block, block + 1)
            circuit.cnot(block, block + 2)
        return circuit

    def apply_error(self, circuit: Circuit, qubit: int, pauli: str) -> Circuit:
        """Append a single Pauli error to a copy of the circuit."""
        result = circuit.copy()
        if pauli == "x":
            result.x(qubit)
        elif pauli == "z":
            result.z(qubit)
        elif pauli == "y":
            result.y(qubit)
        elif pauli != "i":
            raise ValueError(f"unknown Pauli {pauli!r}")
        return result

    def decoding_circuit(self) -> Circuit:
        """Coherent decoder with majority-vote (Toffoli) corrections.

        Mirrors the encoder in reverse and uses the two other qubits of each
        block as a coherent majority vote, so any single-qubit Pauli error is
        corrected without intermediate measurement.
        """
        circuit = Circuit(9, "shor9_decode")
        # Undo the inner bit-flip codes with majority correction.
        for block in (0, 3, 6):
            circuit.cnot(block, block + 1)
            circuit.cnot(block, block + 2)
            circuit.toffoli(block + 1, block + 2, block)
        # Undo the outer phase-flip code with majority correction.
        circuit.h(0)
        circuit.h(3)
        circuit.h(6)
        circuit.cnot(0, 3)
        circuit.cnot(0, 6)
        circuit.toffoli(3, 6, 0)
        return circuit

    def recovery_fidelity(self, pauli: str, qubit: int) -> float:
        """Probability that the logical qubit is recovered after one Pauli error.

        Encodes |0>_L, applies the error, runs the coherent decoder and
        returns the probability that the logical (input) qubit reads 0.  For
        the Shor code every single-qubit Pauli error is correctable, so the
        returned value is 1.0 for all of them (a property test).
        """
        encode = self.encoding_circuit()
        noisy = self.apply_error(encode, qubit, pauli)
        full = noisy.compose(self.decoding_circuit())
        sim = QXSimulator(seed=0)
        state = StateVector(9)
        state.set_state(sim.statevector(full))
        # After a successful decode the logical qubit (q0) must be |0>
        # regardless of the junk left on the syndrome qubits.
        return 1.0 - state.probability_of_one(0)


class SteaneCode:
    """The [[7, 1, 3]] Steane (CSS) code."""

    parameters = CodeParameters(7, 1, 3)

    #: Parity-check matrix of the classical [7,4,3] Hamming code.
    PARITY_CHECKS = (
        (0, 2, 4, 6),
        (1, 2, 5, 6),
        (3, 4, 5, 6),
    )

    def encoding_circuit(self, logical_one: bool = False) -> Circuit:
        """Encode |0>_L (or |1>_L) into seven qubits.

        |0>_L is the uniform superposition of the eight codewords of the
        [7, 3] simplex code spanned by the X-stabiliser generators (the rows
        of :attr:`PARITY_CHECKS`).  The CSS encoder puts a Hadamard on one
        pivot qubit per generator (qubits 0, 1 and 3, which each appear in
        exactly one row) and copies it into the rest of the row with CNOTs.
        |1>_L is obtained by the transversal logical X (X on all qubits).
        """
        circuit = Circuit(7, "steane7_encode")
        pivots = (0, 1, 3)
        for pivot, row in zip(pivots, self.PARITY_CHECKS, strict=True):
            circuit.h(pivot)
            for target in row:
                if target != pivot:
                    circuit.cnot(pivot, target)
        if logical_one:
            for qubit in range(7):
                circuit.x(qubit)
        return circuit

    def codeword_support(self) -> set[int]:
        """Basis-state indices (qubit 0 = LSB) that |0>_L is supported on."""
        rows = [sum(1 << q for q in check) for check in self.PARITY_CHECKS]
        support = set()
        for mask in range(8):
            word = 0
            for bit, row in enumerate(rows):
                if (mask >> bit) & 1:
                    word ^= row
            support.add(word)
        return support

    def syndrome_of_flips(self, flipped_qubits: set[int]) -> tuple[int, ...]:
        """Classical X-error syndrome from the Hamming parity checks."""
        return tuple(
            sum(1 for q in check if q in flipped_qubits) % 2 for check in self.PARITY_CHECKS
        )

    def decode_syndrome(self, syndrome: tuple[int, ...]) -> int | None:
        """Return the data qubit identified by the syndrome (or None)."""
        value = syndrome[0] * 1 + syndrome[1] * 2 + syndrome[2] * 4
        if value == 0:
            return None
        # The Hamming syndrome directly indexes the erroneous position
        # (columns of the parity-check matrix are the binary numbers 1..7).
        return value - 1

    def logical_error_rate(
        self,
        physical_error_rate: float,
        trials: int = 5000,
        seed: int | np.random.SeedSequence | None = None,
    ) -> float:
        """Monte-Carlo logical X error rate under independent bit-flips.

        An error pattern is a logical failure when, after syndrome-directed
        correction, the residual error anti-commutes with the logical Z —
        i.e. the corrected pattern has odd overlap with the logical X support
        (all seven qubits).
        """
        rng = np.random.default_rng(seed)
        failures = 0
        for _ in range(trials):
            flipped = {q for q in range(7) if rng.random() < physical_error_rate}
            syndrome = self.syndrome_of_flips(flipped)
            correction = self.decode_syndrome(syndrome)
            residual = set(flipped)
            if correction is not None:
                residual ^= {correction}
            if len(residual) % 2 == 1:
                failures += 1
        return failures / trials
