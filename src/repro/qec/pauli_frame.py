"""Pauli-frame sampling of circuit-level noise on Clifford circuits.

Phenomenological QEC models flip data qubits i.i.d. between syndrome rounds;
the paper's full-stack story needs *circuit-level* noise: a depolarizing
error on every CNOT of the actual syndrome-extraction circuit and a
classical flip on every measurement and reset.  Simulating that per shot on
the tableau would cost O(shots * n^2) per measurement; the Pauli-frame
technique makes it O(n) frame updates per location instead:

1. the noiseless circuit is executed **once** on the stabilizer engine with
   pinned measurement outcomes (:meth:`~repro.qx.stabilizer.StabilizerSimulator.reference_run`)
   — the *reference frame*;
2. each shot carries only a Pauli frame (X/Z flip bits per qubit, here a
   whole ``(shots, n)`` bit-plane so all shots advance together);
3. Clifford gates conjugate the frame in O(1) bit operations per qubit
   (CNOT: ``X_c -> X_c X_t``, ``Z_t -> Z_t Z_c``; H swaps X/Z; S maps
   ``X -> Y``), sampled errors XOR into it, and a measurement's outcome is
   the reference outcome XOR the qubit's X-frame bit XOR a read-out flip.

This is exact for stabilizer circuits whose reference outcomes are
deterministic (the syndrome-extraction circuits built by
:meth:`~repro.qec.surface_code.PlanarSurfaceCode.extraction_circuit` are:
data qubits start in |0> and every plaquette parity is fixed).  The sampler
refuses circuits with random reference outcomes rather than silently
decorrelating them.

Noise model (:class:`FrameNoise`)
---------------------------------
* ``cnot_error_rate`` — after every CNOT, with this probability one of the
  15 non-identity two-qubit Paulis (uniformly) is applied to the pair;
* ``measurement_error_rate`` — every measurement outcome is flipped with
  this probability (classical read-out error);
* ``reset_error_rate`` — every reset re-prepares |1> instead of |0> with
  this probability.

Resets are recognised from the canonical measure-then-``c-x`` idiom: a
conditional X on a qubit, conditioned on the bit that qubit's most recent
measurement wrote, is measure-and-reset (the tableau reference executes it
literally; the frame sampler clears the qubit's frame and injects the reset
flip).

Randomness contract: one uniform draw per CNOT (the sub-``p`` mass is
reused to pick the Pauli, so the draw count per shot is exactly the
location count), one per measurement, one per reset, consumed in program
order — a shard's sample stream is a pure function of its seed, which is
what the runtime's bit-identical 1-vs-N-workers contract requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.circuit import Circuit
from repro.core.operations import Barrier, ConditionalGate, GateOperation, Measurement
from repro.qx.stabilizer import ReferenceRun, StabilizerSimulator

#: X/Z flip masks of the 15 non-identity two-qubit Paulis, indexed by
#: ``k in 0..14`` -> Pauli ``(k + 1) = 4 * control_letter + target_letter``
#: with letters I=0, X=1, Y=2, Z=3.  Column order: (x_control, x_target,
#: z_control, z_target).
_LETTER_X = np.array([0, 1, 1, 0], dtype=np.uint8)
_LETTER_Z = np.array([0, 0, 1, 1], dtype=np.uint8)
_PAULI2 = np.arange(1, 16)
DEPOLARIZING2_FLIPS = np.stack(
    [
        _LETTER_X[_PAULI2 // 4],
        _LETTER_X[_PAULI2 % 4],
        _LETTER_Z[_PAULI2 // 4],
        _LETTER_Z[_PAULI2 % 4],
    ],
    axis=1,
)


@dataclass(frozen=True)
class FrameNoise:
    """Circuit-level error rates applied during frame sampling."""

    cnot_error_rate: float = 0.0
    measurement_error_rate: float = 0.0
    reset_error_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("cnot_error_rate", "measurement_error_rate", "reset_error_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} outside [0, 1]: {rate}")


@dataclass
class FrameSample:
    """One vectorized batch of Pauli-frame shots."""

    #: Measured classical bits, shape ``(shots, num_bits)`` (uint8).
    bits: np.ndarray
    #: Final X-frame per qubit, shape ``(shots, num_qubits)`` — the physical
    #: X-error pattern each shot ends in, relative to the reference.
    final_x: np.ndarray
    #: Final Z-frame per qubit, shape ``(shots, num_qubits)``.
    final_z: np.ndarray


class PauliFrameSampler:
    """Samples circuit-level noisy executions of one Clifford circuit.

    The constructor runs the tableau reference once and compiles the circuit
    into a flat schedule of frame updates; :meth:`sample` then advances all
    shots through the schedule with O(n) numpy bit-plane updates per
    location.
    """

    #: Gate name -> frame conjugation, applied before error injection.
    SUPPORTED_GATES = ("i", "x", "y", "z", "h", "s", "sdag", "cnot", "cz", "swap")

    def __init__(self, circuit: Circuit, reference: ReferenceRun | None = None):
        if reference is None:
            reference = StabilizerSimulator(seed=0).reference_run(circuit)
        if not reference.all_deterministic:
            random_count = sum(1 for flag in reference.deterministic if not flag)
            raise ValueError(
                f"circuit has {random_count} measurement(s) with random outcomes; "
                "Pauli-frame sampling needs a deterministic reference frame"
            )
        self.circuit = circuit
        self.reference = reference
        self.num_qubits = circuit.num_qubits
        self.num_bits = circuit.num_bits
        self._schedule = self._compile_schedule(circuit, reference)

    # ------------------------------------------------------------------ #
    def _compile_schedule(self, circuit: Circuit, reference: ReferenceRun) -> list[tuple]:
        schedule: list[tuple] = []
        measurement_index = 0
        last_measured_bit: dict[int, int] = {}
        for op in circuit.operations:
            if isinstance(op, GateOperation):
                if op.name not in self.SUPPORTED_GATES:
                    raise ValueError(
                        f"gate {op.name!r} is not Clifford-frame-propagatable; "
                        f"supported: {self.SUPPORTED_GATES}"
                    )
                if op.name != "i":
                    schedule.append(("gate", op.name, op.qubits))
                if op.name in ("cnot", "cz"):
                    schedule.append(("error2", op.qubits[0], op.qubits[1]))
            elif isinstance(op, Measurement):
                outcome = reference.outcomes[measurement_index]
                schedule.append(("measure", op.qubit, op.bit, outcome))
                last_measured_bit[op.qubit] = op.bit
                measurement_index += 1
            elif isinstance(op, ConditionalGate):
                qubit = op.qubits[0]
                if (
                    op.gate.name == "x"
                    and len(op.qubits) == 1
                    and last_measured_bit.get(qubit) == op.condition_bit
                ):
                    # Canonical measure-then-c-x reset: the reference
                    # executed it literally; the frame simply restarts.
                    schedule.append(("reset", qubit))
                else:
                    raise ValueError(
                        "conditional gates other than the measure-then-c-x reset "
                        "idiom are not frame-propagatable (feedback would depend "
                        "on noisy outcomes)"
                    )
            elif isinstance(op, Barrier):
                continue
            else:
                raise ValueError(f"unsupported operation {op.name!r} in frame sampling")
        return schedule

    # ------------------------------------------------------------------ #
    def sample(
        self,
        shots: int,
        noise: FrameNoise,
        rng: np.random.Generator | None = None,
        seed: int | np.random.SeedSequence | None = None,
    ) -> FrameSample:
        """Propagate ``shots`` sampled Pauli frames through the schedule."""
        if shots < 1:
            raise ValueError("shots must be >= 1")
        if rng is None:
            rng = np.random.default_rng(seed)
        n = self.num_qubits
        fx = np.zeros((shots, n), dtype=np.uint8)
        fz = np.zeros((shots, n), dtype=np.uint8)
        bits = np.zeros((shots, self.num_bits), dtype=np.uint8)
        p2 = noise.cnot_error_rate
        pm = noise.measurement_error_rate
        pr = noise.reset_error_rate
        flips = DEPOLARIZING2_FLIPS
        for entry in self._schedule:
            kind = entry[0]
            if kind == "gate":
                _apply_frame_gate(fx, fz, entry[1], entry[2])
            elif kind == "error2":
                if p2 <= 0.0:
                    continue
                a, b = entry[1], entry[2]
                draws = rng.random(shots)
                hit = draws < p2
                if hit.any():
                    # Reuse the sub-p mass of the same draw to pick which of
                    # the 15 non-identity Paulis lands: one draw per location.
                    pauli = np.minimum((draws[hit] * (15.0 / p2)).astype(np.intp), 14)
                    fx[hit, a] ^= flips[pauli, 0]
                    fx[hit, b] ^= flips[pauli, 1]
                    fz[hit, a] ^= flips[pauli, 2]
                    fz[hit, b] ^= flips[pauli, 3]
            elif kind == "measure":
                qubit, bit, outcome = entry[1], entry[2], entry[3]
                measured = fx[:, qubit] ^ outcome
                if pm > 0.0:
                    measured = measured ^ (rng.random(shots) < pm)
                bits[:, bit] = measured
                # The collapse pins the post-measurement state up to the X
                # frame; any Z frame on the measured qubit is absorbed.
                fz[:, qubit] = 0
            elif kind == "reset":
                qubit = entry[1]
                if pr > 0.0:
                    fx[:, qubit] = rng.random(shots) < pr
                else:
                    fx[:, qubit] = 0
                fz[:, qubit] = 0
        return FrameSample(bits=bits, final_x=fx, final_z=fz)


def _apply_frame_gate(fx: np.ndarray, fz: np.ndarray, name: str, qubits: tuple[int, ...]) -> None:
    """Conjugate the frame bit-planes by one Clifford gate (phases dropped).

    Pauli gates commute with the frame up to phase, so ``x``/``y``/``z`` are
    no-ops here (they still exist in the schedule so the tableau reference
    and the frame walker read the same circuit).
    """
    if name == "cnot":
        c, t = qubits
        fx[:, t] ^= fx[:, c]
        fz[:, c] ^= fz[:, t]
    elif name == "h":
        (q,) = qubits
        fx[:, q], fz[:, q] = fz[:, q].copy(), fx[:, q].copy()
    elif name in ("s", "sdag"):
        (q,) = qubits
        fz[:, q] ^= fx[:, q]
    elif name == "cz":
        a, b = qubits
        fz[:, a] ^= fx[:, b]
        fz[:, b] ^= fx[:, a]
    elif name == "swap":
        a, b = qubits
        fx[:, a], fx[:, b] = fx[:, b].copy(), fx[:, a].copy()
        fz[:, a], fz[:, b] = fz[:, b].copy(), fz[:, a].copy()
    # x, y, z: frame unchanged.
