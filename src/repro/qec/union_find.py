"""Almost-linear union-find decoder for the planar surface code.

:class:`UnionFindDecoder` is the weighted-growth union-find decoder of
Delfosse & Nickerson: space-time defects seed clusters on the decoding
graph, odd clusters grow their boundary edges in half-edge increments,
meeting clusters merge through a union-find forest, and growth stops once
every cluster has even defect parity or touches a code boundary.  Total
work is O(N alpha(N)) in the grown area — the property that keeps d >= 15
decoding CI-tractable where blossom matching
(:class:`~repro.qec.decoder.MatchingDecoder`, O(defects^3)) does not
survive at volume.  The blossom decoder is kept as the cross-check
fallback; agreement on correctable syndromes is property-tested in
``tests/test_qec_circuit_level.py``.

Decoding graph
--------------
Nodes are ``(round, ancilla)`` detector sites plus two virtual boundary
nodes (top and bottom — the boundaries X-chains terminate on).  Edges:

* **space**: plaquettes sharing a data qubit (weight 1 — one data flip);
* **time**: the same plaquette in consecutive rounds (weight
  ``time_weight`` — one measurement flip);
* **boundary**: a plaquette containing a data qubit covered by no other
  plaquette connects to that qubit's boundary side (weight 1).

Crossing-parity extraction without peeling
------------------------------------------
The decoders here return the *crossing parity* of the implied correction
(whether it flips the logical observable), not the correction chain itself.
For any pairing of a cluster's defects by paths inside the cluster, the
parity telescopes to a sum over chain endpoints: a chain crosses the
reference row iff its endpoints lie on opposite sides of it.  So per
cluster the parity is the XOR of each defect's side indicator, plus the
attached boundary's indicator when the defect count is odd — exactly what
the peeling stage of the full decoder would produce, at O(defects) cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.qec.surface_code import PlanarSurfaceCode

#: Virtual node ids of the two open boundaries.
TOP = -1
BOTTOM = -2


class _Cluster:
    """Mutable per-cluster growth state, stored on the union-find root."""

    __slots__ = ("parity", "indicator", "boundary", "frontier")

    def __init__(self) -> None:
        self.parity = 0  # defect count mod 2
        self.indicator = 0  # XOR of defect side indicators
        self.boundary: int | None = None  # side indicator of the attached boundary
        self.frontier: list[tuple[int, int, int]] = []  # (node, neighbor, weight)


class UnionFindDecoder:
    """Weighted-growth union-find decoder over the space-time defect graph.

    Shares the :class:`~repro.qec.decoder.MatchingDecoder` interface:
    ``decode(defects)`` takes ``(round, ancilla)`` pairs and returns the
    crossing parity of the implied correction.  Deterministic: growth
    sweeps iterate clusters and frontier edges in insertion order and no
    randomness is consumed.
    """

    def __init__(self, code: "PlanarSurfaceCode", time_weight: float = 1.0):
        if time_weight <= 0:
            raise ValueError("time_weight must be > 0")
        self.code = code
        self.time_weight = time_weight
        # Half-edge growth uses integer support: spatial/boundary edges span
        # 2 units, time edges 2 * time_weight (rounded, floor 1).
        self._space_units = 2
        self._time_units = max(1, round(2 * time_weight))
        self._build_graph()

    # ------------------------------------------------------------------ #
    def _build_graph(self) -> None:
        code = self.code
        distance = code.distance
        num_ancilla = code.num_ancilla
        rows = np.asarray([row for row, _ in code.plaquette_centres], dtype=float)
        #: Side indicator per ancilla: 1 when the plaquette sits above the
        #: reference data row (towards the top boundary).
        self._above = (rows < code.reference_row).astype(np.uint8)
        neighbors: list[set[int]] = [set() for _ in range(num_ancilla)]
        boundary_sides: list[set[int]] = [set() for _ in range(num_ancilla)]
        for qubit in range(code.num_data):
            plaquettes = np.nonzero(code.incidence[:, qubit])[0]
            if plaquettes.size == 2:
                a, b = int(plaquettes[0]), int(plaquettes[1])
                neighbors[a].add(b)
                neighbors[b].add(a)
            elif plaquettes.size == 1:
                # A data qubit covered by a single Z-plaquette terminates
                # chains on the boundary its row is closest to.
                side = 1 if 2 * (qubit // distance) < distance - 1 else 0
                boundary_sides[int(plaquettes[0])].add(side)
        self._neighbors = [tuple(sorted(adjacent)) for adjacent in neighbors]
        self._boundaries = [tuple(sorted(sides)) for sides in boundary_sides]

    def _node_edges(self, node: int, max_round: int) -> list[tuple[int, int, int]]:
        """Incident edges of a lattice node, as (node, neighbor, weight units)."""
        round_index, ancilla = divmod(node, self.code.num_ancilla)
        edges: list[tuple[int, int, int]] = []
        num_ancilla = self.code.num_ancilla
        if round_index > 0:
            edges.append((node, node - num_ancilla, self._time_units))
        if round_index < max_round:
            edges.append((node, node + num_ancilla, self._time_units))
        base = round_index * num_ancilla
        for other in self._neighbors[ancilla]:
            edges.append((node, base + other, self._space_units))
        for side in self._boundaries[ancilla]:
            edges.append((node, TOP if side else BOTTOM, self._space_units))
        return edges

    # ------------------------------------------------------------------ #
    def decode(self, defects: list[tuple[int, int]]) -> int:
        if not defects:
            return 0
        num_ancilla = self.code.num_ancilla
        for round_index, ancilla in defects:
            if not 0 <= ancilla < num_ancilla:
                raise ValueError(f"defect ancilla {ancilla} out of range [0, {num_ancilla})")
            if round_index < 0:
                raise ValueError(f"defect round {round_index} must be >= 0")
        max_round = max(round_index for round_index, _ in defects)

        parent: dict[int, int] = {}
        clusters: dict[int, _Cluster] = {}

        def find(node: int) -> int:
            root = node
            while parent[root] != root:
                root = parent[root]
            while parent[node] != root:  # path compression
                parent[node], node = root, parent[node]
            return root

        for round_index, ancilla in defects:
            node = round_index * num_ancilla + ancilla
            if node in parent:
                # Duplicate defect: two defects on one site annihilate.
                cluster = clusters[find(node)]
                cluster.parity ^= 1
                cluster.indicator ^= int(self._above[ancilla])
                continue
            parent[node] = node
            cluster = _Cluster()
            cluster.parity = 1
            cluster.indicator = int(self._above[ancilla])
            cluster.frontier = self._node_edges(node, max_round)
            clusters[node] = cluster

        support: dict[tuple[int, int], int] = {}
        roots = list(clusters)

        def active(root: int) -> bool:
            cluster = clusters[root]
            return cluster.parity == 1 and cluster.boundary is None

        while any(active(find(root)) for root in roots):
            grew = False
            full_edges: list[tuple[int, int]] = []
            for seed in roots:
                root = find(seed)
                if not active(root):
                    continue
                cluster = clusters[root]
                kept: list[tuple[int, int, int]] = []
                for node, neighbor, weight in cluster.frontier:
                    if neighbor >= 0 and neighbor in parent and find(neighbor) == root:
                        continue  # became internal after an earlier merge
                    key = (node, neighbor) if node < neighbor else (neighbor, node)
                    grown = support.get(key, 0) + 1
                    support[key] = grown
                    grew = True
                    if grown >= weight:
                        full_edges.append((node, neighbor))
                    else:
                        kept.append((node, neighbor, weight))
                cluster.frontier = kept
            for node, neighbor in full_edges:
                root = find(node)
                cluster = clusters[root]
                if neighbor in (TOP, BOTTOM):
                    if cluster.boundary is None:
                        cluster.boundary = 1 if neighbor == TOP else 0
                    continue
                if neighbor not in parent:
                    # Adopt a fresh lattice node (not a defect: parity keeps).
                    parent[neighbor] = root
                    cluster.frontier.extend(
                        edge
                        for edge in self._node_edges(neighbor, max_round)
                        if support.get(
                            (edge[0], edge[1]) if edge[0] < edge[1] else (edge[1], edge[0]), 0
                        )
                        < edge[2]
                    )
                    continue
                other = find(neighbor)
                if other == root:
                    continue
                # Union by frontier size: absorb the smaller growth front.
                if len(clusters[other].frontier) > len(cluster.frontier):
                    root, other = other, root
                    cluster = clusters[root]
                absorbed = clusters.pop(other)
                parent[other] = root
                cluster.parity ^= absorbed.parity
                cluster.indicator ^= absorbed.indicator
                if cluster.boundary is None:
                    cluster.boundary = absorbed.boundary
                cluster.frontier.extend(absorbed.frontier)
            if not grew:  # pragma: no cover - defensive guard
                raise RuntimeError("union-find growth stalled with odd clusters open")

        parity = 0
        for root, cluster in clusters.items():
            if find(root) != root:  # pragma: no cover - popped on merge
                continue
            contribution = cluster.indicator
            if cluster.parity:
                if cluster.boundary is None:  # pragma: no cover - defensive guard
                    raise RuntimeError("odd cluster finished growth without a boundary")
                contribution ^= cluster.boundary
            parity ^= contribution
        return parity
