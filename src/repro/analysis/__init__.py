"""Static analysis of the repro stack's correctness contracts.

Two independent levels:

* :mod:`repro.analysis.contracts` — an AST-walking lint engine over the
  *source tree* enforcing the project-specific determinism, keying and
  pickling contracts (rules ``REPRO001``–``REPRO008``), run by
  ``scripts/lint_contracts.py`` and the CI ``contracts`` job;
* :mod:`repro.analysis.circuit_check` — a def-use dataflow verifier over
  *circuits and lowered programs* (classical-bit use-before-write, dead
  measurements, qubit use after measurement, unreachable conditionals,
  register/arity bounds), wired into the OpenQL pass pipeline
  (:class:`~repro.openql.passes.verification_pass.VerificationPass`), the
  :class:`~repro.runtime.runner.ExperimentRunner` planner and the
  :class:`~repro.runtime.batch.BatchRunner` lowering step.

See ``docs/analysis.md`` for the rule catalogue and semantics.
"""

from repro.analysis.circuit_check import (
    CircuitContractError,
    CircuitContractWarning,
    Diagnostic,
    report,
    verify,
    verify_program,
)
from repro.analysis.contracts import (
    RULES,
    Violation,
    lint_file,
    lint_paths,
    lint_source,
    rule_catalogue,
)

__all__ = [
    "CircuitContractError",
    "CircuitContractWarning",
    "Diagnostic",
    "RULES",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "report",
    "rule_catalogue",
    "verify",
    "verify_program",
]
