"""Def-use dataflow verifier for circuits and lowered kernel programs.

A :class:`~repro.core.circuit.Circuit` compiles and runs even when its
classical dataflow is nonsense: a ``c-x`` conditioned on a bit no
measurement has written yet executes every shot against a bit that is
always 0, a measurement whose bit is immediately overwritten silently
contributes nothing, and a gate applied to a qubit after its terminal
measurement quietly operates on a collapsed state.  These are exactly the
defects that survive compilation, pass scheduling, and only show up as a
wrong histogram.

:func:`verify` walks the operation list once, tracking per-bit write/read
events and per-qubit measurement state, and returns structured
:class:`Diagnostic` records:

========= ========== =======================================================
QV001     error      conditional reads a classical bit before any
                     measurement has written it (use-before-write)
QV002     warning    conditional reads a bit that no operation in the
                     circuit ever writes (the branch can never fire)
QV003     warning    dead measurement: the bit is overwritten by a later
                     measurement with no intervening conditional read (the
                     first result is unobservable)
QV004     warning    qubit used by a gate after its measurement without an
                     intervening reset (the measure-then-``c-x`` active
                     reset idiom and re-measurement are both recognised)
QV005     error      register/arity bounds: qubit, bit or condition bit
                     outside the declared registers, or a kernel op whose
                     matrix shape disagrees with its operand count
========= ========== =======================================================

``strict=True`` raises :class:`CircuitContractError` on the first
error-severity diagnostic; the default is to return everything and let the
caller decide.  :func:`report` is the runtime-facing wrapper used by the
:class:`~repro.runtime.runner.ExperimentRunner` planner and
:class:`~repro.runtime.batch.BatchRunner` lowering: it warns (once, via
:class:`CircuitContractWarning`) on error-severity findings and raises only
in strict mode, so a questionable circuit still executes by default.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.core.circuit import Circuit
from repro.core.operations import (
    Barrier,
    ClassicalOperation,
    ConditionalGate,
    GateOperation,
    Measurement,
)
from repro.qx.compiled import COND_GATE, GATE, MEASURE, KernelProgram


class CircuitContractError(ValueError):
    """Raised in strict mode when a circuit violates a dataflow contract."""

    def __init__(self, diagnostics: list["Diagnostic"], where: str = "circuit"):
        self.diagnostics = diagnostics
        lines = "; ".join(diag.format() for diag in diagnostics)
        super().__init__(f"{where}: {lines}")


class CircuitContractWarning(UserWarning):
    """Warn-and-continue channel for non-strict verification."""


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding, anchored to an operation index."""

    code: str
    severity: str  # "error" | "warning"
    message: str
    op_index: int
    qubits: tuple[int, ...] = ()
    bits: tuple[int, ...] = ()

    def format(self) -> str:
        return f"{self.code} [{self.severity}] op {self.op_index}: {self.message}"


@dataclass
class _Event:
    """Flattened view of one operation, shared by both IRs."""

    index: int
    kind: str  # "gate" | "cond" | "measure" | "other"
    qubits: tuple[int, ...]
    name: str = ""
    bit: int | None = None
    condition_bit: int | None = None
    operand_error: str | None = None


def _events_from_circuit(circuit: Circuit) -> tuple[list[_Event], int, int]:
    events: list[_Event] = []
    for index, op in enumerate(circuit.operations):
        if isinstance(op, Measurement):
            events.append(_Event(index, "measure", op.qubits, name="measure", bit=op.bit))
        elif isinstance(op, ConditionalGate):
            events.append(
                _Event(
                    index,
                    "cond",
                    op.qubits,
                    name=op.gate.name,
                    condition_bit=op.condition_bit,
                )
            )
        elif isinstance(op, GateOperation):
            events.append(_Event(index, "gate", op.qubits, name=op.name))
        elif isinstance(op, (Barrier, ClassicalOperation)):
            events.append(_Event(index, "other", op.qubits, name=op.name))
        else:  # pragma: no cover - future operation kinds
            events.append(_Event(index, "other", op.qubits, name=op.name))
    return events, circuit.num_qubits, circuit.num_bits


def _events_from_program(program: KernelProgram) -> tuple[list[_Event], int, int]:
    events: list[_Event] = []
    for index, op in enumerate(program.ops):
        if op.kind == MEASURE:
            events.append(_Event(index, "measure", tuple(op.qubits), name="measure", bit=op.bit))
            continue
        kind = "cond" if op.kind == COND_GATE else "gate" if op.kind == GATE else "other"
        operand_error = None
        if op.matrix is not None and len(op.qubits) > 0:
            expected = 2 ** len(op.qubits)
            if op.matrix.shape != (expected, expected):
                operand_error = (
                    f"kernel op matrix shape {op.matrix.shape} does not match "
                    f"{len(op.qubits)} operand(s) (expected {expected}x{expected})"
                )
        events.append(
            _Event(
                index,
                kind,
                tuple(op.qubits),
                name="kernel",
                condition_bit=op.condition_bit if op.kind == COND_GATE else None,
                operand_error=operand_error,
            )
        )
    return events, program.num_qubits, program.num_bits


def _analyse(events: list[_Event], num_qubits: int, num_bits: int) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []

    # Pass 0: bounds and arity.  Out-of-range indices would make the
    # dataflow passes index nonsense, so they are collected first and the
    # offending events excluded from the def-use walk.
    malformed: set[int] = set()
    for event in events:
        problems: list[str] = []
        for qubit in event.qubits:
            if not 0 <= qubit < num_qubits:
                problems.append(f"qubit {qubit} outside register of size {num_qubits}")
        if len(set(event.qubits)) != len(event.qubits):
            problems.append(f"duplicate qubit operands {event.qubits}")
        if event.bit is not None and not 0 <= event.bit < num_bits:
            problems.append(
                f"measurement bit {event.bit} outside classical register of size {num_bits}"
            )
        if event.condition_bit is not None and not 0 <= event.condition_bit < num_bits:
            problems.append(
                f"condition bit {event.condition_bit} outside classical register "
                f"of size {num_bits}"
            )
        if event.operand_error is not None:
            problems.append(event.operand_error)
        for problem in problems:
            diagnostics.append(
                Diagnostic(
                    code="QV005",
                    severity="error",
                    message=problem,
                    op_index=event.index,
                    qubits=event.qubits,
                    bits=tuple(
                        b for b in (event.bit, event.condition_bit) if b is not None
                    ),
                )
            )
        if problems:
            malformed.add(event.index)

    valid = [event for event in events if event.index not in malformed]
    ever_written = {event.bit for event in valid if event.kind == "measure"}

    # Pass 1: forward def-use walk over classical bits and qubit
    # measurement state.
    written: set[int] = set()
    # bit -> (index of last unread measurement, measured qubit)
    pending_write: dict[int, tuple[int, int]] = {}
    # qubit -> index of the measurement that collapsed it (cleared by reset)
    measured_at: dict[int, int] = {}
    # (qubit, measurement index) pairs already reported for QV004
    reported_use_after_measure: set[tuple[int, int]] = set()

    for event in valid:
        if event.kind == "cond":
            bit = event.condition_bit
            if bit is not None:
                if bit not in written:
                    if bit in ever_written:
                        diagnostics.append(
                            Diagnostic(
                                code="QV001",
                                severity="error",
                                message=(
                                    f"conditional {event.name!r} reads bit {bit} before the "
                                    "measurement that writes it (use-before-write: the "
                                    "condition is always 0 here)"
                                ),
                                op_index=event.index,
                                qubits=event.qubits,
                                bits=(bit,),
                            )
                        )
                    else:
                        diagnostics.append(
                            Diagnostic(
                                code="QV002",
                                severity="warning",
                                message=(
                                    f"conditional {event.name!r} reads bit {bit}, which no "
                                    "operation ever writes (the branch can never fire)"
                                ),
                                op_index=event.index,
                                qubits=event.qubits,
                                bits=(bit,),
                            )
                        )
                pending_write.pop(bit, None)  # the write has been observed

            # The measure-then-c-x active reset idiom: a conditional X on
            # the qubit, keyed by that qubit's own fresh measurement,
            # returns the qubit to |0> and re-arms it for further use.
            if (
                event.name == "x"
                and len(event.qubits) == 1
                and event.qubits[0] in measured_at
                and bit is not None
                and bit in written
            ):
                qubit = event.qubits[0]
                measured_index = measured_at[qubit]
                source = next(
                    (
                        other
                        for other in valid
                        if other.index == measured_index and other.bit == bit
                    ),
                    None,
                )
                if source is not None:
                    measured_at.pop(qubit, None)
                    continue

            for qubit in event.qubits:
                if qubit in measured_at:
                    key = (qubit, measured_at[qubit])
                    if key not in reported_use_after_measure:
                        reported_use_after_measure.add(key)
                        diagnostics.append(
                            Diagnostic(
                                code="QV004",
                                severity="warning",
                                message=(
                                    f"qubit {qubit} used by conditional {event.name!r} after "
                                    f"its measurement at op {measured_at[qubit]} without a "
                                    "reset"
                                ),
                                op_index=event.index,
                                qubits=(qubit,),
                            )
                        )

        elif event.kind == "measure":
            bit = event.bit
            qubit = event.qubits[0]
            if bit is not None:
                if bit in pending_write:
                    stale_index, stale_qubit = pending_write[bit]
                    diagnostics.append(
                        Diagnostic(
                            code="QV003",
                            severity="warning",
                            message=(
                                f"dead measurement: bit {bit} written from qubit "
                                f"{stale_qubit} at op {stale_index} is overwritten here "
                                "with no intervening read (the first result is "
                                "unobservable)"
                            ),
                            op_index=event.index,
                            qubits=(stale_qubit,),
                            bits=(bit,),
                        )
                    )
                written.add(bit)
                pending_write[bit] = (event.index, qubit)
            # Re-measurement is a legitimate way to re-use a collapsed
            # qubit, so it refreshes rather than flags the state.
            measured_at[qubit] = event.index

        elif event.kind == "gate":
            for qubit in event.qubits:
                if qubit in measured_at:
                    key = (qubit, measured_at[qubit])
                    if key not in reported_use_after_measure:
                        reported_use_after_measure.add(key)
                        diagnostics.append(
                            Diagnostic(
                                code="QV004",
                                severity="warning",
                                message=(
                                    f"qubit {qubit} used by gate {event.name!r} after its "
                                    f"measurement at op {measured_at[qubit]} without a reset"
                                ),
                                op_index=event.index,
                                qubits=(qubit,),
                            )
                        )

    diagnostics.sort(key=lambda diag: (diag.op_index, diag.code))
    return diagnostics


def verify(circuit: Circuit, strict: bool = False) -> list[Diagnostic]:
    """Verify a circuit's classical/quantum dataflow; see the module docs."""
    events, num_qubits, num_bits = _events_from_circuit(circuit)
    diagnostics = _analyse(events, num_qubits, num_bits)
    if strict:
        errors = [diag for diag in diagnostics if diag.severity == "error"]
        if errors:
            raise CircuitContractError(errors, where=getattr(circuit, "name", "circuit"))
    return diagnostics


def verify_program(program: KernelProgram, strict: bool = False) -> list[Diagnostic]:
    """Verify a lowered :class:`KernelProgram` with the same pass set."""
    events, num_qubits, num_bits = _events_from_program(program)
    diagnostics = _analyse(events, num_qubits, num_bits)
    if strict:
        errors = [diag for diag in diagnostics if diag.severity == "error"]
        if errors:
            raise CircuitContractError(errors, where="kernel program")
    return diagnostics


def report(
    target: Circuit | KernelProgram, where: str = "circuit", strict: bool = False
) -> list[Diagnostic]:
    """Runtime-facing verification: warn on errors, raise only when strict.

    Only error-severity diagnostics are surfaced (runtime callers verify
    every planned circuit; warning-severity findings on legitimate circuits
    would be noise there).  Returns the full diagnostic list either way.
    """
    if isinstance(target, Circuit):
        diagnostics = verify(target)
    else:
        diagnostics = verify_program(target)
    errors = [diag for diag in diagnostics if diag.severity == "error"]
    if errors:
        if strict:
            raise CircuitContractError(errors, where=where)
        summary = "; ".join(diag.format() for diag in errors)
        warnings.warn(
            f"{where}: circuit contract violations: {summary}",
            CircuitContractWarning,
            stacklevel=2,
        )
    return diagnostics
