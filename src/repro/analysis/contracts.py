"""AST-level contract linter for the ``src/repro`` source tree.

The stack's strongest guarantees — bit-identical 1-vs-N sharding, the
one-draw-per-measurement randomness contract, single-module histogram
keying, pickle-safe worker tasks — are *conventions*: nothing in the
language stops a new engine from building its own rng, joining its own bit
keys or iterating a set into an ordered histogram.  This module turns those
conventions into machine-checked rules, each with an ID, a rationale and an
escape hatch::

    some_call()  # contract: ignore[REPRO004] ordering is irrelevant here

An ignore comment on a ``def``/``class`` line suppresses the rule for the
whole body.  The rules:

========== ==================================================================
REPRO001   rng provenance: no legacy ``np.random.*`` API and no internally
           constructed generators — an rng must be injectable by the caller
           (an ``rng`` parameter) or derivable from a ``SeedSequence``.
REPRO002   one-draw contract: no ``integers(2)``-style coin flips in engine
           code; binary outcomes must be ``random() < p`` so every
           measurement consumes exactly one uniform draw.
REPRO003   keying: histogram/bit keys are built only by ``repro.qx.keying``;
           no local ``"".join(str(...) ...)`` key builders in engine or
           runtime code.
REPRO004   sharding determinism: no direct set iteration in runtime modules;
           wrap in ``sorted(...)`` to make the order explicit.
REPRO005   pickle safety: worker task dataclasses must be module-level and
           must not carry lambda defaults or ``Callable`` fields.
REPRO006   worker purity: worker-executed modules must not mutate
           module-level state (per-process memo caches need an explicit
           ignore with a rationale).
REPRO007   rng isolation: engine ``copy()``/``clone()``/``spawn()`` paths
           must not share ``self.rng`` with the clone — spawn a child
           generator instead.
REPRO008   event-loop purity: service coroutines never call blocking runtime
           entry points (``run_shard``, ``run_batch``, ``compile_and_map``,
           runner ``run``/``plan``/``plan_point``) directly — dispatch them
           through an executor.
========== ==================================================================

``scripts/lint_contracts.py`` is the CLI; the CI ``contracts`` job runs it
over ``src/repro`` on every push.  See ``docs/analysis.md``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: ``np.random`` attributes that are part of the Generator-era API; every
#: other attribute (``np.random.random``, ``np.random.seed``, ``RandomState``,
#: ...) is the legacy global-state API the determinism contract bans.
_MODERN_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Method names whose call on a module-level name counts as a mutation.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "move_to_end",
        "extend",
        "insert",
        "clear",
        "remove",
        "discard",
    }
)

#: Method names that identify a copy/clone path for REPRO007.
_COPY_METHODS = frozenset({"copy", "clone", "fork", "spawn", "__copy__", "__deepcopy__"})

_IGNORE_PATTERN = re.compile(r"#\s*contract:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"


@dataclass
class ModuleContext:
    """Shared per-file facts every rule reads.

    * ``enclosing`` maps each node to its innermost enclosing function (or
      ``None`` at module level);
    * ``parents`` maps each node to its direct AST parent;
    * ``module_mutables`` are names bound by assignment at module scope
      (imports excluded — mutating an imported module is out of scope);
    * ``ignores`` maps line number -> set of suppressed rule IDs, and
      ``ignore_spans`` carries ``(start, end, rules)`` ranges from ignore
      comments placed on ``def``/``class`` lines.
    """

    path: str
    tree: ast.Module
    enclosing: dict[int, ast.FunctionDef | ast.AsyncFunctionDef | None] = field(
        default_factory=dict
    )
    parents: dict[int, ast.AST] = field(default_factory=dict)
    module_mutables: set[str] = field(default_factory=set)
    ignores: dict[int, set[str]] = field(default_factory=dict)
    ignore_spans: list[tuple[int, int, set[str]]] = field(default_factory=list)

    @classmethod
    def build(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        context = cls(path=path, tree=tree)
        context._index(tree, None)
        for statement in tree.body:
            targets: list[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = statement.targets
            elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
                targets = [statement.target]
            for target in targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        context.module_mutables.add(node.id)
        context._collect_ignores(source)
        return context

    def _index(self, node: ast.AST, function) -> None:
        for child in ast.iter_child_nodes(node):
            self.parents[id(child)] = node
            child_function = function
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_function = child
            self.enclosing[id(child)] = function
            self._index(child, child_function)

    def _collect_ignores(self, source: str) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (token.start[0], token.string)
                for token in tokens
                if token.type == tokenize.COMMENT
            ]
        except tokenize.TokenError:  # pragma: no cover - ast.parse already succeeded
            comments = []
        for line, text in comments:
            match = _IGNORE_PATTERN.search(text)
            if match is None:
                continue
            rules = {rule.strip() for rule in match.group(1).split(",") if rule.strip()}
            self.ignores.setdefault(line, set()).update(rules)
        # An ignore on a def/class line covers the whole body.
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                for line in range(node.lineno, node.body[0].lineno):
                    rules = self.ignores.get(line)
                    if rules:
                        self.ignore_spans.append((node.lineno, node.end_lineno or node.lineno, rules))

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.ignores.get(line, set()):
            return True
        return any(start <= line <= end and rule in rules for start, end, rules in self.ignore_spans)

    # ------------------------------------------------------------------ #
    def function_of(self, node: ast.AST):
        return self.enclosing.get(id(node))

    def parent_of(self, node: ast.AST):
        return self.parents.get(id(node))

    def parameters_of(self, function) -> list[ast.arg]:
        if function is None:
            return []
        args = function.args
        return [*args.posonlyargs, *args.args, *args.kwonlyargs]


class Rule:
    """Base class: one checkable contract with an ID and documentation."""

    rule_id = "REPRO000"
    title = ""
    rationale = ""
    scope = "src/repro"

    def applies_to(self, path: Path) -> bool:
        return True

    def check(self, context: ModuleContext) -> list[Violation]:
        raise NotImplementedError

    def violation(self, context: ModuleContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=self.rule_id,
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            message=message,
        )


def _parts(path: Path) -> tuple[str, ...]:
    return tuple(part for part in path.parts if part not in (".", ".."))


def _is_np_random(node: ast.expr) -> bool:
    """True for ``np.random`` / ``numpy.random`` attribute chains."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


class RngProvenanceRule(Rule):
    """REPRO001 — rng must flow from the caller or a ``SeedSequence``."""

    rule_id = "REPRO001"
    title = "rng provenance"
    rationale = (
        "Sharded execution is bit-identical for 1 vs N workers only when every random "
        "stream is a pure function of (root seed, point, shard).  Legacy np.random.* "
        "global state, entropy-seeded default_rng() and generators built internally "
        "from raw seeds all break that provenance chain."
    )
    scope = "all of src/repro"

    def check(self, context: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute) and _is_np_random(node.value):
                if node.attr not in _MODERN_NP_RANDOM:
                    violations.append(
                        self.violation(
                            context,
                            node,
                            f"legacy numpy.random.{node.attr} API; use an injected "
                            "numpy.random.Generator",
                        )
                    )
                elif node.attr == "default_rng":
                    call = context.parent_of(node)
                    if isinstance(call, ast.Call) and call.func is node:
                        violations.extend(self._check_default_rng(context, call))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id == "default_rng":
                    violations.extend(self._check_default_rng(context, node))
        return violations

    def _check_default_rng(self, context: ModuleContext, call: ast.Call) -> list[Violation]:
        function = context.function_of(call)
        parameters = context.parameters_of(function)
        has_rng_parameter = any(parameter.arg == "rng" for parameter in parameters)
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        if not arguments or (
            len(arguments) == 1
            and isinstance(arguments[0], ast.Constant)
            and arguments[0].value is None
        ):
            if has_rng_parameter:
                # The bare construction is the documented None-fallback of an
                # injected generator: callers who care pass rng=.
                return []
            return [
                self.violation(
                    context,
                    call,
                    "entropy-seeded default_rng() without an injectable rng parameter; "
                    "accept rng= from the caller",
                )
            ]
        if has_rng_parameter or len(arguments) != 1:
            return []
        argument = arguments[0]
        if isinstance(argument, ast.Constant) and isinstance(argument.value, int):
            return [
                self.violation(
                    context,
                    call,
                    f"default_rng({argument.value}) hides a fixed seed inside library code; "
                    "accept rng= or a SeedSequence from the caller",
                )
            ]
        if isinstance(argument, ast.Name):
            for parameter in parameters:
                if parameter.arg != argument.id:
                    continue
                annotation = ast.unparse(parameter.annotation) if parameter.annotation else ""
                if "SeedSequence" in annotation:
                    return []
                return [
                    self.violation(
                        context,
                        call,
                        f"generator built internally from raw seed {argument.id!r}; accept an "
                        "injected rng= parameter or widen the parameter to accept a "
                        "SeedSequence",
                    )
                ]
        # Derived expressions (e.g. default_rng(shard_seed(...))) carry their
        # provenance in the expression itself; give them the benefit of the
        # doubt.
        return []


class CoinFlipRule(Rule):
    """REPRO002 — engines draw outcomes as ``random() < p``, never ``integers(2)``."""

    rule_id = "REPRO002"
    title = "one-draw measurement contract"
    rationale = (
        "Seeded trajectories are bit-identical across engines only because every "
        "measurement consumes exactly one uniform draw compared against a probability. "
        "integers(2)-style draws consume a differently shaped stream and break "
        "cross-engine equivalence."
    )
    scope = "src/repro/qx, src/repro/qec"

    def applies_to(self, path: Path) -> bool:
        parts = _parts(path)
        return "qx" in parts or "qec" in parts

    def check(self, context: ModuleContext) -> list[Violation]:
        violations = []
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr != "integers":
                continue
            if self._is_binary_draw(node):
                violations.append(
                    self.violation(
                        context,
                        node,
                        "integers(2)-style coin flip in engine code; draw once with "
                        "rng.random() < p (the one-draw measurement contract)",
                    )
                )
        return violations

    @staticmethod
    def _is_binary_draw(call: ast.Call) -> bool:
        def is_const(node: ast.expr | None, value: int) -> bool:
            return isinstance(node, ast.Constant) and node.value == value

        positional = call.args
        keywords = {kw.arg: kw.value for kw in call.keywords}
        high = keywords.get("high")
        if len(positional) >= 1 and is_const(positional[0], 2) and len(positional) == 1:
            return "high" not in keywords
        if len(positional) >= 2 and is_const(positional[0], 0) and is_const(positional[1], 2):
            return True
        low = keywords.get("low", positional[0] if positional else None)
        if is_const(high, 2):
            return low is None or is_const(low, 0)
        return False


class KeyingRule(Rule):
    """REPRO003 — histogram keys come from ``repro.qx.keying`` only."""

    rule_id = "REPRO003"
    title = "single keying module"
    rationale = (
        "All engines must key histograms identically (classical bit order, lowest bit "
        "rightmost, last write wins).  A local ''.join(str(...)) key builder is how the "
        "pre-PR5 engines drifted apart."
    )
    scope = "src/repro/qx, src/repro/runtime, src/repro/qec (keying.py itself exempt)"

    def applies_to(self, path: Path) -> bool:
        parts = _parts(path)
        if path.name == "keying.py":
            return False
        return bool({"qx", "runtime", "qec"} & set(parts))

    def check(self, context: ModuleContext) -> list[Violation]:
        violations = []
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr != "join":
                continue
            if not (
                isinstance(node.func.value, ast.Constant) and node.func.value.value == ""
            ):
                continue
            if len(node.args) != 1:
                continue
            argument = node.args[0]
            if isinstance(argument, (ast.GeneratorExp, ast.ListComp)):
                element = argument.elt
                is_str_call = (
                    isinstance(element, ast.Call)
                    and isinstance(element.func, ast.Name)
                    and element.func.id == "str"
                )
                if is_str_call or isinstance(element, ast.JoinedStr):
                    violations.append(
                        self.violation(
                            context,
                            node,
                            "local ''.join(str(...)) bit-key builder; use repro.qx.keying "
                            "(bits_histogram / key_for_bit_values) so every engine keys "
                            "identically",
                        )
                    )
        return violations


class SetIterationRule(Rule):
    """REPRO004 — runtime hot paths never iterate sets directly."""

    rule_id = "REPRO004"
    title = "deterministic iteration order"
    rationale = (
        "Shard lists, task orders and merged outputs must not depend on set iteration "
        "order (hash-randomised across processes for str keys).  Wrap in sorted(...) to "
        "make the order explicit."
    )
    scope = "src/repro/runtime"

    def applies_to(self, path: Path) -> bool:
        return "runtime" in _parts(path)

    def check(self, context: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        set_names = self._set_bound_names(context)
        iterators: list[ast.expr] = []
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterators.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterators.extend(generator.iter for generator in node.generators)
        for iterator in iterators:
            if self._is_set_expression(iterator, set_names):
                violations.append(
                    self.violation(
                        context,
                        iterator,
                        "direct set iteration in a runtime module; iteration order is not "
                        "deterministic across processes — wrap in sorted(...)",
                    )
                )
        return violations

    @staticmethod
    def _set_bound_names(context: ModuleContext) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Assign) and SetIterationRule._is_set_literal(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if SetIterationRule._is_set_literal(node.value) and isinstance(
                    node.target, ast.Name
                ):
                    names.add(node.target.id)
        return names

    @staticmethod
    def _is_set_literal(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    @staticmethod
    def _is_set_expression(node: ast.expr, set_names: set[str]) -> bool:
        if SetIterationRule._is_set_literal(node):
            return True
        return isinstance(node, ast.Name) and node.id in set_names


class TaskPickleRule(Rule):
    """REPRO005 — worker task dataclasses stay picklable."""

    rule_id = "REPRO005"
    title = "pickle-safe worker tasks"
    rationale = (
        "Task/Chunk/Entry dataclasses cross the process-pool boundary.  Lambdas, "
        "Callable fields and locally defined classes raise PicklingError only at run "
        "time, in a worker, under load."
    )
    scope = "src/repro/runtime (dataclasses named *Task / *Chunk / *Entry)"

    def applies_to(self, path: Path) -> bool:
        return "runtime" in _parts(path)

    def check(self, context: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith(("Task", "Chunk", "Entry")):
                continue
            if not self._is_dataclass(node):
                continue
            if context.function_of(node) is not None:
                violations.append(
                    self.violation(
                        context,
                        node,
                        f"task dataclass {node.name!r} defined inside a function; local "
                        "classes cannot be pickled across the pool boundary",
                    )
                )
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                annotation = ast.unparse(statement.annotation)
                if "Callable" in annotation or "lambda" in annotation:
                    violations.append(
                        self.violation(
                            context,
                            statement,
                            f"task dataclass {node.name!r} declares a callable field "
                            f"({annotation}); function references are not reliably "
                            "picklable",
                        )
                    )
                if isinstance(statement.value, ast.Lambda):
                    violations.append(
                        self.violation(
                            context,
                            statement,
                            f"task dataclass {node.name!r} stores a lambda default; the "
                            "instance cannot be pickled",
                        )
                    )
        return violations

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
            if name == "dataclass":
                return True
        return False


class WorkerStateRule(Rule):
    """REPRO006 — worker-executed modules do not mutate module state."""

    rule_id = "REPRO006"
    title = "worker purity"
    rationale = (
        "Functions executed inside pool workers must be pure functions of their task: "
        "module-level mutations diverge between the inline and pooled paths and between "
        "worker counts.  Deliberate per-process memo caches need an explicit ignore "
        "with a rationale."
    )
    scope = "src/repro/runtime/worker.py, src/repro/runtime/batch.py"

    def applies_to(self, path: Path) -> bool:
        return "runtime" in _parts(path) and path.name in ("worker.py", "batch.py")

    def check(self, context: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        module_names = context.module_mutables
        for node in ast.walk(context.tree):
            if context.function_of(node) is None:
                continue  # module-level initialisation is fine
            if isinstance(node, ast.Global):
                for name in node.names:
                    violations.append(
                        self.violation(
                            context,
                            node,
                            f"global statement rebinding module-level {name!r} inside a "
                            "worker-executed module",
                        )
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    root = self._subscript_root(target)
                    if root is not None and root in module_names:
                        violations.append(
                            self.violation(
                                context,
                                node,
                                f"mutation of module-level {root!r} inside a worker-executed "
                                "function",
                            )
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATOR_METHODS and isinstance(node.func.value, ast.Name):
                    name = node.func.value.id
                    if name in module_names:
                        violations.append(
                            self.violation(
                                context,
                                node,
                                f"{name}.{node.func.attr}(...) mutates module-level state "
                                "inside a worker-executed function",
                            )
                        )
        return violations

    @staticmethod
    def _subscript_root(node: ast.expr) -> str | None:
        """Name at the base of a subscript/attribute store target, if any."""
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return None


class RngSharingRule(Rule):
    """REPRO007 — engine copy paths never share ``self.rng``."""

    rule_id = "REPRO007"
    title = "rng isolation on copy"
    rationale = (
        "A clone sharing its parent's Generator lets probe measurements on the copy "
        "perturb the parent's stream (the PR 3 StabilizerState.copy bug).  Clones must "
        "derive an independent child via self.rng.spawn(...)."
    )
    scope = "src/repro/qx, src/repro/qec (methods named copy/clone/fork/spawn)"

    def applies_to(self, path: Path) -> bool:
        parts = _parts(path)
        return "qx" in parts or "qec" in parts

    def check(self, context: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in _COPY_METHODS:
                continue
            for sub in ast.walk(node):
                if not (
                    isinstance(sub, ast.Attribute)
                    and sub.attr == "rng"
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                    and isinstance(sub.ctx, ast.Load)
                ):
                    continue
                parent = context.parent_of(sub)
                if isinstance(parent, ast.Attribute) and parent.value is sub:
                    continue  # self.rng.spawn(...) / self.rng.random() etc.
                violations.append(
                    self.violation(
                        context,
                        sub,
                        f"{node.name}() shares self.rng with the clone; spawn an "
                        "independent child generator (self.rng.spawn(1)[0])",
                    )
                )
        return violations


#: Module-level functions that execute shards/batches synchronously.
_BLOCKING_RUNTIME_FUNCTIONS = frozenset({"run_shard", "run_batch", "compile_and_map"})

#: Blocking methods when called on a runner/planner object.
_BLOCKING_RUNNER_METHODS = frozenset({"run", "plan", "plan_point"})

#: Receiver-name fragments identifying a runner/planner instance.
_RUNNER_NAME_HINTS = ("runner", "planner")


class EventLoopBlockingRule(Rule):
    """REPRO008 — service coroutines dispatch runtime work via executors."""

    rule_id = "REPRO008"
    title = "event-loop purity"
    rationale = (
        "The service daemon multiplexes every tenant on one event loop.  A coroutine "
        "that calls a blocking runtime entry point (shard execution, whole-spec runs, "
        "compile planning) inline stalls all connected clients for the duration — the "
        "bug is invisible under light load and catastrophic under real load.  Blocking "
        "work must go through loop.run_in_executor (the function is passed as a "
        "reference, never called on the loop)."
    )
    scope = "src/repro/service"

    def applies_to(self, path: Path) -> bool:
        return "service" in _parts(path)

    def check(self, context: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(context.function_of(node), ast.AsyncFunctionDef):
                continue
            blocked = self._blocking_name(node.func)
            if blocked is not None:
                violations.append(
                    self.violation(
                        context,
                        node,
                        f"coroutine calls blocking runtime entry point {blocked}() on the "
                        "event loop; dispatch it through loop.run_in_executor instead",
                    )
                )
        return violations

    @staticmethod
    def _blocking_name(func: ast.expr) -> str | None:
        if isinstance(func, ast.Name) and func.id in _BLOCKING_RUNTIME_FUNCTIONS:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _BLOCKING_RUNNER_METHODS
            and isinstance(func.value, ast.Name)
            and any(hint in func.value.id.lower() for hint in _RUNNER_NAME_HINTS)
        ):
            return f"{func.value.id}.{func.attr}"
        return None


#: The rule registry, in catalogue order.
RULES: list[Rule] = [
    RngProvenanceRule(),
    CoinFlipRule(),
    KeyingRule(),
    SetIterationRule(),
    TaskPickleRule(),
    WorkerStateRule(),
    RngSharingRule(),
    EventLoopBlockingRule(),
]


def rule_catalogue() -> list[dict]:
    """Machine-readable rule list (ID, title, rationale, scope) for docs/CLI."""
    return [
        {
            "id": rule.rule_id,
            "title": rule.title,
            "rationale": rule.rationale,
            "scope": rule.scope,
        }
        for rule in RULES
    ]


def lint_source(
    source: str, path: str | Path = "<memory>", rules: list[Rule] | None = None
) -> list[Violation]:
    """Lint one source string as if it lived at ``path`` (scoping applies)."""
    path = Path(path)
    context = ModuleContext.build(str(path), source)
    violations: list[Violation] = []
    for rule in rules if rules is not None else RULES:
        if not rule.applies_to(path):
            continue
        for violation in rule.check(context):
            if not context.suppressed(violation.rule, violation.line):
                violations.append(violation)
    return sorted(violations, key=lambda v: (v.path, v.line, v.column, v.rule))


def lint_file(path: str | Path, rules: list[Rule] | None = None) -> list[Violation]:
    path = Path(path)
    return lint_source(path.read_text(), path, rules=rules)


def lint_paths(
    paths: list[str | Path], rules: list[Rule] | None = None
) -> tuple[list[Violation], int]:
    """Lint files and directory trees; returns ``(violations, files checked)``."""
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    violations: list[Violation] = []
    for file in files:
        violations.extend(lint_file(file, rules=rules))
    return violations, len(files)
