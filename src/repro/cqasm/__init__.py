"""Common quantum assembly (cQASM) dialect.

cQASM is the paper's common assembly language: the OpenQL compiler emits it,
the QX simulator executes it, and the eQASM backend lowers it further for a
specific device.  This subpackage provides the abstract syntax tree
(:mod:`repro.cqasm.ast`), a writer that serialises circuits to cQASM text
(:mod:`repro.cqasm.writer`) and a parser that loads cQASM text back into
circuits (:mod:`repro.cqasm.parser`), giving a full round-trip.
"""

from repro.cqasm.ast import CqasmProgram, CqasmInstruction, CqasmSubcircuit
from repro.cqasm.writer import circuit_to_cqasm, program_to_cqasm
from repro.cqasm.parser import parse_cqasm, cqasm_to_circuit, CqasmSyntaxError

__all__ = [
    "CqasmProgram",
    "CqasmInstruction",
    "CqasmSubcircuit",
    "circuit_to_cqasm",
    "program_to_cqasm",
    "parse_cqasm",
    "cqasm_to_circuit",
    "CqasmSyntaxError",
]
