"""Serialise circuits to cQASM text."""

from __future__ import annotations

from repro.core.circuit import Circuit
from repro.core.operations import (
    Barrier,
    ClassicalOperation,
    ConditionalGate,
    GateOperation,
    Measurement,
)
from repro.cqasm.ast import CqasmInstruction, CqasmProgram

#: Circuit gate mnemonics that need renaming for cQASM output.
_CQASM_NAMES = {
    "cr": "cr",
    "crk": "crk",
    "toffoli": "toffoli",
    "sdag": "sdag",
    "tdag": "tdag",
}


def operation_to_instruction(op) -> CqasmInstruction:
    """Translate one circuit operation to a cQASM instruction."""
    if isinstance(op, ConditionalGate):
        params = tuple(float(p) for p in op.gate.params)
        return CqasmInstruction(
            mnemonic=f"c-{op.gate.name}",
            qubits=op.qubits,
            bits=(op.condition_bit,),
            params=params,
        )
    if isinstance(op, GateOperation):
        mnemonic = _CQASM_NAMES.get(op.name, op.name)
        params = tuple(float(p) for p in op.params)
        # crk stores its integer k as a parameter.
        return CqasmInstruction(mnemonic=mnemonic, qubits=op.qubits, params=params)
    if isinstance(op, Measurement):
        # Cross-mapped measurements (bit != qubit, e.g. after routing) keep
        # their classical destination as an explicit bit operand; the default
        # bit == qubit mapping stays implicit for readable output.
        bits = (op.bit,) if op.bit != op.qubit else ()
        return CqasmInstruction(mnemonic="measure", qubits=(op.qubit,), bits=bits)
    if isinstance(op, Barrier):
        return CqasmInstruction(mnemonic="barrier", qubits=op.qubits)
    if isinstance(op, ClassicalOperation):
        return CqasmInstruction(mnemonic=op.opcode, qubits=op.qubits, params=op.operands)
    raise TypeError(f"cannot serialise operation of type {type(op).__name__}")


def circuit_to_cqasm(circuit: Circuit, iterations: int = 1) -> str:
    """Serialise a single circuit into a complete cQASM program."""
    program = circuit_to_program(circuit, iterations=iterations)
    return program.to_text()


def circuit_to_program(circuit: Circuit, iterations: int = 1) -> CqasmProgram:
    """Build the cQASM AST for one circuit."""
    program = CqasmProgram(num_qubits=circuit.num_qubits)
    sub = program.subcircuit(circuit.name or "main", iterations=iterations)
    for op in circuit.operations:
        sub.add(operation_to_instruction(op))
    return program


def program_to_cqasm(circuits: list[Circuit], num_qubits: int | None = None) -> str:
    """Serialise several kernels (circuits) into one cQASM program.

    This is the form the OpenQL compiler emits for multi-kernel programs:
    one sub-circuit per kernel, all sharing the same qubit register.
    """
    if not circuits:
        raise ValueError("need at least one circuit")
    register = num_qubits if num_qubits is not None else max(c.num_qubits for c in circuits)
    program = CqasmProgram(num_qubits=register)
    for index, circuit in enumerate(circuits):
        name = circuit.name or f"kernel_{index}"
        sub = program.subcircuit(name)
        for op in circuit.operations:
            sub.add(operation_to_instruction(op))
    return program.to_text()
