"""Abstract syntax tree for the cQASM dialect.

The dialect follows the structure of cQASM 1.0: a version line, a ``qubits
N`` declaration, and a list of sub-circuits (``.name(iterations)``) each
containing instructions.  Instructions carry a mnemonic, qubit operands,
optional classical bit operands and optional real-valued parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CqasmInstruction:
    """A single cQASM statement."""

    mnemonic: str
    qubits: tuple[int, ...] = ()
    bits: tuple[int, ...] = ()
    params: tuple[float, ...] = ()
    #: Parallel bundle id: instructions sharing a bundle execute simultaneously.
    bundle: int | None = None

    def to_line(self) -> str:
        """Serialise to a single cQASM source line (without indentation)."""
        parts: list[str] = []
        operands: list[str] = [f"q[{q}]" for q in self.qubits]
        operands.extend(f"b[{b}]" for b in self.bits)
        operands.extend(_format_number(p) for p in self.params)
        if operands:
            parts.append(f"{self.mnemonic} {', '.join(operands)}")
        else:
            parts.append(self.mnemonic)
        return "".join(parts)


@dataclass
class CqasmSubcircuit:
    """A named sub-circuit (kernel) with an optional iteration count."""

    name: str
    iterations: int = 1
    instructions: list[CqasmInstruction] = field(default_factory=list)

    def add(self, instruction: CqasmInstruction) -> None:
        self.instructions.append(instruction)


@dataclass
class CqasmProgram:
    """A full cQASM translation unit."""

    num_qubits: int
    version: str = "1.0"
    subcircuits: list[CqasmSubcircuit] = field(default_factory=list)

    def subcircuit(self, name: str, iterations: int = 1) -> CqasmSubcircuit:
        sub = CqasmSubcircuit(name=name, iterations=iterations)
        self.subcircuits.append(sub)
        return sub

    def all_instructions(self) -> list[CqasmInstruction]:
        instructions: list[CqasmInstruction] = []
        for sub in self.subcircuits:
            for _ in range(sub.iterations):
                instructions.extend(sub.instructions)
        return instructions

    def to_text(self) -> str:
        """Serialise the whole program to cQASM source text."""
        lines = [f"version {self.version}", "", f"qubits {self.num_qubits}", ""]
        for sub in self.subcircuits:
            if sub.iterations != 1:
                lines.append(f".{sub.name}({sub.iterations})")
            else:
                lines.append(f".{sub.name}")
            bundle: list[CqasmInstruction] = []
            current_bundle: int | None = None
            for instruction in sub.instructions:
                if instruction.bundle is not None and instruction.bundle == current_bundle:
                    bundle.append(instruction)
                    continue
                _flush_bundle(lines, bundle)
                bundle = [instruction]
                current_bundle = instruction.bundle
            _flush_bundle(lines, bundle)
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"


def _flush_bundle(lines: list[str], bundle: list[CqasmInstruction]) -> None:
    if not bundle:
        return
    if len(bundle) == 1 or bundle[0].bundle is None:
        lines.extend(f"    {instr.to_line()}" for instr in bundle)
    else:
        joined = " | ".join(instr.to_line() for instr in bundle)
        lines.append(f"    {{ {joined} }}")


def _format_number(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e9:
        return str(int(value))
    # Shortest round-trip representation: a parsed parameter must rebuild the
    # exact same float64, so write -> parse -> lower is bit-identical to
    # lowering the original circuit (the batch runtime relies on this).
    return repr(float(value))
