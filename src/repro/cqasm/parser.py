"""Parser for the cQASM dialect.

Parses the text produced by :mod:`repro.cqasm.writer` (and hand-written
cQASM in the same dialect) back into the AST and into executable
:class:`~repro.core.circuit.Circuit` objects, closing the loop between the
compiler output and the QX simulator input.
"""

from __future__ import annotations

import re

from repro.core.circuit import Circuit
from repro.cqasm.ast import CqasmInstruction, CqasmProgram, CqasmSubcircuit


class CqasmSyntaxError(ValueError):
    """Raised when cQASM source text cannot be parsed."""

    def __init__(self, message: str, line_number: int | None = None):
        prefix = f"line {line_number}: " if line_number is not None else ""
        super().__init__(prefix + message)
        self.line_number = line_number


_VERSION_RE = re.compile(r"^version\s+(\d+(?:\.\d+)?)$")
_QUBITS_RE = re.compile(r"^qubits\s+(\d+)$")
_SUBCIRCUIT_RE = re.compile(r"^\.([A-Za-z_][\w]*)(?:\((\d+)\))?$")
_QUBIT_OPERAND_RE = re.compile(r"^q\[(\d+)(?::(\d+))?\]$")
_BIT_OPERAND_RE = re.compile(r"^b\[(\d+)(?::(\d+))?\]$")
_NUMBER_RE = re.compile(r"^[-+]?(\d+\.?\d*|\.\d+)([eE][-+]?\d+)?$")

#: Gates that consume one trailing numeric parameter.
_PARAMETRIC_GATES = {"rx", "ry", "rz", "cr", "phase"}

#: Classical bits live in their own (implicit) register that may exceed the
#: qubit count — cross-mapped measurements after routing do exactly that —
#: but the simulator allocates the register densely, so typo-sized indices
#: are rejected rather than turned into multi-terabyte allocations.
_MAX_CLASSICAL_BITS = 4096


def parse_cqasm(text: str) -> CqasmProgram:
    """Parse cQASM source text into a :class:`CqasmProgram`."""
    program: CqasmProgram | None = None
    version = "1.0"
    current: CqasmSubcircuit | None = None
    pending: list[tuple[int, str]] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        match = _VERSION_RE.match(line)
        if match:
            version = match.group(1)
            continue
        match = _QUBITS_RE.match(line)
        if match:
            if program is not None:
                raise CqasmSyntaxError("duplicate qubits declaration", line_number)
            program = CqasmProgram(num_qubits=int(match.group(1)), version=version)
            continue
        if program is None:
            raise CqasmSyntaxError("statement before qubits declaration", line_number)
        match = _SUBCIRCUIT_RE.match(line)
        if match:
            iterations = int(match.group(2)) if match.group(2) else 1
            current = program.subcircuit(match.group(1), iterations=iterations)
            continue
        if current is None:
            current = program.subcircuit("default")
        pending.append((line_number, line))
        for number, statement in _expand_bundles(pending.pop(), line_number):
            for instruction in _parse_statement(statement, number, program.num_qubits):
                current.add(instruction)

    if program is None:
        raise CqasmSyntaxError("missing qubits declaration")
    return program


def _expand_bundles(entry: tuple[int, str], line_number: int):
    """Split ``{ a | b | c }`` parallel bundles into individual statements."""
    number, line = entry
    if line.startswith("{") and line.endswith("}"):
        inner = line[1:-1].strip()
        for part in inner.split("|"):
            part = part.strip()
            if part:
                yield number, part
    else:
        yield number, line


def _parse_statement(line: str, line_number: int, num_qubits: int) -> list[CqasmInstruction]:
    tokens = line.split(None, 1)
    mnemonic = tokens[0].lower()
    operand_text = tokens[1] if len(tokens) > 1 else ""
    qubits: list[int] = []
    bits: list[int] = []
    params: list[float] = []
    if operand_text:
        for operand in (part.strip() for part in operand_text.split(",")):
            if not operand:
                raise CqasmSyntaxError("empty operand", line_number)
            match = _QUBIT_OPERAND_RE.match(operand)
            if match:
                qubits.extend(_expand_range(match, num_qubits, line_number))
                continue
            match = _BIT_OPERAND_RE.match(operand)
            if match:
                expanded = _expand_range(match, None, line_number)
                if expanded and max(expanded) >= _MAX_CLASSICAL_BITS:
                    raise CqasmSyntaxError(
                        f"classical bit index {max(expanded)} exceeds the supported "
                        f"register size {_MAX_CLASSICAL_BITS}",
                        line_number,
                    )
                bits.extend(expanded)
                continue
            if _NUMBER_RE.match(operand):
                params.append(float(operand))
                continue
            if operand.lower() == "pi":
                params.append(3.141592653589793)
                continue
            raise CqasmSyntaxError(f"cannot parse operand {operand!r}", line_number)

    # Broadcast single-qubit mnemonics over a qubit range: "x q[0:3]" means
    # x on each of q0..q3.  Conditional gates broadcast by their *base*
    # mnemonic, so "c-cnot q[0], q[1], b[2]" stays one two-qubit operation.
    base = mnemonic[2:] if mnemonic.startswith("c-") else mnemonic
    if mnemonic in ("measure", "prep_z", "prep_x", "prep_y") or (
        len(qubits) > 1 and base not in _TWO_QUBIT_MNEMONICS and mnemonic != "barrier"
    ):
        if len(qubits) > 1:
            return [
                CqasmInstruction(mnemonic=mnemonic, qubits=(q,), bits=tuple(bits), params=tuple(params))
                for q in qubits
            ]
    return [
        CqasmInstruction(
            mnemonic=mnemonic, qubits=tuple(qubits), bits=tuple(bits), params=tuple(params)
        )
    ]


_TWO_QUBIT_MNEMONICS = {"cnot", "cx", "cz", "swap", "cr", "crk", "toffoli"}


def _expand_range(match: re.Match, num_qubits: int | None, line_number: int) -> list[int]:
    start = int(match.group(1))
    end = int(match.group(2)) if match.group(2) is not None else start
    if end < start:
        raise CqasmSyntaxError("descending operand range", line_number)
    if num_qubits is not None and end >= num_qubits:
        raise CqasmSyntaxError(
            f"operand index {end} exceeds register size {num_qubits}", line_number
        )
    return list(range(start, end + 1))


_MNEMONIC_ALIASES = {
    "cx": "cnot",
    "toffoli": "toffoli",
    "x90": "x90",
    "y90": "y90",
    "mx90": "mx90",
    "my90": "my90",
    "prep_z": "prep_z",
}


def cqasm_to_circuit(text: str) -> Circuit:
    """Parse cQASM text and build a single flattened circuit.

    The classical register grows to cover every referenced bit index, so a
    program whose measurements target bits beyond the qubit count (e.g. a
    routed kernel with cross-mapped measurements) keeps a wide-enough
    ``num_bits``.
    """
    program = parse_cqasm(text)
    circuit = Circuit(program.num_qubits, name="cqasm")
    highest_bit = -1
    for instruction in program.all_instructions():
        _apply_instruction(circuit, instruction)
        if instruction.bits:
            highest_bit = max(highest_bit, max(instruction.bits))
    circuit.num_bits = max(circuit.num_bits, highest_bit + 1)
    return circuit


def _apply_instruction(circuit: Circuit, instruction: CqasmInstruction) -> None:
    mnemonic = _MNEMONIC_ALIASES.get(instruction.mnemonic, instruction.mnemonic)
    if mnemonic in ("display", "error_model", "nop", "skip", "wait", "qwait"):
        return
    if mnemonic.startswith("c-"):
        # Binary-controlled gate (cQASM 2.0 hybrid construct).
        base = _MNEMONIC_ALIASES.get(mnemonic[2:], mnemonic[2:])
        if not instruction.bits:
            raise CqasmSyntaxError(f"conditional gate {mnemonic!r} needs a bit operand")
        params = tuple(instruction.params) if base in _PARAMETRIC_GATES else ()
        circuit.conditional_gate(base, instruction.bits[0], *instruction.qubits, params=params)
        return
    if mnemonic == "prep_z":
        # Register starts in |0>; an explicit prep is a no-op for fresh circuits.
        return
    if mnemonic == "measure":
        bit = instruction.bits[0] if instruction.bits else None
        circuit.measure(instruction.qubits[0], bit)
        return
    if mnemonic == "measure_all":
        circuit.measure_all()
        return
    if mnemonic == "barrier":
        circuit.barrier(*instruction.qubits)
        return
    if mnemonic == "crk":
        circuit.crk(instruction.qubits[0], instruction.qubits[1], int(instruction.params[0]))
        return
    params = tuple(instruction.params) if mnemonic in _PARAMETRIC_GATES else ()
    circuit.add_gate(mnemonic, *instruction.qubits, params=params)
