"""Hybrid quantum-classical execution loop.

"This model of Hybrid Quantum-Classical (HQC) algorithms requires fast
feedback between the quantum accelerator and the real-time
circuit/instruction generator ... the expected probability of the solution
state can be calculated inside the quantum accelerator itself, aggregating
the measurements over multiple runs." (Section 3.2/3.3)

:class:`HybridExecutor` runs that loop explicitly: a parameterised circuit
generator, the accelerator executing bursts of shots, aggregation of the
measured expectation inside the accelerator, and a classical parameter
update on the host, iterated until convergence or an iteration budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.circuit import Circuit
from repro.qx.simulator import QXSimulator
from repro.qx.error_models import ErrorModel, NoError


@dataclass
class HybridResult:
    """Outcome of a hybrid variational optimisation."""

    best_value: float
    best_parameters: np.ndarray
    iterations: int
    total_shots: int
    quantum_executions: int
    history: list[float] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        if len(self.history) < 3:
            return False
        return abs(self.history[-1] - self.history[-3]) < 1e-4


class HybridExecutor:
    """Generic hybrid loop: circuit generator + expectation estimator + optimiser."""

    def __init__(
        self,
        circuit_generator: Callable[[np.ndarray], Circuit],
        expectation_from_counts: Callable[[dict[str, int]], float],
        num_parameters: int,
        shots_per_burst: int = 256,
        max_iterations: int = 50,
        learning_rate: float = 0.3,
        error_model: ErrorModel | None = None,
        seed: int | np.random.SeedSequence | None = None,
    ):
        self.circuit_generator = circuit_generator
        self.expectation_from_counts = expectation_from_counts
        self.num_parameters = num_parameters
        self.shots_per_burst = shots_per_burst
        self.max_iterations = max_iterations
        self.learning_rate = learning_rate
        self.error_model = error_model or NoError()
        self.rng = np.random.default_rng(seed)
        self._executions = 0
        self._shots = 0

    # ------------------------------------------------------------------ #
    def _evaluate(self, parameters: np.ndarray) -> float:
        """One burst: generate circuit, run shots, aggregate inside the accelerator."""
        circuit = self.circuit_generator(parameters)
        simulator = QXSimulator(
            error_model=self.error_model, seed=int(self.rng.integers(2 ** 31))
        )
        result = simulator.run(circuit, shots=self.shots_per_burst)
        self._executions += 1
        self._shots += self.shots_per_burst
        return self.expectation_from_counts(result.counts)

    def run(self, initial_parameters: np.ndarray | None = None) -> HybridResult:
        """SPSA-style optimisation: two bursts per iteration, fast feedback."""
        parameters = (
            np.asarray(initial_parameters, dtype=float)
            if initial_parameters is not None
            else self.rng.uniform(-np.pi / 4, np.pi / 4, size=self.num_parameters)
        )
        self._executions = 0
        self._shots = 0
        best_value = np.inf
        best_parameters = parameters.copy()
        history: list[float] = []

        for iteration in range(1, self.max_iterations + 1):
            perturbation = self.rng.choice([-1.0, 1.0], size=self.num_parameters)
            step = 0.2 / iteration ** 0.3
            value_plus = self._evaluate(parameters + step * perturbation)
            value_minus = self._evaluate(parameters - step * perturbation)
            gradient = (value_plus - value_minus) / (2.0 * step) * perturbation
            parameters = parameters - self.learning_rate / iteration ** 0.6 * gradient
            current = min(value_plus, value_minus)
            history.append(current)
            if current < best_value:
                best_value = current
                best_parameters = parameters.copy()

        return HybridResult(
            best_value=float(best_value),
            best_parameters=best_parameters,
            iterations=self.max_iterations,
            total_shots=self._shots,
            quantum_executions=self._executions,
            history=history,
        )
