"""The two quantum accelerator classes attached to the host.

Figure 8(b): the hybrid quantum accelerator has a classical logic part
(tracking progress, aggregating measurements, proposing next parameters) and
a quantum logic part (the gate-model QX pipeline or the annealer).  These
wrappers expose a uniform ``execute`` interface so the host can offload to
either class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.annealing.qubo import QUBO
from repro.annealing.simulated_annealing import AnnealResult, SimulatedAnnealer
from repro.annealing.quantum_annealer import SimulatedQuantumAnnealer
from repro.core.circuit import Circuit
from repro.microarch.executor import ExecutionTrace, QuantumAccelerator
from repro.openql.compiler import Compiler
from repro.openql.platform import Platform, perfect_platform
from repro.openql.program import Program


@dataclass
class GateModelAccelerator:
    """Gate-based quantum accelerator: OpenQL -> cQASM -> micro-architecture -> QX."""

    platform: Platform
    seed: int | None = None

    def __post_init__(self) -> None:
        self.compiler = Compiler()
        self.executor = QuantumAccelerator(self.platform, seed=self.seed)

    @classmethod
    def with_perfect_qubits(cls, num_qubits: int, seed: int | None = None) -> "GateModelAccelerator":
        return cls(platform=perfect_platform(num_qubits), seed=seed)

    def execute_program(self, program: Program, shots: int = 128) -> ExecutionTrace:
        """Compile and run a full OpenQL program."""
        compiled = self.compiler.compile(program)
        return self.executor.execute_circuit(compiled.flat_circuit(), shots=shots)

    def execute_circuit(self, circuit: Circuit, shots: int = 128) -> ExecutionTrace:
        """Run an already-compiled circuit through the micro-architecture."""
        compiled = self.compiler.compile_circuit(circuit, self.platform)
        return self.executor.execute_circuit(compiled, shots=shots)


@dataclass
class AnnealingAccelerator:
    """Annealing-based quantum accelerator (QUBO in, low-energy sample out)."""

    quantum: bool = True
    num_sweeps: int = 400
    num_reads: int = 10
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.quantum:
            self.solver = SimulatedQuantumAnnealer(
                num_sweeps=self.num_sweeps, num_reads=self.num_reads, seed=self.seed
            )
        else:
            self.solver = SimulatedAnnealer(
                num_sweeps=self.num_sweeps, num_reads=self.num_reads, seed=self.seed
            )

    def execute(self, qubo: QUBO) -> AnnealResult:
        return self.solver.solve_qubo(qubo)
