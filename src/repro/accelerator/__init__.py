"""Heterogeneous host + accelerator system model (Figures 1, 3 and 8).

The classical host CPU keeps control of the whole application and offloads
quantum kernels to the quantum accelerator(s), following Amdahl's law for
the overall speed-up.  The hybrid execution loop implements the fast
feedback between the quantum device and the classical optimiser required by
variational (HQC) algorithms.
"""

from repro.accelerator.host import HostCPU, ApplicationProfile, OffloadReport
from repro.accelerator.quantum_device import GateModelAccelerator, AnnealingAccelerator
from repro.accelerator.hybrid import HybridExecutor, HybridResult

__all__ = [
    "HostCPU",
    "ApplicationProfile",
    "OffloadReport",
    "GateModelAccelerator",
    "AnnealingAccelerator",
    "HybridExecutor",
    "HybridResult",
]
