"""Classical host CPU and the accelerator offload model.

"The formal definition of an accelerator is indeed a co-processor linked to
the central processor that is capable of accelerating the execution of
specific computational intensive kernels, as to speed up the overall
execution according to Amdahl's law." (Section 1)

:class:`HostCPU` keeps a registry of attached accelerators (GPU/FPGA-style
classical ones and the two quantum classes), profiles an application into
kernels, decides which kernel goes where, and reports the end-to-end
Amdahl speed-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class KernelProfile:
    """One computational kernel of an end-user application."""

    name: str
    fraction_of_runtime: float
    kind: str = "classical"  # classical | search | optimisation | simulation
    accelerator_speedup: float = 1.0


@dataclass
class ApplicationProfile:
    """An application decomposed into kernels with runtime fractions."""

    name: str
    kernels: list[KernelProfile] = field(default_factory=list)

    def add_kernel(
        self,
        name: str,
        fraction_of_runtime: float,
        kind: str = "classical",
        accelerator_speedup: float = 1.0,
    ) -> None:
        self.kernels.append(
            KernelProfile(name, fraction_of_runtime, kind, accelerator_speedup)
        )

    def validate(self) -> None:
        total = sum(k.fraction_of_runtime for k in self.kernels)
        if not 0.99 <= total <= 1.01:
            raise ValueError(f"kernel fractions sum to {total:.3f}, expected 1.0")


@dataclass
class OffloadDecision:
    kernel: KernelProfile
    accelerator: str
    speedup: float


@dataclass
class OffloadReport:
    """Where every kernel went and the resulting overall speed-up."""

    application: str
    decisions: list[OffloadDecision] = field(default_factory=list)

    @property
    def amdahl_speedup(self) -> float:
        """Overall speed-up: 1 / sum(fraction_i / speedup_i)."""
        denominator = sum(
            d.kernel.fraction_of_runtime / max(d.speedup, 1e-12) for d in self.decisions
        )
        return 1.0 / denominator if denominator > 0 else 1.0

    def accelerated_fraction(self) -> float:
        return sum(
            d.kernel.fraction_of_runtime for d in self.decisions if d.accelerator != "host"
        )


class HostCPU:
    """The controlling classical processor of the heterogeneous system."""

    #: Which kernel kinds each accelerator class is suited to.
    _AFFINITY = {
        "gpu": ("simulation", "linear_algebra"),
        "fpga": ("streaming", "search"),
        "quantum_gate": ("search", "simulation", "optimisation"),
        "quantum_annealer": ("optimisation",),
    }

    def __init__(self, name: str = "host", runtime_workers: int | None = None):
        self.name = name
        self.accelerators: dict[str, float] = {}
        #: Worker-pool size used when offloading experiments; ``None`` means
        #: "one worker per available core".
        self.runtime_workers = runtime_workers

    def attach_accelerator(self, kind: str, typical_speedup: float) -> None:
        """Register an accelerator of a given kind with its typical kernel speed-up."""
        if kind not in self._AFFINITY:
            raise ValueError(
                f"unknown accelerator kind {kind!r}; expected one of {sorted(self._AFFINITY)}"
            )
        if typical_speedup < 1.0:
            raise ValueError("an accelerator must not slow kernels down")
        self.accelerators[kind] = typical_speedup

    # ------------------------------------------------------------------ #
    def offload(self, application: ApplicationProfile) -> OffloadReport:
        """Assign each kernel to the best-suited attached accelerator."""
        application.validate()
        report = OffloadReport(application=application.name)
        for kernel in application.kernels:
            best_kind = "host"
            best_speedup = 1.0
            for kind, speedup in self.accelerators.items():
                if kernel.kind in self._AFFINITY[kind]:
                    effective = speedup * kernel.accelerator_speedup
                    if effective > best_speedup:
                        best_speedup = effective
                        best_kind = kind
            report.decisions.append(
                OffloadDecision(kernel=kernel, accelerator=best_kind, speedup=best_speedup)
            )
        return report

    # ------------------------------------------------------------------ #
    def run_experiment(
        self,
        spec,
        workers: int | None = None,
        cache_dir=None,
        backend: str | None = None,
    ):
        """Offload a declarative full-stack experiment to the quantum pipeline.

        This is the host's actual execution path (as opposed to the Amdahl
        bookkeeping above): the :class:`~repro.runtime.spec.ExperimentSpec`
        is handed to the parallel :class:`~repro.runtime.runner.ExperimentRunner`,
        which shards the sweep's shot batches across ``workers`` processes
        and returns the merged :class:`~repro.runtime.aggregate.ExperimentResult`.

        ``backend`` overrides the spec's simulation engine for this offload
        (e.g. ``"mps"`` to force the tensor-network engine on a large
        register) without mutating the caller's spec.
        """
        from dataclasses import replace

        from repro.runtime.runner import ExperimentRunner

        if workers is None:
            workers = self.runtime_workers
        if backend is not None:
            spec = replace(spec, simulation=replace(spec.simulation, backend=backend))
        return ExperimentRunner(spec, workers=workers, cache_dir=cache_dir).run()
