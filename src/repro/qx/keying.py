"""The shared measurement-histogram keying convention.

Every simulation engine in the stack — state vector, stabilizer tableau,
density matrix and matrix-product state — must emit histograms under one
convention so results stay comparable (and mergeable by the runtime) no
matter which engine executed the circuit:

* keys are ordered by **classical bit** (``Measurement.bit``), honouring
  cross-maps such as ``measure q[3] -> b[0]``;
* character ``j`` of a key is the outcome of bit ``sorted(bits)[-1 - j]``
  (the lowest bit is the rightmost character, cQASM display convention);
* a repeated measurement into one bit keeps only the **last** outcome.

The helpers here are the single implementation of that convention.  Engines
must not re-derive keys locally; the cross-engine regression tests pin each
engine's histogram path to these functions.
"""

from __future__ import annotations

import numpy as np

from repro.qx import kernels


def bits_histogram(all_bits: np.ndarray, ordered_bits: tuple[int, ...]) -> dict[str, int]:
    """Histogram a ``(shots, bits)`` array by the shared keying convention.

    ``ordered_bits`` are the classical bits to key on, ascending; character
    ``j`` of a key is bit ``ordered_bits[-1 - j]`` (lowest rightmost).
    Unique-row based: no integer packing, so the key width is not limited by
    the 63 value bits of int64.
    """
    columns = all_bits[:, list(reversed(ordered_bits))]
    rows, frequencies = np.unique(columns, axis=0, return_counts=True)
    return {
        key: int(frequency)
        for key, frequency in zip(kernels.bitstring_keys(rows), frequencies, strict=True)
    }


def key_for_bit_values(bits: dict[int, int]) -> str:
    """Key one shot's ``{classical bit: outcome}`` map (lowest bit rightmost)."""
    return "".join(str(bits[bit]) for bit in sorted(bits, reverse=True))


def sample_index_counts(
    probabilities: np.ndarray,
    shots: int,
    targets: tuple[int, ...],
    rng: np.random.Generator,
) -> dict[str, int]:
    """Sample basis indices from a distribution and histogram ``targets``.

    The shared sampling back-end of the dense and density engines: draws
    ``shots`` basis indices from ``probabilities``, extracts the listed
    qubits and keys the histogram with qubit ``targets[-1 - j]`` as
    character ``j`` (the last listed target is the leftmost character).
    Aggregation happens over the *unique* sampled indices, so the cost is
    independent of the shot count beyond the initial draw.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    outcomes = rng.choice(len(probabilities), size=shots, p=probabilities / probabilities.sum())
    return _histogram_outcomes(outcomes, shots, targets)


def _histogram_outcomes(
    outcomes: np.ndarray, shots: int, targets: tuple[int, ...]
) -> dict[str, int]:
    if not targets:
        return {"": shots}
    values, frequencies = np.unique(outcomes, return_counts=True)
    shifts = np.array(tuple(reversed(targets)))
    bit_rows = (values[:, None] >> shifts[None, :]) & 1
    counts: dict[str, int] = {}
    for key, frequency in zip(kernels.bitstring_keys(bit_rows), frequencies, strict=True):
        # Distinct basis indices can share a key when targets are a strict
        # subset of the register.
        counts[key] = counts.get(key, 0) + int(frequency)
    return counts


class PreparedIndexSampler:
    """Amortised :func:`sample_index_counts` for repeated draws from one state.

    ``Generator.choice(n, size, p=...)`` normalises ``p``, builds its
    cumulative distribution and then inverse-transform samples via
    ``cdf.searchsorted(rng.random(size), side="right")``.  The batch runtime
    draws every shard of a circuit from the *same* probability vector, so
    this helper performs the normalisation and cumulative sum once and
    replays only the draw per shard.  The draw consumes the identical
    ``rng.random(shots)`` stream and applies the identical inverse
    transform, so the sampled indices — and therefore the histograms — are
    bit-for-bit those of :func:`sample_index_counts` with the same rng.
    """

    __slots__ = ("_cdf", "_targets")

    def __init__(self, probabilities: np.ndarray, targets: tuple[int, ...]) -> None:
        probabilities = np.asarray(probabilities, dtype=float)
        # Two-step normalisation mirrors sample_index_counts exactly: the
        # caller-side p / p.sum() feeds Generator.choice, which re-normalises
        # its cumulative distribution by the final entry.
        normalized = probabilities / probabilities.sum()
        cdf = normalized.cumsum()
        cdf /= cdf[-1]
        self._cdf = cdf
        self._targets = targets

    def sample(self, shots: int, rng: np.random.Generator) -> dict[str, int]:
        outcomes = self._cdf.searchsorted(rng.random(shots), side="right")
        return _histogram_outcomes(outcomes, shots, self._targets)


def counts_to_bits(
    counts: dict[str, int], bits: tuple[int, ...], shots: int, size: int | None = None
) -> list[list[int]]:
    """Expand a histogram into per-shot classical bit lists (bit-indexed).

    ``bits`` is the ascending classical-bit tuple the histogram was keyed
    on; column ``j`` of a key corresponds to bit ``reversed(bits)[j]``.
    ``size`` widens every row to a fixed register width (the trajectory
    paths emit ``max(num_bits, num_qubits)``-wide rows, and the sampled
    paths must match so the row shape does not depend on the execution
    path or engine).  Used by the sampled execution paths, which histogram
    first and only then materialise per-shot bit lists.
    """
    if not counts:
        return []
    if not bits:
        width = size or 0
        return [[0] * width for _ in range(min(shots, sum(counts.values())))]
    if size is None:
        size = max(bits) + 1
    keys = list(counts)
    repeats = np.fromiter((counts[key] for key in keys), dtype=np.int64, count=len(keys))
    characters = np.frombuffer("".join(keys).encode("ascii"), dtype=np.uint8)
    bit_rows = (characters - ord("0")).reshape(len(keys), len(bits)).astype(np.int64)
    rows = np.zeros((len(keys), size), dtype=np.int64)
    # Duplicate targets resolve to the last occurrence, as in a per-entry loop.
    rows[:, list(reversed(bits))] = bit_rows
    return np.repeat(rows, repeats, axis=0)[:shots].tolist()
