"""In-place state-vector gate kernels.

The generic gate path in :mod:`repro.qx.statevector` moves the target axes
to the front of an n-dimensional tensor view, forces a contiguous reshape,
multiplies by the gate matrix and copies the result back — three to four
full ``2**n`` allocations per gate.  The kernels here instead exploit the
fixed stride structure of the amplitude vector: qubit ``q`` partitions the
vector into contiguous blocks of ``2**q`` amplitudes, so a strided reshape
(always a *view*, never a copy, because the vector is kept C-contiguous)
exposes the two half-spaces of any qubit directly.  Gates are then applied
in place with at most half-size temporaries, and structured matrices
(diagonal, anti-diagonal, controlled, swap) avoid even those.

All kernels mutate ``amplitudes`` in place and assume (without checking)
that the array is C-contiguous, one-dimensional, of length ``2**n`` — the
invariant :class:`~repro.qx.statevector.StateVector` maintains.
"""

from __future__ import annotations

import numpy as np

_ATOL = 1e-12


# ---------------------------------------------------------------------- #
# Strided views
# ---------------------------------------------------------------------- #
def qubit_view(amplitudes: np.ndarray, qubit: int) -> np.ndarray:
    """View the vector as ``(high, 2, low)`` with axis 1 indexing ``qubit``."""
    return amplitudes.reshape(-1, 2, 1 << qubit)


def _pair_view(amplitudes: np.ndarray, q_low: int, q_high: int) -> np.ndarray:
    """View as ``(high, 2, mid, 2, low)``; axes 1 and 3 index ``q_high``/``q_low``."""
    low = 1 << q_low
    mid = 1 << (q_high - q_low - 1)
    return amplitudes.reshape(-1, 2, mid, 2, low)


def pair_parity_expectation(amplitudes: np.ndarray, qubit_a: int, qubit_b: int) -> float:
    """``<Z_a Z_b>``: signed probability sum over the four qubit-pair blocks.

    Uses the strided pair view directly instead of materialising a
    ``(-1)**parity`` table over all ``2**n`` basis indices per qubit pair.
    """
    if qubit_a == qubit_b:
        # Z_q Z_q = I: the parity is identically zero.
        return float(np.vdot(amplitudes, amplitudes).real)
    q_low, q_high = sorted((qubit_a, qubit_b))
    view = _pair_view(amplitudes, q_low, q_high)
    total = 0.0
    for bit_high in (0, 1):
        for bit_low in (0, 1):
            block = view[:, bit_high, :, bit_low, :]
            weight = float(np.vdot(block, block).real)
            total += weight if bit_high == bit_low else -weight
    return total


# ---------------------------------------------------------------------- #
# Single-qubit kernel
# ---------------------------------------------------------------------- #
def apply_1q(amplitudes: np.ndarray, matrix: np.ndarray, qubit: int) -> None:
    """Apply a 2x2 unitary to ``qubit`` in place."""
    view = qubit_view(amplitudes, qubit)
    a0 = view[:, 0, :]
    a1 = view[:, 1, :]
    m00, m01 = matrix[0, 0], matrix[0, 1]
    m10, m11 = matrix[1, 0], matrix[1, 1]
    if abs(m01) < _ATOL and abs(m10) < _ATOL:
        # Diagonal (z, s, t, rz, phase): two scalings, no temporaries.
        if abs(m00 - 1.0) > _ATOL:
            a0 *= m00
        if abs(m11 - 1.0) > _ATOL:
            a1 *= m11
        return
    if abs(m00) < _ATOL and abs(m11) < _ATOL:
        # Anti-diagonal (x, y): swap the half-spaces, scaling if needed.
        swap = a0.copy()
        np.multiply(a1, m01, out=a0)
        np.multiply(swap, m10, out=a1)
        return
    # Dense 2x2: one half-size temporary.
    new0 = m00 * a0 + m01 * a1
    a1 *= m11
    a1 += m10 * a0
    a0[...] = new0


# ---------------------------------------------------------------------- #
# Two-qubit kernel
# ---------------------------------------------------------------------- #
#: Structure tags returned by :func:`classify_2q`.
DIAGONAL_2Q = "diagonal"
CONTROLLED_2Q = "controlled"
SWAP_2Q = "swap"
DENSE_2Q = "dense"


def classify_2q(matrix: np.ndarray) -> str:
    """Classify a 4x4 unitary's structure for kernel dispatch.

    Called once per lowered op by the precompiler (stored on the
    ``KernelOp``), so the matrix scans here are not paid per shot.
    """
    off_diagonal = matrix - np.diag(np.diag(matrix))
    if np.max(np.abs(off_diagonal)) < _ATOL:
        return DIAGONAL_2Q
    identity_top = (
        abs(matrix[0, 0] - 1.0) < _ATOL
        and abs(matrix[1, 1] - 1.0) < _ATOL
        and np.max(np.abs(matrix[:2, 2:])) < _ATOL
        and np.max(np.abs(matrix[2:, :2])) < _ATOL
        and abs(matrix[0, 1]) < _ATOL
        and abs(matrix[1, 0]) < _ATOL
    )
    if identity_top:
        return CONTROLLED_2Q
    if _is_swap(matrix):
        return SWAP_2Q
    return DENSE_2Q


def apply_2q(
    amplitudes: np.ndarray,
    matrix: np.ndarray,
    qubit_0: int,
    qubit_1: int,
    structure: str | None = None,
) -> None:
    """Apply a 4x4 unitary to ``(qubit_0, qubit_1)`` in place.

    ``qubit_0`` is operand 0 and therefore the *most* significant bit of the
    gate-matrix index (textbook convention: the CNOT control is operand 0).
    ``structure`` is the precomputed :func:`classify_2q` tag; pass ``None``
    to classify on the fly.
    """
    if structure is None:
        structure = classify_2q(matrix)
    q_low, q_high = (qubit_0, qubit_1) if qubit_0 < qubit_1 else (qubit_1, qubit_0)
    view = _pair_view(amplitudes, q_low, q_high)

    def block(bit_0: int, bit_1: int) -> np.ndarray:
        if qubit_0 == q_high:
            return view[:, bit_0, :, bit_1, :]
        return view[:, bit_1, :, bit_0, :]

    if structure == DIAGONAL_2Q:
        # Diagonal (cz, cr, crk): scale at most four blocks, usually one.
        for index in range(4):
            entry = matrix[index, index]
            if abs(entry - 1.0) > _ATOL:
                block(index >> 1, index & 1)[...] *= entry
        return
    if structure == CONTROLLED_2Q:
        # Controlled gate (cnot, controlled-U): the control = operand 0
        # subspace with bit 1 gets the lower-right 2x2; the rest is untouched.
        sub = matrix[2:, 2:]
        b10, b11 = block(1, 0), block(1, 1)
        s00, s01 = sub[0, 0], sub[0, 1]
        s10, s11 = sub[1, 0], sub[1, 1]
        if abs(s01) < _ATOL and abs(s10) < _ATOL:
            if abs(s00 - 1.0) > _ATOL:
                b10 *= s00
            if abs(s11 - 1.0) > _ATOL:
                b11 *= s11
            return
        if abs(s00) < _ATOL and abs(s11) < _ATOL:
            swap = b10.copy()
            np.multiply(b11, s01, out=b10)
            np.multiply(swap, s10, out=b11)
            return
        new0 = s00 * b10 + s01 * b11
        b11 *= s11
        b11 += s10 * b10
        b10[...] = new0
        return
    if structure == SWAP_2Q:
        b01, b10 = block(0, 1), block(1, 0)
        swap = b01.copy()
        b01[...] = b10
        b10[...] = swap
        return
    # Dense 4x4: gather the four blocks, recombine with quarter-size temps.
    blocks = [block(0, 0), block(0, 1), block(1, 0), block(1, 1)]
    new_blocks = []
    for row in range(4):
        accumulator = matrix[row, 0] * blocks[0]
        for column in range(1, 4):
            entry = matrix[row, column]
            if abs(entry) > _ATOL:
                accumulator += entry * blocks[column]
        new_blocks.append(accumulator)
    for old, new in zip(blocks, new_blocks):
        old[...] = new


def _is_swap(matrix: np.ndarray) -> bool:
    expected = np.zeros((4, 4))
    expected[0, 0] = expected[1, 2] = expected[2, 1] = expected[3, 3] = 1.0
    return bool(np.max(np.abs(matrix - expected)) < _ATOL)


# ---------------------------------------------------------------------- #
# Bit-string keys
# ---------------------------------------------------------------------- #
def bitstring_keys(bit_rows: np.ndarray) -> list[str]:
    """Render a ``(k, width)`` 0/1 matrix as histogram key strings.

    The single place the key convention lives: row order is preserved and
    column 0 is the leftmost character (callers order columns so that the
    lowest qubit/bit index lands rightmost).
    """
    if bit_rows.shape[1] == 0:
        return [""] * bit_rows.shape[0]
    characters = (bit_rows + ord("0")).astype(np.uint8)
    return [row.tobytes().decode("ascii") for row in characters]


# ---------------------------------------------------------------------- #
# Dispatch
# ---------------------------------------------------------------------- #
def apply_gate_inplace(
    amplitudes: np.ndarray,
    matrix: np.ndarray,
    qubits: tuple[int, ...],
    structure: str | None = None,
) -> np.ndarray:
    """Apply a gate through the fastest available kernel.

    Returns the (possibly reallocated) amplitude array: 1- and 2-qubit gates
    mutate in place and return the same array; larger gates fall back to the
    generic reference pipeline and return a fresh array.  ``structure`` is
    the precompiled :func:`classify_2q` tag for 2-qubit gates, if known.
    """
    k = len(qubits)
    if k == 1:
        apply_1q(amplitudes, matrix, qubits[0])
        return amplitudes
    if k == 2:
        apply_2q(amplitudes, matrix, qubits[0], qubits[1], structure=structure)
        return amplitudes
    return apply_gate_generic(amplitudes, matrix, qubits)


def apply_gate_generic(
    amplitudes: np.ndarray, matrix: np.ndarray, qubits: tuple[int, ...]
) -> np.ndarray:
    """Reference gate application (axis-permutation pipeline).

    Kept as the ground truth the kernels are property-tested against, and as
    the execution path for k >= 3 qubit gates, which are rare enough that
    specialized kernels are not worth their complexity.
    """
    k = len(qubits)
    n = amplitudes.size.bit_length() - 1
    tensor = amplitudes.reshape([2] * n)
    axes = [n - 1 - q for q in qubits]
    tensor = np.moveaxis(tensor, axes, range(k))
    shape = tensor.shape
    tensor = tensor.reshape(2 ** k, -1)
    tensor = (matrix @ tensor).reshape(shape)
    tensor = np.moveaxis(tensor, range(k), axes)
    return np.ascontiguousarray(tensor.reshape(-1))
