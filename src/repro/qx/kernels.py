"""In-place state-vector gate kernels.

The generic gate path in :mod:`repro.qx.statevector` moves the target axes
to the front of an n-dimensional tensor view, forces a contiguous reshape,
multiplies by the gate matrix and copies the result back — three to four
full ``2**n`` allocations per gate.  The kernels here instead exploit the
fixed stride structure of the amplitude vector: qubit ``q`` partitions the
vector into contiguous blocks of ``2**q`` amplitudes, so a strided reshape
(always a *view*, never a copy, because the vector is kept C-contiguous)
exposes the two half-spaces of any qubit directly.  Gates are then applied
in place with at most half-size temporaries, and structured matrices
(diagonal, anti-diagonal, controlled, swap) avoid even those.

All kernels mutate ``amplitudes`` in place and assume (without checking)
that the array is C-contiguous, one-dimensional, of length ``2**n`` — the
invariant :class:`~repro.qx.statevector.StateVector` maintains.
"""

from __future__ import annotations

import numpy as np

_ATOL = 1e-12


# ---------------------------------------------------------------------- #
# Strided views
# ---------------------------------------------------------------------- #
def qubit_view(amplitudes: np.ndarray, qubit: int) -> np.ndarray:
    """View the vector as ``(high, 2, low)`` with axis 1 indexing ``qubit``."""
    return amplitudes.reshape(-1, 2, 1 << qubit)


def _pair_view(amplitudes: np.ndarray, q_low: int, q_high: int) -> np.ndarray:
    """View as ``(high, 2, mid, 2, low)``; axes 1 and 3 index ``q_high``/``q_low``."""
    low = 1 << q_low
    mid = 1 << (q_high - q_low - 1)
    return amplitudes.reshape(-1, 2, mid, 2, low)


def pair_parity_expectation(amplitudes: np.ndarray, qubit_a: int, qubit_b: int) -> float:
    """``<Z_a Z_b>``: signed probability sum over the four qubit-pair blocks.

    Uses the strided pair view directly instead of materialising a
    ``(-1)**parity`` table over all ``2**n`` basis indices per qubit pair.
    """
    if qubit_a == qubit_b:
        # Z_q Z_q = I: the parity is identically zero.
        return float(np.vdot(amplitudes, amplitudes).real)
    q_low, q_high = sorted((qubit_a, qubit_b))
    view = _pair_view(amplitudes, q_low, q_high)
    total = 0.0
    for bit_high in (0, 1):
        for bit_low in (0, 1):
            block = view[:, bit_high, :, bit_low, :]
            weight = float(np.vdot(block, block).real)
            total += weight if bit_high == bit_low else -weight
    return total


# ---------------------------------------------------------------------- #
# Single-qubit kernel
# ---------------------------------------------------------------------- #
def apply_1q(amplitudes: np.ndarray, matrix: np.ndarray, qubit: int) -> None:
    """Apply a 2x2 unitary to ``qubit`` in place."""
    view = qubit_view(amplitudes, qubit)
    a0 = view[:, 0, :]
    a1 = view[:, 1, :]
    m00, m01 = matrix[0, 0], matrix[0, 1]
    m10, m11 = matrix[1, 0], matrix[1, 1]
    if abs(m01) < _ATOL and abs(m10) < _ATOL:
        # Diagonal (z, s, t, rz, phase): two scalings, no temporaries.
        if abs(m00 - 1.0) > _ATOL:
            a0 *= m00
        if abs(m11 - 1.0) > _ATOL:
            a1 *= m11
        return
    if abs(m00) < _ATOL and abs(m11) < _ATOL:
        # Anti-diagonal (x, y): swap the half-spaces, scaling if needed.
        swap = a0.copy()
        np.multiply(a1, m01, out=a0)
        np.multiply(swap, m10, out=a1)
        return
    # Dense 2x2: one half-size temporary.
    new0 = m00 * a0 + m01 * a1
    a1 *= m11
    a1 += m10 * a0
    a0[...] = new0


# ---------------------------------------------------------------------- #
# Two-qubit kernel
# ---------------------------------------------------------------------- #
#: Structure tags returned by :func:`classify_2q`.
DIAGONAL_2Q = "diagonal"
CONTROLLED_2Q = "controlled"
SWAP_2Q = "swap"
DENSE_2Q = "dense"


_CLASSIFY_CACHE: dict[bytes, str] = {}
_CLASSIFY_CACHE_CAP = 512


def classify_2q(matrix: np.ndarray) -> str:
    """Classify a 4x4 unitary's structure for kernel dispatch.

    Called once per lowered op by the precompiler (stored on the
    ``KernelOp``), so the matrix scans here are not paid per shot.
    Memoised by matrix content: fleets of structurally identical circuits
    lower the same few two-qubit matrices (cnot, cz, swap) thousands of
    times, and hashing 256 bytes is ~20x cheaper than the structure scan.
    """
    key = np.ascontiguousarray(matrix).tobytes()
    cached = _CLASSIFY_CACHE.get(key)
    if cached is not None:
        return cached
    structure = _classify_2q_scan(matrix)
    if len(_CLASSIFY_CACHE) >= _CLASSIFY_CACHE_CAP:
        _CLASSIFY_CACHE.pop(next(iter(_CLASSIFY_CACHE)))
    _CLASSIFY_CACHE[key] = structure
    return structure


def _classify_2q_scan(matrix: np.ndarray) -> str:
    off_diagonal = matrix - np.diag(np.diag(matrix))
    if np.max(np.abs(off_diagonal)) < _ATOL:
        return DIAGONAL_2Q
    identity_top = (
        abs(matrix[0, 0] - 1.0) < _ATOL
        and abs(matrix[1, 1] - 1.0) < _ATOL
        and np.max(np.abs(matrix[:2, 2:])) < _ATOL
        and np.max(np.abs(matrix[2:, :2])) < _ATOL
        and abs(matrix[0, 1]) < _ATOL
        and abs(matrix[1, 0]) < _ATOL
    )
    if identity_top:
        return CONTROLLED_2Q
    if _is_swap(matrix):
        return SWAP_2Q
    return DENSE_2Q


def apply_2q(
    amplitudes: np.ndarray,
    matrix: np.ndarray,
    qubit_0: int,
    qubit_1: int,
    structure: str | None = None,
) -> None:
    """Apply a 4x4 unitary to ``(qubit_0, qubit_1)`` in place.

    ``qubit_0`` is operand 0 and therefore the *most* significant bit of the
    gate-matrix index (textbook convention: the CNOT control is operand 0).
    ``structure`` is the precomputed :func:`classify_2q` tag; pass ``None``
    to classify on the fly.
    """
    if structure is None:
        structure = classify_2q(matrix)
    q_low, q_high = (qubit_0, qubit_1) if qubit_0 < qubit_1 else (qubit_1, qubit_0)
    view = _pair_view(amplitudes, q_low, q_high)

    def block(bit_0: int, bit_1: int) -> np.ndarray:
        if qubit_0 == q_high:
            return view[:, bit_0, :, bit_1, :]
        return view[:, bit_1, :, bit_0, :]

    if structure == DIAGONAL_2Q:
        # Diagonal (cz, cr, crk): scale at most four blocks, usually one.
        for index in range(4):
            entry = matrix[index, index]
            if abs(entry - 1.0) > _ATOL:
                block(index >> 1, index & 1)[...] *= entry
        return
    if structure == CONTROLLED_2Q:
        # Controlled gate (cnot, controlled-U): the control = operand 0
        # subspace with bit 1 gets the lower-right 2x2; the rest is untouched.
        sub = matrix[2:, 2:]
        b10, b11 = block(1, 0), block(1, 1)
        s00, s01 = sub[0, 0], sub[0, 1]
        s10, s11 = sub[1, 0], sub[1, 1]
        if abs(s01) < _ATOL and abs(s10) < _ATOL:
            if abs(s00 - 1.0) > _ATOL:
                b10 *= s00
            if abs(s11 - 1.0) > _ATOL:
                b11 *= s11
            return
        if abs(s00) < _ATOL and abs(s11) < _ATOL:
            swap = b10.copy()
            if s01 == 1.0 and s10 == 1.0:
                # cnot: straight block swap, no multiply passes.
                b10[...] = b11
                b11[...] = swap
                return
            np.multiply(b11, s01, out=b10)
            np.multiply(swap, s10, out=b11)
            return
        new0 = s00 * b10 + s01 * b11
        b11 *= s11
        b11 += s10 * b10
        b10[...] = new0
        return
    if structure == SWAP_2Q:
        b01, b10 = block(0, 1), block(1, 0)
        swap = b01.copy()
        b01[...] = b10
        b10[...] = swap
        return
    # Dense 4x4: gather the four blocks, recombine with quarter-size temps.
    blocks = [block(0, 0), block(0, 1), block(1, 0), block(1, 1)]
    new_blocks = []
    for row in range(4):
        accumulator = matrix[row, 0] * blocks[0]
        for column in range(1, 4):
            entry = matrix[row, column]
            if abs(entry) > _ATOL:
                accumulator += entry * blocks[column]
        new_blocks.append(accumulator)
    for old, new in zip(blocks, new_blocks, strict=True):
        old[...] = new


def _is_swap(matrix: np.ndarray) -> bool:
    expected = np.zeros((4, 4))
    expected[0, 0] = expected[1, 2] = expected[2, 1] = expected[3, 3] = 1.0
    return bool(np.max(np.abs(matrix - expected)) < _ATOL)


# ---------------------------------------------------------------------- #
# Batched kernels: many states, one gate position, per-state matrices
# ---------------------------------------------------------------------- #
# The batch runtime stacks same-shape state vectors into one C-contiguous
# ``(batch, 2**n)`` array and applies gate step t of every circuit at once.
# Every branch below mirrors the corresponding scalar branch's condition
# *and* expression shape per row: same products, same two-term sums, same
# skip thresholds.  Rows whose matrices take different scalar branches are
# partitioned by boolean masks and updated via fancy indexing (gather,
# elementwise op, scatter).  Per-row amplitudes agree with the scalar
# kernels to <= 1 ulp — not always bit-for-bit, because numpy selects
# different complex-multiply inner loops (FMA vs not) for in-place scalar
# operands than for fresh array operands.  The runtime's determinism
# contract is therefore stated (and property-tested) at the sampled
# *histogram* level, where identical seed streams make a flip require a
# uniform draw within ~1e-16 of a bin boundary.


_RIGHT_KRON_MAX_LOW = 16


def _per_row(values: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape per-row scalars ``(k,)`` to broadcast against ``(k, ...)`` blocks."""
    return values.reshape(-1, *([1] * (ndim - 1)))


def _two_level_batch(b0, b1, m00, m01, m10, m11, active) -> None:
    """Per-row two-level update of paired block views (the batched apply_1q core).

    ``b0``/``b1`` are the two half-space block views, leading axis = batch
    row; ``m__`` are the per-row matrix entries, shape ``(batch,)``;
    ``active`` masks the rows to touch (callers running one structure class
    of a mixed batch pass the class mask).  Shared between
    :func:`apply_1q_batch` and the controlled branch of
    :func:`apply_2q_batch`, exactly as the scalar kernels share their
    branch structure.
    """
    nd = b0.ndim
    diag = active & (np.abs(m01) < _ATOL) & (np.abs(m10) < _ATOL)
    anti = active & ~diag & (np.abs(m00) < _ATOL) & (np.abs(m11) < _ATOL)
    dense = active & ~diag & ~anti
    scale0 = diag & (np.abs(m00 - 1.0) > _ATOL)
    scale1 = diag & (np.abs(m11 - 1.0) > _ATOL)
    if scale0.any():
        if scale0.all():
            b0 *= _per_row(m00, nd)
        else:
            rows = np.flatnonzero(scale0)
            b0[rows] *= _per_row(m00[rows], nd)
    if scale1.any():
        if scale1.all():
            b1 *= _per_row(m11, nd)
        else:
            rows = np.flatnonzero(scale1)
            b1[rows] *= _per_row(m11[rows], nd)
    if anti.any():
        if anti.all():
            saved = b0.copy()
            np.multiply(b1, _per_row(m01, nd), out=b0)
            np.multiply(saved, _per_row(m10, nd), out=b1)
        else:
            rows = np.flatnonzero(anti)
            saved = b0[rows]
            b0[rows] = b1[rows] * _per_row(m01[rows], nd)
            b1[rows] = saved * _per_row(m10[rows], nd)
    if dense.any():
        if dense.all():
            c00, c01 = _per_row(m00, nd), _per_row(m01, nd)
            c10, c11 = _per_row(m10, nd), _per_row(m11, nd)
            new0 = c00 * b0 + c01 * b1
            b1 *= c11
            b1 += c10 * b0
            b0[...] = new0
        else:
            rows = np.flatnonzero(dense)
            sub0, sub1 = b0[rows], b1[rows]
            c00, c01 = _per_row(m00[rows], nd), _per_row(m01[rows], nd)
            c10, c11 = _per_row(m10[rows], nd), _per_row(m11[rows], nd)
            new0 = c00 * sub0 + c01 * sub1
            new1 = sub1 * c11 + c10 * sub0
            b0[rows] = new0
            b1[rows] = new1


def apply_1q_batch(
    stacked: np.ndarray,
    matrices: np.ndarray,
    qubit: int,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Apply per-row 2x2 unitaries to ``qubit`` of a ``(batch, 2**n)`` stack.

    ``matrices`` has shape ``(batch, 2, 2)``.  When every row carries the
    same matrix the whole stack collapses into one scalar kernel call: the
    batch axis folds into the "high" axis of the strided view, which keeps
    per-element arithmetic (and therefore bit-identity) unchanged.

    ``scratch`` is an optional same-shape buffer for double-buffered
    execution: the dense gemm paths then write their result *into* it
    (gemm cannot safely write over its own input, so the in-place variant
    materialises a temporary and copies back — a full extra traversal of
    the stack).  Returns the array holding the updated amplitudes: the
    scratch when a dense path consumed it, otherwise ``stacked`` (updated
    in place).  Callers double-buffering must swap their buffers whenever
    the return value is the scratch.  Values are identical either way.
    """
    batch = stacked.shape[0]
    if batch == 0:
        return stacked
    if bool((matrices == matrices[0]).all()):
        apply_1q(stacked.reshape(-1), matrices[0], qubit)
        return stacked
    low = 1 << qubit
    view = stacked.reshape(batch, -1, 2, low)
    m00, m01 = matrices[:, 0, 0], matrices[:, 0, 1]
    m10, m11 = matrices[:, 1, 0], matrices[:, 1, 1]
    diag = (np.abs(m01) < _ATOL) & (np.abs(m10) < _ATOL)
    anti = (np.abs(m00) < _ATOL) & (np.abs(m11) < _ATOL)
    if not (diag.all() or anti.all()):
        # Dense rows go through batched gemms rather than the strided
        # masked update (~2-3x less wall time).  Wide panes contract on the
        # left, (2, 2) @ (2, low); narrow panes make tiny gemms with
        # crushing dispatch overhead, so they contract on the right over
        # the contiguous (2 * low)-wide pair blocks with (matrix ⊗ I_low)ᵀ
        # — identical two-term row sums, one wide gemm per row.  The
        # scale-only classes stay on the masked path, which touches far
        # less memory for them.
        if low > _RIGHT_KRON_MAX_LOW:
            if scratch is not None:
                out = scratch.reshape(batch, -1, 2, low)
                np.matmul(matrices[:, None, :, :], view, out=out)
                return scratch
            view[...] = np.matmul(matrices[:, None, :, :], view)
        else:
            width = 2 * low
            wide = stacked.reshape(batch, -1, width)
            kron = np.kron(matrices, np.eye(low))
            if scratch is not None:
                out = scratch.reshape(batch, -1, width)
                np.matmul(wide, kron.transpose(0, 2, 1), out=out)
                return scratch
            wide[...] = np.matmul(wide, kron.transpose(0, 2, 1))
        return stacked
    _two_level_batch(
        view[:, :, 0, :],
        view[:, :, 1, :],
        m00,
        m01,
        m10,
        m11,
        np.ones(batch, dtype=bool),
    )
    return stacked


def apply_2q_batch(
    stacked: np.ndarray,
    matrices: np.ndarray,
    qubit_0: int,
    qubit_1: int,
    structures=None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Apply per-row 4x4 unitaries to ``(qubit_0, qubit_1)`` of a stack.

    ``matrices`` has shape ``(batch, 4, 4)``; ``structures`` is the per-row
    :func:`classify_2q` tag sequence (classified on the fly when omitted).
    Rows are partitioned by structure class and each class mirrors the
    scalar :func:`apply_2q` branch row by row.  Like :func:`apply_1q_batch`,
    an optional ``scratch`` buffer enables a double-buffered gemm path —
    taken for all-dense rows on adjacent qubits with operand 0 high, where
    the two gate bits form one contiguous axis — and the returned array is
    whichever buffer holds the result.
    """
    batch = stacked.shape[0]
    if batch == 0:
        return stacked
    if structures is None:
        structures = [classify_2q(matrix) for matrix in matrices]
    if bool((matrices == matrices[0]).all()):
        apply_2q(stacked.reshape(-1), matrices[0], qubit_0, qubit_1, structure=structures[0])
        return stacked
    q_low, q_high = (qubit_0, qubit_1) if qubit_0 < qubit_1 else (qubit_1, qubit_0)
    low = 1 << q_low
    mid = 1 << (q_high - q_low - 1)
    if (
        scratch is not None
        and mid == 1
        and qubit_0 == q_high
        and all(tag == DENSE_2Q for tag in structures)
    ):
        # Adjacent qubits, operand 0 high: the two gate bits are one
        # contiguous axis of size 4, so dense rows contract exactly like
        # the 1q gemm paths (matrix index = 2 * bit(q_high) + bit(q_low),
        # the textbook operand order).
        if low > _RIGHT_KRON_MAX_LOW:
            quad = stacked.reshape(batch, -1, 4, low)
            out = scratch.reshape(batch, -1, 4, low)
            np.matmul(matrices[:, None, :, :], quad, out=out)
            return scratch
        width = 4 * low
        wide = stacked.reshape(batch, -1, width)
        kron = np.kron(matrices, np.eye(low))
        out = scratch.reshape(batch, -1, width)
        np.matmul(wide, kron.transpose(0, 2, 1), out=out)
        return scratch
    view = stacked.reshape(batch, -1, 2, mid, 2, low)

    def block(bit_0: int, bit_1: int) -> np.ndarray:
        if qubit_0 == q_high:
            return view[:, :, bit_0, :, bit_1, :]
        return view[:, :, bit_1, :, bit_0, :]

    tags = np.array(structures)
    mask = tags == DIAGONAL_2Q
    if mask.any():
        for index in range(4):
            entries = matrices[:, index, index]
            scale = mask & (np.abs(entries - 1.0) > _ATOL)
            if not scale.any():
                continue
            blk = block(index >> 1, index & 1)
            if scale.all():
                blk *= _per_row(entries, blk.ndim)
            else:
                rows = np.flatnonzero(scale)
                blk[rows] *= _per_row(entries[rows], blk.ndim)
    mask = tags == CONTROLLED_2Q
    if mask.any():
        _two_level_batch(
            block(1, 0),
            block(1, 1),
            matrices[:, 2, 2],
            matrices[:, 2, 3],
            matrices[:, 3, 2],
            matrices[:, 3, 3],
            mask,
        )
    mask = tags == SWAP_2Q
    if mask.any():
        b01, b10 = block(0, 1), block(1, 0)
        if mask.all():
            saved = b01.copy()
            b01[...] = b10
            b10[...] = saved
        else:
            rows = np.flatnonzero(mask)
            saved = b01[rows]
            b01[rows] = b10[rows]
            b10[rows] = saved
    mask = tags == DENSE_2Q
    if mask.any():
        blocks = [block(0, 0), block(0, 1), block(1, 0), block(1, 1)]
        nd = blocks[0].ndim
        # slice(None) keeps views (no gather) when every row is dense; the
        # write-back below only happens after all four new blocks exist, so
        # reads always see original values either way.
        rows = slice(None) if mask.all() else np.flatnonzero(mask)
        gathered = [blk[rows] for blk in blocks]
        new_blocks = []
        for row in range(4):
            accumulator = _per_row(matrices[rows, row, 0], nd) * gathered[0]
            for column in range(1, 4):
                entries = matrices[rows, row, column]
                add = np.abs(entries) > _ATOL
                if add.all():
                    accumulator += _per_row(entries, nd) * gathered[column]
                elif add.any():
                    # Rows whose entry is ~0 skip the term, exactly like the
                    # scalar kernel's per-entry threshold.
                    sel = np.flatnonzero(add)
                    accumulator[sel] += _per_row(entries[sel], nd) * gathered[column][sel]
            new_blocks.append(accumulator)
        for blk, new in zip(blocks, new_blocks, strict=True):
            blk[rows] = new
    return stacked


_PERMUTATION_CACHE: dict[tuple, np.ndarray | None] = {}
_PERMUTATION_CACHE_CAP = 64


def permutation_index(matrix: np.ndarray, qubits: tuple[int, ...], num_qubits: int):
    """Basis-index gather map of a 0/1 permutation gate, or ``None``.

    When ``matrix`` has exactly one ``1.0`` per row and column and zeros
    elsewhere (cnot, swap, x, ...), applying it moves amplitudes between
    basis states without arithmetic: ``new = old[indices]``.  Returns that
    ``indices`` array over the full ``2**num_qubits`` space, with qubit
    ``qubits[0]`` the most significant bit of the gate index (the operand
    convention of :func:`apply_gate_inplace`).  Chains of such gates
    compose by ``first[second]`` gather-of-gather, which is how the batch
    planner collapses a cnot ladder into one indexed pass.  Memoised by
    matrix content: a fleet's entangler layers reuse the same few gates at
    the same positions every layer and every chunk.
    """
    key = (np.ascontiguousarray(matrix).tobytes(), qubits, num_qubits)
    if key in _PERMUTATION_CACHE:
        return _PERMUTATION_CACHE[key]
    indices = _permutation_index_scan(matrix, qubits, num_qubits)
    if len(_PERMUTATION_CACHE) >= _PERMUTATION_CACHE_CAP:
        _PERMUTATION_CACHE.pop(next(iter(_PERMUTATION_CACHE)))
    _PERMUTATION_CACHE[key] = indices
    return indices


def _permutation_index_scan(matrix: np.ndarray, qubits: tuple[int, ...], num_qubits: int):
    if ((matrix != 0.0) & (matrix != 1.0)).any():
        return None
    ones = matrix == 1.0
    if (ones.sum(axis=0) != 1).any() or (ones.sum(axis=1) != 1).any():
        return None
    # new[j] = old[inverse(j)] where matrix[j, inverse(j)] == 1.
    inverse_sub = np.argmax(ones, axis=1)
    k = len(qubits)
    indices = np.arange(1 << num_qubits)
    sub = np.zeros_like(indices)
    for position, qubit in enumerate(qubits):
        sub |= ((indices >> qubit) & 1) << (k - 1 - position)
    new_sub = inverse_sub[sub]
    strip = indices.copy()
    for qubit in qubits:
        strip &= ~(1 << qubit)
    for position, qubit in enumerate(qubits):
        strip |= ((new_sub >> (k - 1 - position)) & 1) << qubit
    return strip


def permute_basis_batch(
    stacked: np.ndarray, indices: np.ndarray, scratch: np.ndarray | None = None
) -> np.ndarray:
    """Gather ``stacked[:, indices]`` for every row — exact amplitude moves.

    With ``scratch``, gathers straight into it (one read + one write pass)
    and returns it; otherwise updates ``stacked`` in place through a
    temporary.  Being a pure relabelling, the result is bit-identical to
    applying the permutation gates one by one.
    """
    if scratch is not None:
        np.take(stacked, indices, axis=1, out=scratch)
        return scratch
    stacked[...] = stacked[:, indices]
    return stacked


def apply_gate_batch(
    stacked: np.ndarray,
    matrices: np.ndarray,
    qubits: tuple[int, ...],
    structures=None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Batched :func:`apply_gate_inplace`: per-row matrices, one gate position.

    Only 1- and 2-qubit gates have batched kernels; the batch planner routes
    programs containing larger gates to per-circuit execution instead.
    Returns the array holding the result — ``stacked``, or ``scratch`` when
    a double-buffered dense path wrote into it (see :func:`apply_1q_batch`).
    """
    k = len(qubits)
    if k == 1:
        return apply_1q_batch(stacked, matrices, qubits[0], scratch=scratch)
    if k == 2:
        return apply_2q_batch(
            stacked, matrices, qubits[0], qubits[1], structures=structures, scratch=scratch
        )
    raise ValueError(f"no batched kernel for {k}-qubit gates")


# ---------------------------------------------------------------------- #
# Bit-string keys
# ---------------------------------------------------------------------- #
def bitstring_keys(bit_rows: np.ndarray) -> list[str]:
    """Render a ``(k, width)`` 0/1 matrix as histogram key strings.

    The single place the key convention lives: row order is preserved and
    column 0 is the leftmost character (callers order columns so that the
    lowest qubit/bit index lands rightmost).
    """
    if bit_rows.shape[1] == 0:
        return [""] * bit_rows.shape[0]
    characters = (bit_rows + ord("0")).astype(np.uint8)
    return [row.tobytes().decode("ascii") for row in characters]


# ---------------------------------------------------------------------- #
# Dispatch
# ---------------------------------------------------------------------- #
def apply_gate_inplace(
    amplitudes: np.ndarray,
    matrix: np.ndarray,
    qubits: tuple[int, ...],
    structure: str | None = None,
) -> np.ndarray:
    """Apply a gate through the fastest available kernel.

    Returns the (possibly reallocated) amplitude array: 1- and 2-qubit gates
    mutate in place and return the same array; larger gates fall back to the
    generic reference pipeline and return a fresh array.  ``structure`` is
    the precompiled :func:`classify_2q` tag for 2-qubit gates, if known.
    """
    k = len(qubits)
    if k == 1:
        apply_1q(amplitudes, matrix, qubits[0])
        return amplitudes
    if k == 2:
        apply_2q(amplitudes, matrix, qubits[0], qubits[1], structure=structure)
        return amplitudes
    return apply_gate_generic(amplitudes, matrix, qubits)


def apply_gate_generic(
    amplitudes: np.ndarray, matrix: np.ndarray, qubits: tuple[int, ...]
) -> np.ndarray:
    """Reference gate application (axis-permutation pipeline).

    Kept as the ground truth the kernels are property-tested against, and as
    the execution path for k >= 3 qubit gates, which are rare enough that
    specialized kernels are not worth their complexity.
    """
    k = len(qubits)
    n = amplitudes.size.bit_length() - 1
    tensor = amplitudes.reshape([2] * n)
    axes = [n - 1 - q for q in qubits]
    tensor = np.moveaxis(tensor, axes, range(k))
    shape = tensor.shape
    tensor = tensor.reshape(2**k, -1)
    tensor = (matrix @ tensor).reshape(shape)
    tensor = np.moveaxis(tensor, range(k), axes)
    return np.ascontiguousarray(tensor.reshape(-1))
