"""Matrix-product-state (MPS) simulation engine.

The dense state-vector engine walls out at 26 qubits (a ``2**26`` complex
array is 1 GiB); the stabilizer tableau goes far beyond but only for
Clifford circuits.  This engine opens the third regime the paper's
full-stack vision needs: **low-entanglement circuits on large registers**
(50-100+ qubits) with *controllable* accuracy.

The state is stored as a chain of site tensors ``A[i]`` of shape
``(D_left, 2, D_right)``, site ``i`` holding qubit ``i`` (qubit 0 is the
least-significant bit of a basis index, matching the dense engine).  The
chain is kept in **mixed-canonical form** around a moving orthogonality
centre: tensors left of the centre are left-canonical, tensors right of it
right-canonical, so

* single-qubit gates contract into one site tensor (unitaries preserve the
  canonical conditions — no gauge work at all);
* a nearest-neighbour two-qubit gate contracts the two site tensors into a
  ``(D, 4, D)`` block, applies the gate, and splits back by SVD — the
  singular values at the split are exactly the **Schmidt coefficients** of
  that bond, so truncation (``max_bond`` / ``truncation_threshold``) keeps
  the optimal low-rank approximation and the discarded weight is a faithful
  per-bond error measure, accumulated in :attr:`MPSState.truncation_error`;
* non-adjacent two-qubit gates are routed by a deterministic
  swap-in/swap-out ladder of nearest-neighbour SWAPs (each an exact rank-2
  split under ``max_bond=None``);
* measurement probabilities read off the centre tensor alone, and
  multi-shot sampling walks the chain **right-to-left**, conditioning a
  per-shot boundary vector on the outcomes drawn so far (perfect sampling,
  ``O(shots * n * D**2)``, no dense vector ever materialised).

With ``max_bond=None`` and the default threshold the engine is numerically
exact and agrees with the dense engine bit-for-bit under the shared
measurement-randomness contract (one uniform draw per measurement,
``outcome = 1 iff draw < p_one``).  Histograms follow the shared
:mod:`repro.qx.keying` convention, keyed by ``Measurement.bit``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.circuit import Circuit
from repro.core.operations import ConditionalGate, GateOperation, Measurement
from repro.qx.keying import bits_histogram, key_for_bit_values

_SWAP_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)

#: Default relative singular-value cutoff: Schmidt coefficients below
#: ``threshold * ||schmidt||`` are numerical noise and are dropped even when
#: ``max_bond`` is unbounded, keeping exact simulations at their true rank.
DEFAULT_TRUNCATION_THRESHOLD = 1e-12

#: Discarded Schmidt weight below this is double-precision dust (squares of
#: coefficients that are exact zeros up to round-off); it is not accumulated,
#: so exact evolutions report a truncation error of exactly 0.0.
_NUMERICAL_ZERO_WEIGHT = 1e-24

#: Largest register :meth:`MPSState.to_statevector` will materialise
#: densely (2**26 complex doubles = 1 GiB, the same wall as the dense
#: engine).  The backend capability rules reference this constant, so
#: feasibility checks and the engine can never disagree.
DENSE_MATERIALISE_LIMIT = 26


class MPSState:
    """Pure quantum state of ``num_qubits`` qubits in MPS form."""

    def __init__(
        self,
        num_qubits: int,
        max_bond: int | None = None,
        truncation_threshold: float = DEFAULT_TRUNCATION_THRESHOLD,
        rng: np.random.Generator | None = None,
    ):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        if max_bond is not None and max_bond < 1:
            raise ValueError("max_bond must be >= 1 (or None for unbounded)")
        if truncation_threshold < 0.0:
            raise ValueError("truncation_threshold must be >= 0")
        self.num_qubits = int(num_qubits)
        self.max_bond = max_bond
        self.truncation_threshold = float(truncation_threshold)
        self.rng = rng if rng is not None else np.random.default_rng()
        #: tensors[i]: (D_left, 2, D_right); the |0...0> product state.
        zero = np.zeros((1, 2, 1), dtype=complex)
        zero[0, 0, 0] = 1.0
        self.tensors = [zero.copy() for _ in range(self.num_qubits)]
        #: Orthogonality centre: tensors < centre are left-canonical,
        #: tensors > centre right-canonical.
        self.centre = 0
        #: Cumulative discarded Schmidt weight over every truncated split —
        #: an additive upper-bound proxy for 1 - fidelity with the untruncated
        #: evolution.  Exactly 0.0 while no split ever discards weight.
        self.truncation_error = 0.0
        #: Largest bond dimension reached at any point of the evolution.
        self.max_bond_reached = 1

    # ------------------------------------------------------------------ #
    # Canonical-form maintenance
    # ------------------------------------------------------------------ #
    def _shift_centre_right(self) -> None:
        c = self.centre
        tensor = self.tensors[c]
        d_left, _, d_right = tensor.shape
        q, r = np.linalg.qr(tensor.reshape(d_left * 2, d_right))
        self.tensors[c] = q.reshape(d_left, 2, -1)
        self.tensors[c + 1] = np.tensordot(r, self.tensors[c + 1], axes=(1, 0))
        self.centre = c + 1

    def _shift_centre_left(self) -> None:
        c = self.centre
        tensor = self.tensors[c]
        d_left, _, d_right = tensor.shape
        # LQ decomposition via QR of the conjugate transpose: A = L Q with
        # Q right-canonical on the (physical, right-bond) pair.
        q, r = np.linalg.qr(tensor.reshape(d_left, 2 * d_right).conj().T)
        self.tensors[c] = q.conj().T.reshape(-1, 2, d_right)
        self.tensors[c - 1] = np.tensordot(self.tensors[c - 1], r.conj().T, axes=(2, 0))
        self.centre = c - 1

    def _move_centre(self, site: int) -> None:
        while self.centre < site:
            self._shift_centre_right()
        while self.centre > site:
            self._shift_centre_left()

    # ------------------------------------------------------------------ #
    # Gate application
    # ------------------------------------------------------------------ #
    def apply_gate(self, matrix: np.ndarray, qubits: tuple[int, ...]) -> None:
        """Apply a ``2**k x 2**k`` unitary (k <= 2) to the listed qubits.

        Operand 0 is the most significant bit of the gate-matrix index, the
        convention shared with the dense engine.  Non-adjacent two-qubit
        gates are routed by a deterministic swap-in/swap-out ladder.
        """
        matrix = np.asarray(matrix, dtype=complex)
        k = len(qubits)
        if matrix.shape != (2**k, 2**k):
            raise ValueError("gate matrix dimension does not match qubit count")
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise IndexError(f"qubit {qubit} out of range")
        if k == 1:
            self._apply_1q(matrix, qubits[0])
            return
        if k != 2:
            raise ValueError(
                f"the MPS engine applies 1- and 2-qubit gates; got a {k}-qubit gate "
                "(decompose larger gates first)"
            )
        if qubits[0] == qubits[1]:
            raise ValueError("duplicate qubits in gate operands")
        self._apply_2q(matrix, qubits[0], qubits[1])

    def apply_pauli(self, pauli: str, qubit: int) -> None:
        """Apply a single Pauli error/gate by name — the error-model hook."""
        if pauli == "i":
            return
        table = {
            "x": np.array([[0, 1], [1, 0]], dtype=complex),
            "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
            "z": np.array([[1, 0], [0, -1]], dtype=complex),
        }
        if pauli not in table:
            raise ValueError(f"unknown Pauli {pauli!r}")
        self._apply_1q(table[pauli], qubit)

    def _apply_1q(self, matrix: np.ndarray, qubit: int) -> None:
        # A unitary on the physical leg preserves both canonical conditions,
        # so no gauge movement is needed.
        self.tensors[qubit] = np.einsum("ab,lbr->lar", matrix, self.tensors[qubit])

    def _apply_2q(self, matrix: np.ndarray, qubit_a: int, qubit_b: int) -> None:
        low, high = sorted((qubit_a, qubit_b))
        if qubit_a > qubit_b:
            # Orient the matrix so index bit 1 (msb) addresses the lower site.
            matrix = matrix.reshape(2, 2, 2, 2).transpose(1, 0, 3, 2).reshape(4, 4)
        if high == low + 1:
            self._apply_2q_adjacent(matrix, low)
            return
        # Deterministic swap-in: walk the higher qubit's tensor down until it
        # sits right of the lower one, apply, then swap back out in reverse.
        for site in range(high - 1, low, -1):
            self._apply_2q_adjacent(_SWAP_MATRIX, site)
        self._apply_2q_adjacent(matrix, low)
        for site in range(low + 1, high):
            self._apply_2q_adjacent(_SWAP_MATRIX, site)

    def _apply_2q_adjacent(self, matrix: np.ndarray, site: int) -> None:
        """Contract sites ``site``/``site+1``, apply the gate, split by SVD."""
        if self.centre < site:
            self._move_centre(site)
        elif self.centre > site + 1:
            self._move_centre(site + 1)
        left = self.tensors[site]
        right = self.tensors[site + 1]
        d_left = left.shape[0]
        d_right = right.shape[2]
        theta = np.tensordot(left, right, axes=(2, 0))  # (D_l, s_i, s_i+1, D_r)
        gate = matrix.reshape(2, 2, 2, 2)
        theta = np.einsum("abcd,lcdr->labr", gate, theta)
        u, schmidt, vh = np.linalg.svd(
            theta.reshape(d_left * 2, 2 * d_right), full_matrices=False
        )
        keep = self._truncation_rank(schmidt)
        total_weight = float(np.dot(schmidt, schmidt))
        kept = schmidt[:keep]
        kept_weight = float(np.dot(kept, kept))
        if total_weight > 0.0:
            discarded = 1.0 - kept_weight / total_weight
            if discarded > _NUMERICAL_ZERO_WEIGHT:
                self.truncation_error += discarded
        # Renormalise the kept spectrum so the state norm is preserved (the
        # discarded weight is tracked separately, not silently leaked).
        if kept_weight > 0.0:
            kept = kept * math.sqrt(total_weight / kept_weight)
        self.tensors[site] = u[:, :keep].reshape(d_left, 2, keep)
        self.tensors[site + 1] = (kept[:, None] * vh[:keep]).reshape(keep, 2, d_right)
        self.centre = site + 1
        if keep > self.max_bond_reached:
            self.max_bond_reached = keep

    def _truncation_rank(self, schmidt: np.ndarray) -> int:
        """How many Schmidt coefficients the per-bond knobs keep (>= 1)."""
        norm = float(np.linalg.norm(schmidt))
        if norm == 0.0:
            return 1
        keep = int(np.count_nonzero(schmidt > self.truncation_threshold * norm))
        keep = max(keep, 1)
        if self.max_bond is not None:
            keep = min(keep, self.max_bond)
        return keep

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def probability_of_one(self, qubit: int) -> float:
        """Marginal probability of measuring ``|1>`` on one qubit."""
        if not 0 <= qubit < self.num_qubits:
            raise IndexError(f"qubit {qubit} out of range")
        self._move_centre(qubit)
        tensor = self.tensors[qubit]
        total = float(np.vdot(tensor, tensor).real)
        ones = tensor[:, 1, :]
        return float(np.vdot(ones, ones).real) / total

    def measure(self, qubit: int, collapse: bool = True) -> int:
        """Measure one qubit in the computational basis.

        Follows the shared measurement-randomness contract: exactly one
        uniform draw, ``outcome = 1 iff draw < p_one`` — so a trajectory
        consumes the random stream identically on every engine.
        """
        prob_one = self.probability_of_one(qubit)
        outcome = 1 if self.rng.random() < prob_one else 0
        if collapse:
            self.collapse(qubit, outcome)
        return outcome

    def collapse(self, qubit: int, outcome: int) -> None:
        """Project onto ``|outcome>`` of ``qubit`` and renormalise."""
        if outcome not in (0, 1):
            raise ValueError(f"measurement outcome must be 0 or 1, got {outcome}")
        self._move_centre(qubit)
        tensor = self.tensors[qubit].copy()
        tensor[:, 1 - outcome, :] = 0.0
        norm = float(np.linalg.norm(tensor))
        if norm < 1e-12:
            raise ValueError(f"cannot collapse qubit {qubit} to {outcome}: zero probability")
        # The projector only touches the centre tensor, so the canonical
        # structure of the rest of the chain is untouched.
        self.tensors[qubit] = tensor / norm

    def expectation_z(self, qubit: int) -> float:
        return 1.0 - 2.0 * self.probability_of_one(qubit)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample_bits(self, shots: int) -> np.ndarray:
        """Sample ``shots`` full-register outcomes without collapsing.

        Right-to-left conditional (perfect) sampling: with the centre parked
        on the last site, every site left of a partially-sampled suffix is
        left-canonical, so the conditional outcome distribution at site ``i``
        is read from ``A[i]`` contracted with the per-shot boundary vector
        of the outcomes already drawn.  Returns a ``(shots, num_qubits)``
        int64 array (column ``q`` = qubit ``q``).
        """
        if shots < 1:
            raise ValueError("shots must be >= 1")
        self._move_centre(self.num_qubits - 1)
        bits = np.zeros((shots, self.num_qubits), dtype=np.int64)
        # Per-shot boundary vector over the right bond of the current site.
        boundary = np.ones((shots, 1), dtype=complex)
        for site in range(self.num_qubits - 1, -1, -1):
            tensor = self.tensors[site]
            # (D_l, s, D_r) x (shots, D_r) -> (shots, D_l, s)
            conditioned = np.einsum("lsr,nr->nls", tensor, boundary, optimize=True)
            weights = np.sum(np.abs(conditioned) ** 2, axis=1)  # (shots, 2)
            totals = weights.sum(axis=1)
            prob_one = np.divide(
                weights[:, 1], totals, out=np.zeros_like(totals), where=totals > 0
            )
            outcomes = (self.rng.random(shots) < prob_one).astype(np.int64)
            bits[:, site] = outcomes
            boundary = conditioned[np.arange(shots), :, outcomes]
            norms = np.linalg.norm(boundary, axis=1, keepdims=True)
            boundary = np.divide(boundary, norms, out=boundary, where=norms > 0)
        return bits

    def sample_counts(self, shots: int, qubits: tuple[int, ...] | None = None) -> dict[str, int]:
        """Histogram of sampled outcomes over ``qubits`` (default: all).

        Key layout matches :meth:`StateVector.sample_counts`: character ``j``
        of a key is qubit ``qubits[-1 - j]`` (the last listed qubit is the
        leftmost character).
        """
        bits = self.sample_bits(shots)
        targets = qubits if qubits is not None else tuple(range(self.num_qubits))
        if not targets:
            return {"": shots}
        # bits_histogram keys column list reversed(sorted); feed it columns
        # relabelled so that position matches the requested target order.
        ordered = bits[:, list(targets)]
        return bits_histogram(ordered, tuple(range(len(targets))))

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def bond_dimensions(self) -> list[int]:
        """Current bond dimension at each of the ``n - 1`` internal bonds."""
        return [self.tensors[i].shape[2] for i in range(self.num_qubits - 1)]

    def schmidt_values(self, bond: int) -> np.ndarray:
        """Schmidt coefficients across the cut between sites ``bond``/``bond+1``."""
        if not 0 <= bond < self.num_qubits - 1:
            raise IndexError(f"bond {bond} out of range")
        self._move_centre(bond)
        tensor = self.tensors[bond]
        d_left, _, d_right = tensor.shape
        return np.linalg.svd(tensor.reshape(d_left * 2, d_right), compute_uv=False)

    def norm(self) -> float:
        self._move_centre(0)
        return float(np.linalg.norm(self.tensors[0]))

    def to_statevector(self) -> np.ndarray:
        """Materialise the dense ``2**n`` amplitude vector (small n only)."""
        if self.num_qubits > DENSE_MATERIALISE_LIMIT:
            raise ValueError(
                f"cannot materialise a dense state beyond {DENSE_MATERIALISE_LIMIT} qubits"
            )
        psi = np.ones((1, 1), dtype=complex)
        for tensor in self.tensors:
            # (dim, D) x (D, s, D') -> (s, dim, D') flattened with the new
            # qubit as the most significant of the accumulated little-endian
            # index block.
            grown = np.einsum("jc,csd->sjd", psi, tensor)
            psi = grown.reshape(-1, tensor.shape[2])
        return psi.reshape(-1)

    def fidelity(self, other: "MPSState | np.ndarray") -> float:
        """Squared overlap with another state (dense or MPS, small n)."""
        other_vector = other.to_statevector() if isinstance(other, MPSState) else other
        return float(abs(np.vdot(self.to_statevector(), np.asarray(other_vector))) ** 2)


class MPSSimulator:
    """Multi-shot circuit simulator on the MPS engine.

    The standalone front-end mirroring :class:`~repro.qx.stabilizer
    .StabilizerSimulator`: takes a :class:`~repro.core.circuit.Circuit`,
    returns a histogram keyed by the shared convention.  Full-stack
    execution (error models, lowered programs, auto-dispatch) goes through
    :class:`~repro.qx.simulator.QXSimulator` with ``backend="mps"``.
    """

    def __init__(
        self,
        max_bond: int | None = None,
        truncation_threshold: float = DEFAULT_TRUNCATION_THRESHOLD,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.max_bond = max_bond
        self.truncation_threshold = truncation_threshold
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        #: Truncation error and peak bond dimension of the last run() call.
        self.last_truncation_error = 0.0
        self.last_max_bond_reached = 1

    def _fresh_state(self, num_qubits: int) -> MPSState:
        return MPSState(
            num_qubits,
            max_bond=self.max_bond,
            truncation_threshold=self.truncation_threshold,
            rng=self.rng,
        )

    def run(self, circuit: Circuit, shots: int = 1) -> dict[str, int]:
        """Execute a circuit and histogram the measured bit-strings.

        Terminal-measurement circuits run one MPS evolution and draw all
        shots by conditional sampling; mid-circuit measurement or classical
        feedback falls back to per-shot trajectories.
        """
        if shots < 1:
            raise ValueError("shots must be >= 1")
        if _needs_trajectories(circuit):
            return self._run_trajectories(circuit, shots)
        state = self._fresh_state(circuit.num_qubits)
        bit_sources: dict[int, int] = {}
        for op in circuit.operations:
            if isinstance(op, GateOperation):
                state.apply_gate(np.asarray(op.gate.matrix, dtype=complex), op.qubits)
            elif isinstance(op, Measurement):
                bit_sources[op.bit] = op.qubit
        self.last_truncation_error = state.truncation_error
        self.last_max_bond_reached = state.max_bond_reached
        if not bit_sources:
            return {}
        samples = state.sample_bits(shots)
        num_bits = max(bit_sources) + 1
        all_bits = np.zeros((shots, num_bits), dtype=np.int64)
        for bit, source in bit_sources.items():
            all_bits[:, bit] = samples[:, source]
        return bits_histogram(all_bits, tuple(sorted(bit_sources)))

    def _run_trajectories(self, circuit: Circuit, shots: int) -> dict[str, int]:
        counts: dict[str, int] = {}
        truncation = 0.0
        peak = 1
        for _ in range(shots):
            state = self._fresh_state(circuit.num_qubits)
            bits: dict[int, int] = {}
            for op in circuit.operations:
                if isinstance(op, GateOperation):
                    state.apply_gate(np.asarray(op.gate.matrix, dtype=complex), op.qubits)
                elif isinstance(op, Measurement):
                    bits[op.bit] = state.measure(op.qubit)
                elif isinstance(op, ConditionalGate):
                    if bits.get(op.condition_bit, 0):
                        state.apply_gate(np.asarray(op.gate.matrix, dtype=complex), op.qubits)
            truncation += state.truncation_error
            peak = max(peak, state.max_bond_reached)
            if bits:
                key = key_for_bit_values(bits)
                counts[key] = counts.get(key, 0) + 1
        self.last_truncation_error = truncation / shots
        self.last_max_bond_reached = peak
        return counts


def _needs_trajectories(circuit: Circuit) -> bool:
    measured: set[int] = set()
    for op in circuit.operations:
        if isinstance(op, Measurement):
            measured.add(op.qubit)
        elif isinstance(op, ConditionalGate):
            return True
        elif isinstance(op, GateOperation) and measured.intersection(op.qubits):
            return True
    return False
