"""The QX simulator front-end.

Executes :class:`~repro.core.circuit.Circuit` objects (or parsed cQASM
programs) against the state-vector engine, with or without error models,
and aggregates multi-shot measurement statistics — the role QX plays in the
paper's full stack: the micro-architecture sends it instructions, it
executes them, measures, and returns results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.circuit import Circuit
from repro.core.operations import (
    Barrier,
    ClassicalOperation,
    ConditionalGate,
    GateOperation,
    Measurement,
)
from repro.core.qubits import PERFECT, QubitModel
from repro.qx.error_models import ErrorModel, NoError, error_model_for
from repro.qx.statevector import StateVector


@dataclass
class SimulationResult:
    """Outcome of one or more shots of a circuit."""

    num_qubits: int
    shots: int
    counts: dict[str, int] = field(default_factory=dict)
    final_state: np.ndarray | None = None
    classical_bits: list[list[int]] = field(default_factory=list)
    errors_injected: int = 0

    def probability(self, bitstring: str) -> float:
        return self.counts.get(bitstring, 0) / max(self.shots, 1)

    def most_frequent(self) -> str:
        if not self.counts:
            raise ValueError("no measurement results recorded")
        return max(self.counts.items(), key=lambda item: item[1])[0]

    def expectation_z(self, qubit: int) -> float:
        """Average Z expectation of a qubit over the recorded shots."""
        if not self.classical_bits:
            raise ValueError("no per-shot classical bits recorded")
        total = 0.0
        for bits in self.classical_bits:
            total += 1.0 - 2.0 * bits[qubit]
        return total / len(self.classical_bits)

    def success_probability(self, target: str) -> float:
        """Fraction of shots that produced the target bit-string."""
        return self.probability(target)


class QXSimulator:
    """Multi-shot circuit simulator with pluggable error models."""

    def __init__(
        self,
        num_qubits: int | None = None,
        error_model: ErrorModel | None = None,
        qubit_model: QubitModel | None = None,
        seed: int | None = None,
    ):
        if error_model is not None and qubit_model is not None:
            raise ValueError("pass either error_model or qubit_model, not both")
        if qubit_model is not None:
            error_model = error_model_for(qubit_model)
        self.error_model = error_model or NoError()
        self.qubit_model = qubit_model or PERFECT
        self.num_qubits = num_qubits
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def run(
        self,
        circuit: Circuit,
        shots: int = 1,
        keep_final_state: bool = False,
        initial_state: np.ndarray | None = None,
    ) -> SimulationResult:
        """Execute ``circuit`` for ``shots`` repetitions.

        When the error model is trivial and the circuit has no mid-circuit
        measurement feedback, all shots share a single state-vector
        evolution and the measurement histogram is sampled from the final
        distribution, which is exponentially cheaper than re-running.
        """
        if shots < 1:
            raise ValueError("shots must be >= 1")
        num_qubits = self.num_qubits or circuit.num_qubits
        if circuit.num_qubits > num_qubits:
            raise ValueError("circuit does not fit the simulator register")

        needs_trajectories = _has_mid_circuit_measurement(circuit) or any(
            isinstance(op, ConditionalGate) for op in circuit.operations
        )
        deterministic = isinstance(self.error_model, NoError) and not needs_trajectories
        if deterministic:
            return self._run_sampled(circuit, num_qubits, shots, keep_final_state, initial_state)
        return self._run_trajectories(circuit, num_qubits, shots, keep_final_state, initial_state)

    # ------------------------------------------------------------------ #
    def _run_sampled(self, circuit, num_qubits, shots, keep_final_state, initial_state):
        state = StateVector(num_qubits, rng=self.rng)
        if initial_state is not None:
            state.set_state(initial_state)
        for op in circuit.operations:
            if isinstance(op, GateOperation):
                state.apply_gate(op.gate.matrix, op.qubits)
        measured = [op for op in circuit.operations if isinstance(op, Measurement)]
        result = SimulationResult(num_qubits=num_qubits, shots=shots)
        if measured:
            qubits = tuple(op.qubit for op in measured)
            result.counts = state.sample_counts(shots, qubits=qubits)
            result.classical_bits = _counts_to_bits(result.counts, qubits, shots)
        if keep_final_state or not measured:
            result.final_state = state.amplitudes.copy()
        return result

    def _run_trajectories(self, circuit, num_qubits, shots, keep_final_state, initial_state):
        result = SimulationResult(num_qubits=num_qubits, shots=shots)
        for _ in range(shots):
            state = StateVector(num_qubits, rng=self.rng)
            if initial_state is not None:
                state.set_state(initial_state)
            bits = [0] * max(circuit.num_bits, num_qubits)
            measured_any = False
            for op in circuit.operations:
                if isinstance(op, ConditionalGate):
                    if bits[op.condition_bit]:
                        state.apply_gate(op.gate.matrix, op.qubits)
                        result.errors_injected += self.error_model.apply_after_gate(
                            state, op.qubits, op.duration, self.rng
                        )
                elif isinstance(op, GateOperation):
                    state.apply_gate(op.gate.matrix, op.qubits)
                    result.errors_injected += self.error_model.apply_after_gate(
                        state, op.qubits, op.duration, self.rng
                    )
                elif isinstance(op, Measurement):
                    outcome = state.measure(op.qubit)
                    outcome = self.error_model.flip_measurement(outcome, self.rng)
                    bits[op.bit] = outcome
                    measured_any = True
                elif isinstance(op, (Barrier, ClassicalOperation)):
                    continue
            if measured_any:
                measured_bits = [
                    op.bit for op in circuit.operations if isinstance(op, Measurement)
                ]
                ordered = sorted(set(measured_bits))
                key = "".join(str(bits[b]) for b in reversed(ordered))
                result.counts[key] = result.counts.get(key, 0) + 1
                result.classical_bits.append(list(bits))
            if keep_final_state:
                result.final_state = state.amplitudes.copy()
        return result

    # ------------------------------------------------------------------ #
    def statevector(self, circuit: Circuit) -> np.ndarray:
        """Final state vector of a measurement-free circuit (perfect qubits)."""
        state = StateVector(circuit.num_qubits, rng=self.rng)
        for op in circuit.operations:
            if isinstance(op, Measurement):
                raise ValueError("statevector() requires a measurement-free circuit")
            if isinstance(op, GateOperation):
                state.apply_gate(op.gate.matrix, op.qubits)
        return state.amplitudes

    def fidelity_with_ideal(self, circuit: Circuit, shots: int = 1) -> float:
        """Average fidelity of noisy trajectories against the ideal final state.

        Used by the error-model benchmarks (experiment E5) to quantify how a
        given physical error rate degrades a circuit of a given depth.
        """
        ideal = QXSimulator(seed=0).statevector(_strip_measurements(circuit))
        total = 0.0
        stripped = _strip_measurements(circuit)
        for _ in range(shots):
            state = StateVector(stripped.num_qubits, rng=self.rng)
            for op in stripped.operations:
                if isinstance(op, GateOperation):
                    state.apply_gate(op.gate.matrix, op.qubits)
                    self.error_model.apply_after_gate(state, op.qubits, op.duration, self.rng)
            total += float(abs(np.vdot(ideal, state.amplitudes)) ** 2)
        return total / shots


def _has_mid_circuit_measurement(circuit: Circuit) -> bool:
    seen_measurement_qubits: set[int] = set()
    for op in circuit.operations:
        if isinstance(op, Measurement):
            seen_measurement_qubits.add(op.qubit)
        elif isinstance(op, GateOperation) and seen_measurement_qubits.intersection(op.qubits):
            return True
    return False


def _strip_measurements(circuit: Circuit) -> Circuit:
    stripped = Circuit(circuit.num_qubits, circuit.name, num_bits=circuit.num_bits)
    for op in circuit.operations:
        if not isinstance(op, Measurement):
            stripped.append(op)
    return stripped


def _counts_to_bits(counts: dict[str, int], qubits: tuple[int, ...], shots: int) -> list[list[int]]:
    """Expand a histogram into per-shot classical bit lists (qubit-indexed)."""
    all_bits: list[list[int]] = []
    size = max(qubits) + 1 if qubits else 0
    for bitstring, count in counts.items():
        bits = [0] * size
        for position, qubit in enumerate(reversed(qubits)):
            bits[qubit] = int(bitstring[len(bitstring) - 1 - position])
        all_bits.extend([list(bits)] * count)
    return all_bits[:shots]
