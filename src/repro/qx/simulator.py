"""The QX simulator front-end.

Executes :class:`~repro.core.circuit.Circuit` objects (or parsed cQASM
programs) against a pluggable set of simulation engines, with or without
error models, and aggregates multi-shot measurement statistics — the role
QX plays in the paper's full stack: the micro-architecture sends it
instructions, it executes them, measures, and returns results.

Four engines sit behind one front-end: the dense state vector (exact, up
to 26 qubits), the stabilizer tableau (Clifford-only, hundreds of qubits),
the density matrix (exact compiled channels, 16 qubits) and the
matrix-product state (low-entanglement circuits on 50-100+ qubits).  Which engine runs a
circuit is decided by the :class:`~repro.qx.backends.DispatchPolicy` cost
model, overridable per call with ``backend=``; every engine emits
histograms under the shared :mod:`repro.qx.keying` convention, so routing
only ever changes the cost, never the result format.

Circuits are lowered once through :mod:`repro.qx.compiled` before dense or
MPS execution: the deterministic path runs a single evolution and samples
the final distribution; the trajectory path re-executes the precompiled
(unfused, so every gate keeps its error-injection point) program per shot
without re-dispatching circuit objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.circuit import Circuit
from repro.core.operations import Measurement
from repro.core.qubits import PERFECT, QubitModel
from repro.qx import kernels
from repro.qx.backends import (
    DispatchPolicy,
    UnsupportedBackendError,
    capability_matrix,
    profile_circuit,
    profile_program,
)
from repro.qx.channels import compile_channels
from repro.qx.compiled import COND_GATE, GATE, MEASURE, program_for
from repro.qx.density import DensityMatrixSimulator
from repro.qx.error_models import (
    ErrorModel,
    NoError,
    error_model_for,
    noise_kind,
)
from repro.qx.keying import bits_histogram, counts_to_bits, sample_index_counts
from repro.qx.mps import MPSState
from repro.qx.stabilizer import StabilizerSimulator
from repro.qx.statevector import StateVector

#: Back-compat aliases: the dispatch thresholds now live on
#: :class:`~repro.qx.backends.DispatchPolicy`; these constants mirror the
#: default policy's values for code that still reads them.
STABILIZER_DISPATCH_MIN_QUBITS = DispatchPolicy.stabilizer_min_qubits
STABILIZER_DISPATCH_SAMPLED_MIN_QUBITS = DispatchPolicy.stabilizer_sampled_min_qubits


@dataclass
class SimulationResult:
    """Outcome of one or more shots of a circuit."""

    num_qubits: int
    shots: int
    counts: dict[str, int] = field(default_factory=dict)
    final_state: np.ndarray | None = None
    classical_bits: list[list[int]] = field(default_factory=list)
    errors_injected: int = 0
    #: Which engine executed the shots.
    backend: str = "statevector"
    #: Cumulative discarded Schmidt weight of an MPS run (averaged over
    #: shots on the trajectory path); 0.0 for exact engines.
    truncation_error: float = 0.0

    def probability(self, bitstring: str) -> float:
        return self.counts.get(bitstring, 0) / max(self.shots, 1)

    def most_frequent(self) -> str:
        if not self.counts:
            raise ValueError("no measurement results recorded")
        return max(self.counts.items(), key=lambda item: item[1])[0]

    def expectation_z(self, qubit: int) -> float:
        """Average Z expectation of a qubit over the recorded shots."""
        if not self.classical_bits:
            raise ValueError("no per-shot classical bits recorded")
        bits = np.asarray(self.classical_bits)
        return float(np.mean(1.0 - 2.0 * bits[:, qubit]))

    def success_probability(self, target: str) -> float:
        """Fraction of shots that produced the target bit-string."""
        return self.probability(target)


class QXSimulator:
    """Multi-shot circuit simulator with pluggable engines and error models.

    ``backend`` fixes the engine for every run of this simulator
    (``"statevector"``, ``"stabilizer"``, ``"density"`` or ``"mps"``);
    ``None`` lets the dispatch ``policy`` choose per circuit.  ``max_bond``
    and ``truncation_threshold`` are the MPS accuracy knobs (``None``
    inherits the policy defaults: unbounded bond, i.e. exact).
    ``channel_fusion`` controls whether density-engine runs fuse each gate
    with its trailing noise channels into one superoperator per position
    (on by default; off keeps every channel a separate application — the
    benchmark baseline, never a different answer).
    """

    def __init__(
        self,
        num_qubits: int | None = None,
        error_model: ErrorModel | None = None,
        qubit_model: QubitModel | None = None,
        seed: int | np.random.SeedSequence | None = None,
        backend: str | None = None,
        max_bond: int | None = None,
        truncation_threshold: float | None = None,
        policy: DispatchPolicy | None = None,
        channel_fusion: bool = True,
    ):
        if error_model is not None and qubit_model is not None:
            raise ValueError("pass either error_model or qubit_model, not both")
        if qubit_model is not None:
            error_model = error_model_for(qubit_model)
        self.error_model = error_model or NoError()
        self.qubit_model = qubit_model or PERFECT
        self.num_qubits = num_qubits
        self.rng = np.random.default_rng(seed)
        self.backend = backend
        self.max_bond = max_bond
        self.truncation_threshold = truncation_threshold
        self.policy = policy if policy is not None else DispatchPolicy()
        self.channel_fusion = channel_fusion

    def _dispatch_policy(self) -> DispatchPolicy:
        """The policy with this simulator's MPS knobs folded in.

        A simulator-level ``max_bond`` is an explicit accuracy opt-in (auto
        dispatch stays exact only for a default-configured simulator); it
        must also feed the cost model, so the engine is chosen on the
        configuration that will actually run.
        """
        if self.max_bond is None and self.truncation_threshold is None:
            return self.policy
        from dataclasses import replace

        changes: dict = {}
        if self.max_bond is not None:
            changes["mps_max_bond"] = self.max_bond
        if self.truncation_threshold is not None:
            changes["mps_truncation_threshold"] = self.truncation_threshold
        return replace(self.policy, **changes)

    # ------------------------------------------------------------------ #
    def _noise_kind(self) -> str:
        return noise_kind(self.error_model)

    # ------------------------------------------------------------------ #
    def run(
        self,
        circuit: Circuit,
        shots: int = 1,
        keep_final_state: bool = False,
        initial_state: np.ndarray | None = None,
        backend: str | None = None,
    ) -> SimulationResult:
        """Execute ``circuit`` for ``shots`` repetitions.

        When the error model is trivial and the circuit has no mid-circuit
        measurement feedback, all shots share a single evolution and the
        measurement histogram is sampled from the final distribution, which
        is exponentially cheaper than re-running.

        The engine is chosen by the dispatch policy's cost model — dense
        state vector while it fits, the stabilizer tableau for QEC-scale
        Clifford circuits, the MPS engine beyond the dense wall — or fixed
        with ``backend=``.  An explicitly requested backend that cannot run
        the circuit raises :class:`~repro.qx.backends
        .UnsupportedBackendError` with the capability matrix instead of
        falling back silently.
        """
        if shots < 1:
            raise ValueError("shots must be >= 1")
        num_qubits = self.num_qubits or circuit.num_qubits
        if circuit.num_qubits > num_qubits:
            raise ValueError("circuit does not fit the simulator register")

        # Compile with fusion only when the error model permits it, so noisy
        # runs never pay for (or cache) a fused program they cannot use.
        noise_free = isinstance(self.error_model, NoError)
        program = program_for(circuit, fuse=noise_free)
        requested = backend if backend is not None else self.backend
        policy = self._dispatch_policy()
        # The Clifford scan is only paid when its result can matter: on an
        # explicit stabilizer request, or when auto-dispatch is in tableau
        # territory (noise-free at/above the trajectory threshold).
        clifford_matters = requested == "stabilizer" or (
            requested is None
            and noise_free
            and num_qubits >= policy.stabilizer_min_qubits
        )
        profile = profile_circuit(
            circuit,
            shots=shots,
            num_qubits=num_qubits,
            noise=self._noise_kind(),
            has_initial_state=initial_state is not None,
            keep_final_state=keep_final_state,
            is_clifford=None if clifford_matters else False,
        )
        if requested is None:
            name = policy.choose(profile)
        else:
            name = policy.validate(requested, profile)
        if name == "stabilizer":
            return self._run_stabilizer(circuit, num_qubits, shots)
        if name == "mps":
            return self._run_mps(program, num_qubits, shots, keep_final_state)
        if name == "density":
            return self._run_density(program, num_qubits, shots)
        if noise_free and not program.needs_trajectories:
            return self._run_sampled(program, num_qubits, shots, keep_final_state, initial_state)
        if program.fused:
            program = program_for(circuit, fuse=False)
        return self._run_trajectories(program, num_qubits, shots, keep_final_state, initial_state)

    def run_program(
        self,
        program,
        shots: int = 1,
        num_qubits: int | None = None,
        keep_final_state: bool = False,
        initial_state: np.ndarray | None = None,
        backend: str | None = None,
    ) -> SimulationResult:
        """Execute an already-lowered :class:`~repro.qx.compiled.KernelProgram`.

        The entry point used by the parallel experiment runtime
        (:mod:`repro.runtime`), whose workers cache lowered programs on disk
        and must not pay circuit re-lowering per shard.  A lowered program
        carries gate matrices, not names, so the stabilizer tableau cannot
        execute it (run QEC-scale Clifford workloads through :meth:`run` or
        the runtime's ``qec`` experiment kind); the dense, density-matrix
        and MPS engines all can, and auto-dispatch picks between the dense
        engine (within its 26-qubit wall) and the MPS engine (beyond it).
        Noisy execution requires an *unfused* program, because gate fusion
        removes error-injection points.
        """
        if shots < 1:
            raise ValueError("shots must be >= 1")
        register = num_qubits or self.num_qubits or program.num_qubits
        if program.num_qubits > register:
            raise ValueError("program does not fit the simulator register")
        noise_free = isinstance(self.error_model, NoError)
        requested = backend if backend is not None else self.backend
        if requested == "stabilizer":
            raise UnsupportedBackendError(
                "the stabilizer engine cannot execute lowered programs (they carry "
                "gate matrices, not names); run the circuit through "
                f"QXSimulator.run instead\n\n{capability_matrix()}"
            )
        policy = self._dispatch_policy()
        profile = profile_program(
            program,
            shots=shots,
            num_qubits=register,
            noise=self._noise_kind(),
            has_initial_state=initial_state is not None,
            keep_final_state=keep_final_state,
        )
        if requested is None:
            name = policy.choose(profile)
        else:
            name = policy.validate(requested, profile)
        if not noise_free and program.fused:
            raise ValueError(
                "noisy execution requires an unfused program (lower with fuse=False)"
            )
        if name == "mps":
            return self._run_mps(program, register, shots, keep_final_state)
        if name == "density":
            return self._run_density(program, register, shots)
        if noise_free and not program.needs_trajectories:
            return self._run_sampled(program, register, shots, keep_final_state, initial_state)
        return self._run_trajectories(program, register, shots, keep_final_state, initial_state)

    # ------------------------------------------------------------------ #
    def _run_sampled(self, program, num_qubits, shots, keep_final_state, initial_state):
        state = StateVector(num_qubits, rng=self.rng)
        if initial_state is not None:
            state.set_state(initial_state)
        state.amplitudes = program.apply_unitaries(state.amplitudes)
        result = SimulationResult(num_qubits=num_qubits, shots=shots)
        if program.num_measurements:
            # Key the histogram by *classical bit*, exactly as the trajectory
            # path does: character j of a key is the source qubit's value for
            # bit sorted(bits)[-1-j] (lowest bit rightmost).  With the default
            # bit == qubit mapping this is plain ascending qubit order.
            ordered_bits, sources = program.sample_sources()
            result.counts = state.sample_counts(shots, qubits=sources)
            result.classical_bits = counts_to_bits(
                result.counts,
                tuple(ordered_bits),
                shots,
                size=max(program.num_bits, num_qubits),
            )
        if keep_final_state or not program.num_measurements:
            result.final_state = state.amplitudes.copy()
        return result

    def _run_trajectories(self, program, num_qubits, shots, keep_final_state, initial_state):
        result = SimulationResult(num_qubits=num_qubits, shots=shots)
        num_bits = max(program.num_bits, num_qubits)
        measured_any = program.num_measurements > 0
        all_bits = np.zeros((shots, num_bits), dtype=np.int64)
        error_model = self.error_model
        rng = self.rng
        errors = 0
        for shot in range(shots):
            state = StateVector(num_qubits, rng=rng)
            if initial_state is not None:
                state.set_state(initial_state)
            bits = all_bits[shot]
            for op in program.ops:
                kind = op.kind
                if kind == GATE:
                    state.amplitudes = kernels.apply_gate_inplace(
                        state.amplitudes, op.matrix, op.qubits, structure=op.structure
                    )
                    errors += error_model.apply_after_gate(state, op.qubits, op.duration, rng)
                elif kind == MEASURE:
                    outcome = state.measure(op.qubits[0])
                    outcome = error_model.flip_measurement(outcome, rng)
                    bits[op.bit] = outcome
                elif kind == COND_GATE:
                    if bits[op.condition_bit]:
                        state.amplitudes = kernels.apply_gate_inplace(
                            state.amplitudes, op.matrix, op.qubits, structure=op.structure
                        )
                        errors += error_model.apply_after_gate(
                            state, op.qubits, op.duration, rng
                        )
            if keep_final_state and shot == shots - 1:
                result.final_state = state.amplitudes.copy()
        result.errors_injected = errors
        if measured_any:
            result.counts = bits_histogram(all_bits, program.measured_bits)
            result.classical_bits = all_bits.tolist()
        return result

    def _run_stabilizer(self, circuit, num_qubits, shots):
        """Per-shot tableau execution of a noise-free Clifford circuit.

        Gate/measurement/feedback semantics are
        :meth:`~repro.qx.stabilizer.StabilizerSimulator._run_shot` — one
        source of truth with the standalone engine — and the histogram block
        is shared with :meth:`_run_trajectories`, so routing a circuit to
        the tableau engine changes only the cost, never the result format.
        """
        engine = StabilizerSimulator(rng=self.rng)
        num_bits = max(circuit.num_bits, num_qubits)
        all_bits = np.zeros((shots, num_bits), dtype=np.int64)
        written: set[int] = set()
        for shot in range(shots):
            for bit, value in engine._run_shot(circuit).items():
                all_bits[shot, bit] = value
                written.add(bit)
        result = SimulationResult(num_qubits=num_qubits, shots=shots, backend="stabilizer")
        result.counts = bits_histogram(all_bits, tuple(sorted(written)))
        result.classical_bits = all_bits.tolist()
        return result

    # ------------------------------------------------------------------ #
    def _mps_state(self, num_qubits) -> MPSState:
        policy = self._dispatch_policy()
        return MPSState(
            num_qubits,
            max_bond=policy.mps_max_bond,
            truncation_threshold=policy.mps_truncation_threshold,
            rng=self.rng,
        )

    def _run_mps(self, program, num_qubits, shots, keep_final_state):
        """Execute a lowered program on the matrix-product-state engine.

        The sampled path (noise-free, terminal measurements) runs one MPS
        evolution and draws every shot by right-to-left conditional
        sampling; feedback or noise falls back to per-shot trajectories with
        the same error-model hooks as the dense engine (MPS states expose
        ``apply_pauli`` and ``measure``).
        """
        noise_free = isinstance(self.error_model, NoError)
        result = SimulationResult(num_qubits=num_qubits, shots=shots, backend="mps")
        num_bits = max(program.num_bits, num_qubits)
        if noise_free and not program.needs_trajectories:
            state = self._mps_state(num_qubits)
            for op in program.ops:
                if op.kind == GATE:
                    state.apply_gate(op.matrix, op.qubits)
            if program.num_measurements:
                samples = state.sample_bits(shots)
                all_bits = np.zeros((shots, num_bits), dtype=np.int64)
                for bit, source in program.bit_sources.items():
                    all_bits[:, bit] = samples[:, source]
                result.counts = bits_histogram(all_bits, tuple(sorted(program.bit_sources)))
                result.classical_bits = all_bits.tolist()
            result.truncation_error = state.truncation_error
            if keep_final_state or not program.num_measurements:
                result.final_state = state.to_statevector()
            return result

        all_bits = np.zeros((shots, num_bits), dtype=np.int64)
        error_model = self.error_model
        rng = self.rng
        errors = 0
        truncation = 0.0
        for shot in range(shots):
            state = self._mps_state(num_qubits)
            bits = all_bits[shot]
            for op in program.ops:
                kind = op.kind
                if kind == GATE:
                    state.apply_gate(op.matrix, op.qubits)
                    errors += error_model.apply_after_gate(state, op.qubits, op.duration, rng)
                elif kind == MEASURE:
                    outcome = state.measure(op.qubits[0])
                    outcome = error_model.flip_measurement(outcome, rng)
                    bits[op.bit] = outcome
                elif kind == COND_GATE:
                    if bits[op.condition_bit]:
                        state.apply_gate(op.matrix, op.qubits)
                        errors += error_model.apply_after_gate(
                            state, op.qubits, op.duration, rng
                        )
            truncation += state.truncation_error
            if keep_final_state and shot == shots - 1:
                result.final_state = state.to_statevector()
        result.errors_injected = errors
        result.truncation_error = truncation / shots
        if program.num_measurements:
            result.counts = bits_histogram(all_bits, program.measured_bits)
            result.classical_bits = all_bits.tolist()
        return result

    def _run_density(self, program, num_qubits, shots):
        """Exact ensemble execution on the density-matrix engine.

        The program compiles into one channel program — each gate's PTM
        fused with its trailing noise channels (``channel_fusion=False``
        keeps every channel a separate op) — and evolves the Pauli
        coefficient vector once, flat in shots.  No stochastic injection,
        so ``errors_injected`` stays 0; read-out error becomes the compiled
        classical confusion matrix applied to the exact outcome
        distribution before sampling under the shared keying convention.
        """
        error_model = None if isinstance(self.error_model, NoError) else self.error_model
        channels = compile_channels(
            program, error_model, num_qubits=num_qubits, fuse=self.channel_fusion
        )
        engine = DensityMatrixSimulator(num_qubits)
        engine.run_channels(channels)
        result = SimulationResult(num_qubits=num_qubits, shots=shots, backend="density")
        if program.num_measurements:
            ordered_bits, sources = program.sample_sources()
            probabilities = engine.probabilities()
            if channels.confusion is not None:
                probabilities = _confuse(probabilities, channels.confusion, sources)
            result.counts = sample_index_counts(probabilities, shots, sources, self.rng)
            result.classical_bits = counts_to_bits(
                result.counts,
                tuple(ordered_bits),
                shots,
                size=max(program.num_bits, num_qubits),
            )
        return result

    # ------------------------------------------------------------------ #
    def statevector(self, circuit: Circuit) -> np.ndarray:
        """Final state vector of a measurement-free circuit (perfect qubits)."""
        program = program_for(circuit, fuse=True)
        if program.num_measurements:
            raise ValueError("statevector() requires a measurement-free circuit")
        state = StateVector(circuit.num_qubits, rng=self.rng)
        return program.apply_unitaries(state.amplitudes)

    def fidelity_with_ideal(self, circuit: Circuit, shots: int = 1) -> float:
        """Average fidelity of noisy trajectories against the ideal final state.

        Used by the error-model benchmarks (experiment E5) to quantify how a
        given physical error rate degrades a circuit of a given depth.
        """
        stripped = _strip_measurements(circuit)
        ideal = QXSimulator(seed=0).statevector(stripped)
        program = program_for(stripped, fuse=False)
        total = 0.0
        for _ in range(shots):
            state = StateVector(stripped.num_qubits, rng=self.rng)
            for op in program.ops:
                if op.kind == GATE:
                    state.amplitudes = kernels.apply_gate_inplace(
                        state.amplitudes, op.matrix, op.qubits, structure=op.structure
                    )
                    self.error_model.apply_after_gate(state, op.qubits, op.duration, self.rng)
            total += float(abs(np.vdot(ideal, state.amplitudes)) ** 2)
        return total / shots


def _confuse(
    probabilities: np.ndarray, confusion: np.ndarray, qubits: tuple[int, ...]
) -> np.ndarray:
    """Mix a basis-state distribution through a read-out confusion matrix.

    ``probabilities`` is flat over basis indices with qubit ``q`` at bit
    ``q`` (the :func:`~repro.qx.keying.sample_index_counts` convention);
    the row-stochastic 2x2 ``confusion`` maps the true outcome of each
    measured qubit to the reported one: ``P(report b) = sum_a P(a) C[a, b]``.
    """
    probabilities = np.ascontiguousarray(probabilities)
    for qubit in sorted(set(qubits)):
        view = probabilities.reshape(-1, 2, 2**qubit)
        zero = view[:, 0, :].copy()
        one = view[:, 1, :]
        view[:, 0, :] = confusion[0, 0] * zero + confusion[1, 0] * one
        view[:, 1, :] = confusion[0, 1] * zero + confusion[1, 1] * one
    return probabilities


#: Back-compat aliases; the implementations live in :mod:`repro.qx.keying`.
_bits_histogram = bits_histogram
_counts_to_bits = counts_to_bits


def _has_mid_circuit_measurement(circuit: Circuit) -> bool:
    """Kept for API compatibility; the compiled program caches this flag."""
    return program_for(circuit, fuse=True).has_mid_circuit_measurement


def _strip_measurements(circuit: Circuit) -> Circuit:
    stripped = Circuit(circuit.num_qubits, circuit.name, num_bits=circuit.num_bits)
    for op in circuit.operations:
        if not isinstance(op, Measurement):
            stripped.append(op)
    return stripped
