"""The QX simulator front-end.

Executes :class:`~repro.core.circuit.Circuit` objects (or parsed cQASM
programs) against the state-vector engine, with or without error models,
and aggregates multi-shot measurement statistics — the role QX plays in the
paper's full stack: the micro-architecture sends it instructions, it
executes them, measures, and returns results.

Circuits are lowered once through :mod:`repro.qx.compiled` before
execution: the deterministic path runs a single fused-kernel evolution and
samples the final distribution; the trajectory path re-executes the
precompiled (unfused, so every gate keeps its error-injection point)
program per shot without re-dispatching circuit objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.circuit import Circuit
from repro.core.operations import Measurement
from repro.core.qubits import PERFECT, QubitModel
from repro.qx import kernels
from repro.qx.compiled import COND_GATE, GATE, MEASURE, program_for
from repro.qx.error_models import ErrorModel, NoError, error_model_for
from repro.qx.stabilizer import StabilizerSimulator
from repro.qx.statevector import StateVector

#: Register size above which a noise-free all-Clifford circuit that *forces
#: per-shot trajectories* (mid-circuit measurement or conditional feedback)
#: is routed to the stabilizer tableau engine: the state-vector trajectory
#: path pays O(shots * 2**n) there, so the tableau wins for any shot count.
STABILIZER_DISPATCH_MIN_QUBITS = 21

#: Register size above which even *sampled-path-eligible* Clifford circuits
#: (terminal measurements only) go to the tableau.  The sampled path is one
#: O(2**n) evolution regardless of shots — cheaper than per-shot tableau
#: runs at moderate sizes — so dispatch waits until the amplitude array
#: itself becomes the problem (2**26 complex doubles = 1 GiB).
STABILIZER_DISPATCH_SAMPLED_MIN_QUBITS = 26


@dataclass
class SimulationResult:
    """Outcome of one or more shots of a circuit."""

    num_qubits: int
    shots: int
    counts: dict[str, int] = field(default_factory=dict)
    final_state: np.ndarray | None = None
    classical_bits: list[list[int]] = field(default_factory=list)
    errors_injected: int = 0

    def probability(self, bitstring: str) -> float:
        return self.counts.get(bitstring, 0) / max(self.shots, 1)

    def most_frequent(self) -> str:
        if not self.counts:
            raise ValueError("no measurement results recorded")
        return max(self.counts.items(), key=lambda item: item[1])[0]

    def expectation_z(self, qubit: int) -> float:
        """Average Z expectation of a qubit over the recorded shots."""
        if not self.classical_bits:
            raise ValueError("no per-shot classical bits recorded")
        bits = np.asarray(self.classical_bits)
        return float(np.mean(1.0 - 2.0 * bits[:, qubit]))

    def success_probability(self, target: str) -> float:
        """Fraction of shots that produced the target bit-string."""
        return self.probability(target)


class QXSimulator:
    """Multi-shot circuit simulator with pluggable error models."""

    def __init__(
        self,
        num_qubits: int | None = None,
        error_model: ErrorModel | None = None,
        qubit_model: QubitModel | None = None,
        seed: int | np.random.SeedSequence | None = None,
    ):
        if error_model is not None and qubit_model is not None:
            raise ValueError("pass either error_model or qubit_model, not both")
        if qubit_model is not None:
            error_model = error_model_for(qubit_model)
        self.error_model = error_model or NoError()
        self.qubit_model = qubit_model or PERFECT
        self.num_qubits = num_qubits
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def run(
        self,
        circuit: Circuit,
        shots: int = 1,
        keep_final_state: bool = False,
        initial_state: np.ndarray | None = None,
    ) -> SimulationResult:
        """Execute ``circuit`` for ``shots`` repetitions.

        When the error model is trivial and the circuit has no mid-circuit
        measurement feedback, all shots share a single state-vector
        evolution and the measurement histogram is sampled from the final
        distribution, which is exponentially cheaper than re-running.

        Noise-free circuits built entirely from Clifford gates are routed to
        the stabilizer tableau engine once the register exceeds
        :data:`STABILIZER_DISPATCH_MIN_QUBITS` — QEC-scale Clifford circuits
        run in polynomial time instead of exhausting memory on a ``2**n``
        state vector, with the same histogram keying convention.
        """
        if shots < 1:
            raise ValueError("shots must be >= 1")
        num_qubits = self.num_qubits or circuit.num_qubits
        if circuit.num_qubits > num_qubits:
            raise ValueError("circuit does not fit the simulator register")

        # Compile with fusion only when the error model permits it, so noisy
        # runs never pay for (or cache) a fused program they cannot use.
        noise_free = isinstance(self.error_model, NoError)
        program = program_for(circuit, fuse=noise_free)
        if (
            noise_free
            and initial_state is None
            and not keep_final_state
            and num_qubits >= STABILIZER_DISPATCH_MIN_QUBITS
            and program.num_measurements
            and StabilizerSimulator.is_clifford_circuit(circuit)
        ):
            # Trajectory-forcing circuits beat the state vector immediately;
            # sampled-eligible ones only once the amplitude array itself is
            # the bottleneck (the sampled path is flat in the shot count).
            threshold = (
                STABILIZER_DISPATCH_MIN_QUBITS
                if program.needs_trajectories
                else STABILIZER_DISPATCH_SAMPLED_MIN_QUBITS
            )
            if num_qubits >= threshold:
                return self._run_stabilizer(circuit, num_qubits, shots)
        if noise_free and not program.needs_trajectories:
            return self._run_sampled(program, num_qubits, shots, keep_final_state, initial_state)
        if program.fused:
            program = program_for(circuit, fuse=False)
        return self._run_trajectories(program, num_qubits, shots, keep_final_state, initial_state)

    def run_program(
        self,
        program,
        shots: int = 1,
        num_qubits: int | None = None,
        keep_final_state: bool = False,
        initial_state: np.ndarray | None = None,
    ) -> SimulationResult:
        """Execute an already-lowered :class:`~repro.qx.compiled.KernelProgram`.

        The entry point used by the parallel experiment runtime
        (:mod:`repro.runtime`), whose workers cache lowered programs on disk
        and must not pay circuit re-lowering per shard.  Noise-free programs
        without measurement feedback take the single-evolution sampled path;
        everything else runs per-shot trajectories.  Unlike :meth:`run`
        there is no stabilizer auto-dispatch: a lowered program carries gate
        matrices, not names, so the tableau engine cannot execute it — run
        QEC-scale Clifford workloads through :meth:`run` or the runtime's
        ``qec`` experiment kind instead.  Noisy execution requires an
        *unfused* program, because gate fusion removes error-injection
        points.
        """
        if shots < 1:
            raise ValueError("shots must be >= 1")
        register = num_qubits or self.num_qubits or program.num_qubits
        if program.num_qubits > register:
            raise ValueError("program does not fit the simulator register")
        noise_free = isinstance(self.error_model, NoError)
        if noise_free and not program.needs_trajectories:
            return self._run_sampled(program, register, shots, keep_final_state, initial_state)
        if not noise_free and program.fused:
            raise ValueError(
                "noisy execution requires an unfused program (lower with fuse=False)"
            )
        return self._run_trajectories(program, register, shots, keep_final_state, initial_state)

    # ------------------------------------------------------------------ #
    def _run_sampled(self, program, num_qubits, shots, keep_final_state, initial_state):
        state = StateVector(num_qubits, rng=self.rng)
        if initial_state is not None:
            state.set_state(initial_state)
        state.amplitudes = program.apply_unitaries(state.amplitudes)
        result = SimulationResult(num_qubits=num_qubits, shots=shots)
        if program.num_measurements:
            # Key the histogram by *classical bit*, exactly as the trajectory
            # path does: character j of a key is the source qubit's value for
            # bit sorted(bits)[-1-j] (lowest bit rightmost).  With the default
            # bit == qubit mapping this is plain ascending qubit order.
            ordered_bits = sorted(program.bit_sources)
            sources = tuple(program.bit_sources[bit] for bit in ordered_bits)
            result.counts = state.sample_counts(shots, qubits=sources)
            result.classical_bits = _counts_to_bits(result.counts, tuple(ordered_bits), shots)
        if keep_final_state or not program.num_measurements:
            result.final_state = state.amplitudes.copy()
        return result

    def _run_trajectories(self, program, num_qubits, shots, keep_final_state, initial_state):
        result = SimulationResult(num_qubits=num_qubits, shots=shots)
        num_bits = max(program.num_bits, num_qubits)
        measured_any = program.num_measurements > 0
        all_bits = np.zeros((shots, num_bits), dtype=np.int64)
        error_model = self.error_model
        rng = self.rng
        errors = 0
        for shot in range(shots):
            state = StateVector(num_qubits, rng=rng)
            if initial_state is not None:
                state.set_state(initial_state)
            bits = all_bits[shot]
            for op in program.ops:
                kind = op.kind
                if kind == GATE:
                    state.amplitudes = kernels.apply_gate_inplace(
                        state.amplitudes, op.matrix, op.qubits, structure=op.structure
                    )
                    errors += error_model.apply_after_gate(state, op.qubits, op.duration, rng)
                elif kind == MEASURE:
                    outcome = state.measure(op.qubits[0])
                    outcome = error_model.flip_measurement(outcome, rng)
                    bits[op.bit] = outcome
                elif kind == COND_GATE:
                    if bits[op.condition_bit]:
                        state.amplitudes = kernels.apply_gate_inplace(
                            state.amplitudes, op.matrix, op.qubits, structure=op.structure
                        )
                        errors += error_model.apply_after_gate(
                            state, op.qubits, op.duration, rng
                        )
            if keep_final_state and shot == shots - 1:
                result.final_state = state.amplitudes.copy()
        result.errors_injected = errors
        if measured_any:
            result.counts = _bits_histogram(all_bits, program.measured_bits)
            result.classical_bits = all_bits.tolist()
        return result

    def _run_stabilizer(self, circuit, num_qubits, shots):
        """Per-shot tableau execution of a noise-free Clifford circuit.

        Gate/measurement/feedback semantics are
        :meth:`~repro.qx.stabilizer.StabilizerSimulator._run_shot` — one
        source of truth with the standalone engine — and the histogram block
        is shared with :meth:`_run_trajectories`, so routing a circuit to
        the tableau engine changes only the cost, never the result format.
        """
        engine = StabilizerSimulator(rng=self.rng)
        num_bits = max(circuit.num_bits, num_qubits)
        all_bits = np.zeros((shots, num_bits), dtype=np.int64)
        written: set[int] = set()
        for shot in range(shots):
            for bit, value in engine._run_shot(circuit).items():
                all_bits[shot, bit] = value
                written.add(bit)
        result = SimulationResult(num_qubits=num_qubits, shots=shots)
        result.counts = _bits_histogram(all_bits, tuple(sorted(written)))
        result.classical_bits = all_bits.tolist()
        return result

    # ------------------------------------------------------------------ #
    def statevector(self, circuit: Circuit) -> np.ndarray:
        """Final state vector of a measurement-free circuit (perfect qubits)."""
        program = program_for(circuit, fuse=True)
        if program.num_measurements:
            raise ValueError("statevector() requires a measurement-free circuit")
        state = StateVector(circuit.num_qubits, rng=self.rng)
        return program.apply_unitaries(state.amplitudes)

    def fidelity_with_ideal(self, circuit: Circuit, shots: int = 1) -> float:
        """Average fidelity of noisy trajectories against the ideal final state.

        Used by the error-model benchmarks (experiment E5) to quantify how a
        given physical error rate degrades a circuit of a given depth.
        """
        stripped = _strip_measurements(circuit)
        ideal = QXSimulator(seed=0).statevector(stripped)
        program = program_for(stripped, fuse=False)
        total = 0.0
        for _ in range(shots):
            state = StateVector(stripped.num_qubits, rng=self.rng)
            for op in program.ops:
                if op.kind == GATE:
                    state.amplitudes = kernels.apply_gate_inplace(
                        state.amplitudes, op.matrix, op.qubits, structure=op.structure
                    )
                    self.error_model.apply_after_gate(state, op.qubits, op.duration, self.rng)
            total += float(abs(np.vdot(ideal, state.amplitudes)) ** 2)
        return total / shots


def _bits_histogram(all_bits: np.ndarray, ordered_bits: tuple[int, ...]) -> dict[str, int]:
    """Histogram a ``(shots, bits)`` array by the shared keying convention:
    character j of a key is bit ``ordered_bits[-1 - j]`` (lowest rightmost).

    Unique-row based: no integer packing, so the key width is not limited by
    the 63 value bits of int64.
    """
    columns = all_bits[:, list(reversed(ordered_bits))]
    rows, frequencies = np.unique(columns, axis=0, return_counts=True)
    return {
        key: int(frequency)
        for key, frequency in zip(kernels.bitstring_keys(rows), frequencies)
    }


def _has_mid_circuit_measurement(circuit: Circuit) -> bool:
    """Kept for API compatibility; the compiled program caches this flag."""
    return program_for(circuit, fuse=True).has_mid_circuit_measurement


def _strip_measurements(circuit: Circuit) -> Circuit:
    stripped = Circuit(circuit.num_qubits, circuit.name, num_bits=circuit.num_bits)
    for op in circuit.operations:
        if not isinstance(op, Measurement):
            stripped.append(op)
    return stripped


def _counts_to_bits(counts: dict[str, int], qubits: tuple[int, ...], shots: int) -> list[list[int]]:
    """Expand a histogram into per-shot classical bit lists (qubit-indexed)."""
    if not counts:
        return []
    if not qubits:
        return [[] for _ in range(min(shots, sum(counts.values())))]
    size = max(qubits) + 1
    keys = list(counts)
    repeats = np.fromiter((counts[key] for key in keys), dtype=np.int64, count=len(keys))
    characters = np.frombuffer("".join(keys).encode("ascii"), dtype=np.uint8)
    bit_rows = (characters - ord("0")).reshape(len(keys), len(qubits)).astype(np.int64)
    rows = np.zeros((len(keys), size), dtype=np.int64)
    # Column j of the bit-string corresponds to qubit reversed(qubits)[j];
    # duplicate targets resolve to the last occurrence, as in a per-entry loop.
    rows[:, list(reversed(qubits))] = bit_rows
    return np.repeat(rows, repeats, axis=0)[:shots].tolist()
