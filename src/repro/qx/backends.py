"""Simulation-backend registry, capability matrix and dispatch policy.

The stack now carries four engines — dense state vector, stabilizer
tableau, density matrix and matrix-product state — each with a different
feasibility region (qubit range, Clifford-only, noise, feedback) and a
different cost shape.  This module is the single place that knowledge
lives:

* :data:`BACKENDS` — a registry of :class:`BackendCapabilities` records,
  one per engine, rendered into error messages by
  :func:`capability_matrix`;
* :class:`CircuitProfile` — the features of one run that feasibility and
  cost depend on (size, shots, Clifford-ness, feedback, noise kind, and a
  static entanglement estimate for the MPS cost);
* :class:`DispatchPolicy` — the cost model that picks an engine per
  circuit.  It replaces the old ad-hoc ``STABILIZER_DISPATCH_*`` constants
  in :mod:`repro.qx.simulator` with one policy object whose thresholds and
  cost constants are plain fields, overridable per
  :class:`~repro.qx.simulator.QXSimulator`;
* :class:`UnsupportedBackendError` — raised (with the capability matrix in
  the message) when an explicitly requested backend cannot run a circuit,
  instead of a silent fallback or a deep numpy error.

Auto-dispatch never changes results, only cost, for a default-configured
simulator: the MPS engine is then auto-selected with an unbounded bond, so
its answers match the dense engine.  Setting ``max_bond`` (or a coarser
``truncation_threshold``) is an explicit accuracy opt-in that applies to
whichever engine ends up running — and it feeds the cost model, so the
engine is chosen on the configuration that actually executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.qx.density import DENSITY_MAX_QUBITS, gpu_available
from repro.qx.mps import DENSE_MATERIALISE_LIMIT
from repro.qx.stabilizer import StabilizerSimulator


class UnsupportedBackendError(ValueError):
    """An explicitly requested backend cannot execute the given circuit."""


@dataclass(frozen=True)
class BackendCapabilities:
    """What one simulation engine can and cannot run."""

    name: str
    description: str
    #: Inclusive qubit range (``None`` = unbounded above).
    max_qubits: int | None = None
    #: Only Clifford-group gates (H, S, CNOT, CZ, Paulis, SWAP).
    clifford_only: bool = False
    #: Which error treatments the engine supports: "none" (perfect qubits
    #: only), "trajectory" (stochastic per-shot injection), "channel"
    #: (exact compiled PTM channels plus classical read-out confusion).
    noise: str = "none"
    #: Mid-circuit measurement + classically conditioned gates.
    conditionals: bool = True
    #: Caller-provided dense initial states.
    initial_state: bool = False
    #: Can return a dense final state (``keep_final_state``).
    final_state: bool = False
    #: Can execute a lowered :class:`~repro.qx.compiled.KernelProgram`
    #: (which carries gate matrices, not names).
    programs: bool = True
    #: Largest gate arity the engine applies natively.
    max_gate_qubits: int | None = None
    #: Exact up to floating point (MPS is exact only with an unbounded bond).
    exact: bool = True


#: The engine registry.  Keys are the public backend names accepted by
#: ``QXSimulator(backend=...)``, the runtime's ``SimulationSpec.backend``
#: and the CLI's ``--backend``.
BACKENDS: dict[str, BackendCapabilities] = {
    "statevector": BackendCapabilities(
        name="statevector",
        description="dense 2**n amplitudes, in-place stride kernels",
        max_qubits=26,
        noise="trajectory",
        initial_state=True,
        final_state=True,
    ),
    "stabilizer": BackendCapabilities(
        name="stabilizer",
        description="Aaronson-Gottesman tableau, Clifford-only, O(n^2) measure",
        clifford_only=True,
        programs=False,
        max_gate_qubits=2,
    ),
    "density": BackendCapabilities(
        name="density",
        description=(
            "compiled PTM channel program over 4**n Pauli coefficients "
            + ("(numpy + cupy GPU)" if gpu_available() else "(numpy; cupy not installed)")
        ),
        max_qubits=DENSITY_MAX_QUBITS,
        noise="channel",
        conditionals=False,
    ),
    "mps": BackendCapabilities(
        name="mps",
        description="matrix-product state, per-bond Schmidt truncation",
        noise="trajectory",
        final_state=True,  # materialised densely, small registers only
        max_gate_qubits=2,
        exact=False,  # exact iff max_bond is None (auto-dispatch uses None)
    ),
}


def capability_matrix() -> str:
    """Human-readable capability table, embedded in dispatch errors."""
    header = (
        f"{'backend':12s} {'qubits':>8s} {'gates':>9s} "
        f"{'noise':>10s} {'feedback':>8s} {'exact':>6s}"
    )
    rows = [header, "-" * len(header)]
    for caps in BACKENDS.values():
        qubits = f"<= {caps.max_qubits}" if caps.max_qubits is not None else "any"
        gates = "clifford" if caps.clifford_only else (
            f"<= {caps.max_gate_qubits}q" if caps.max_gate_qubits is not None else "any"
        )
        rows.append(
            f"{caps.name:12s} {qubits:>8s} {gates:>9s} {caps.noise:>10s} "
            f"{'yes' if caps.conditionals else 'no':>8s} {'yes' if caps.exact else '*':>6s}"
        )
    rows.append("(* mps is exact when max_bond is None, approximate otherwise)")
    return "\n".join(rows)


def register_backend(capabilities: BackendCapabilities) -> None:
    """Register (or replace) a backend's capability record."""
    BACKENDS[capabilities.name] = capabilities


# ---------------------------------------------------------------------- #
# Circuit profiling
# ---------------------------------------------------------------------- #
@dataclass
class CircuitProfile:
    """The features of one run that backend feasibility and cost depend on."""

    num_qubits: int
    shots: int = 1
    gate_count: int = 0
    two_qubit_gate_count: int = 0
    num_measurements: int = 0
    needs_trajectories: bool = False
    is_clifford: bool = False
    #: "none" | "channel" | "trajectory" — how errors are modelled
    #: (see :func:`repro.qx.error_models.noise_kind`).
    noise: str = "none"
    max_gate_qubits: int = 1
    has_initial_state: bool = False
    keep_final_state: bool = False
    #: 2-qubit gate spans summed over the circuit (swap-in/out cost proxy).
    total_gate_span: int = 0
    #: ``log2`` of the static per-bond entanglement bound (see
    #: :func:`entanglement_exponent`); ``None`` when not yet computed.
    bond_exponent: int | None = None
    #: (a, b) endpoint pairs of 2-qubit gates, kept for lazy profiling.
    _pairs: list[tuple[int, int]] = field(default_factory=list, repr=False)

    @property
    def noise_free(self) -> bool:
        return self.noise == "none"

    def entanglement_exponent(self) -> int:
        """Cached static bound on ``log2`` of the peak Schmidt rank."""
        if self.bond_exponent is None:
            self.bond_exponent = entanglement_exponent(self._pairs, self.num_qubits)
        return self.bond_exponent


def entanglement_exponent(pairs, num_qubits: int) -> int:
    """Static upper bound on ``log2(max Schmidt rank)`` across any bond.

    For each bond ``b`` (the cut between qubits ``b`` and ``b+1``) the
    Schmidt rank after the circuit is bounded by ``2**e(b)`` with ``e(b)``
    the minimum of three counts, computed from the 2-qubit gate endpoint
    pairs alone:

    * the number of *distinct left-side qubits* touched by gates crossing
      the cut (the rest of the left half evolves locally, so only those
      qubits can carry correlations across it) — this is what recognises
      GHZ-like circuits, where one hub qubit talks to everyone and the
      true rank stays 2 no matter how many gates cross;
    * the mirrored right-side count;
    * the trivial ``min(b+1, n-b-1)`` half-register bound.

    (A raw crossing-gate count would never bind: every crossing gate
    contributes its left endpoint, so the distinct-endpoint counts are
    always at most the gate count.)  Returned as the maximum exponent over
    all bonds; the dispatch cost model turns it into an estimated peak
    bond dimension.
    """
    if num_qubits < 2:
        return 0
    bonds = num_qubits - 1
    left_touch = np.zeros(bonds + 1, dtype=np.int64)
    right_touch = np.zeros(bonds + 1, dtype=np.int64)
    max_partner: dict[int, int] = {}
    min_partner: dict[int, int] = {}
    for a, b in pairs:
        low, high = (a, b) if a < b else (b, a)
        if max_partner.get(low, -1) < high:
            max_partner[low] = high
        if min_partner.get(high, num_qubits) > low:
            min_partner[high] = low
    for qubit, partner in max_partner.items():
        # Qubit q sits left of (and talks across) bonds q .. partner-1
        # (difference array over the bond range).
        left_touch[qubit] += 1
        left_touch[partner] -= 1
    for qubit, partner in min_partner.items():
        right_touch[partner] += 1
        right_touch[qubit] -= 1
    left_touch = np.cumsum(left_touch[:bonds])
    right_touch = np.cumsum(right_touch[:bonds])
    half = np.minimum(np.arange(1, bonds + 1), np.arange(bonds, 0, -1))
    exponents = np.minimum.reduce([left_touch, right_touch, half])
    return int(exponents.max(initial=0))


def profile_circuit(
    circuit,
    *,
    shots: int = 1,
    num_qubits: int | None = None,
    noise: str = "none",
    has_initial_state: bool = False,
    keep_final_state: bool = False,
    is_clifford: bool | None = None,
) -> CircuitProfile:
    """Profile a :class:`~repro.core.circuit.Circuit` for dispatch."""
    from repro.core.operations import ConditionalGate, GateOperation, Measurement

    gate_count = 0
    two_qubit = 0
    measurements = 0
    conditionals = False
    mid_circuit = False
    max_arity = 1
    span = 0
    pairs: list[tuple[int, int]] = []
    measured: set[int] = set()
    for op in circuit.operations:
        if isinstance(op, Measurement):
            measurements += 1
            measured.add(op.qubit)
            continue
        if isinstance(op, (GateOperation, ConditionalGate)):
            if isinstance(op, ConditionalGate):
                conditionals = True
            if measured.intersection(op.qubits):
                mid_circuit = True
            gate_count += 1
            arity = len(op.qubits)
            max_arity = max(max_arity, arity)
            if arity == 2:
                two_qubit += 1
                a, b = op.qubits
                span += abs(a - b)
                pairs.append((a, b))
    if is_clifford is None:
        is_clifford = StabilizerSimulator.is_clifford_circuit(circuit)
    return CircuitProfile(
        num_qubits=num_qubits or circuit.num_qubits,
        shots=shots,
        gate_count=gate_count,
        two_qubit_gate_count=two_qubit,
        num_measurements=measurements,
        needs_trajectories=conditionals or mid_circuit,
        is_clifford=is_clifford,
        noise=noise,
        max_gate_qubits=max_arity,
        has_initial_state=has_initial_state,
        keep_final_state=keep_final_state,
        total_gate_span=span,
        _pairs=pairs,
    )


def profile_program(
    program,
    *,
    shots: int = 1,
    num_qubits: int | None = None,
    noise: str = "none",
    has_initial_state: bool = False,
    keep_final_state: bool = False,
) -> CircuitProfile:
    """Profile a lowered :class:`~repro.qx.compiled.KernelProgram`.

    Programs carry gate matrices rather than names, so ``is_clifford`` is
    conservatively ``False`` (the tableau engine cannot run programs
    anyway).
    """
    gate_count = 0
    two_qubit = 0
    max_arity = 1
    span = 0
    pairs: list[tuple[int, int]] = []
    for op in program.ops:
        if op.matrix is None:
            continue
        gate_count += 1
        arity = len(op.qubits)
        max_arity = max(max_arity, arity)
        if arity == 2:
            two_qubit += 1
            a, b = op.qubits
            span += abs(a - b)
            pairs.append((a, b))
    return CircuitProfile(
        num_qubits=num_qubits or program.num_qubits,
        shots=shots,
        gate_count=gate_count,
        two_qubit_gate_count=two_qubit,
        num_measurements=program.num_measurements,
        needs_trajectories=program.needs_trajectories,
        is_clifford=False,
        noise=noise,
        max_gate_qubits=max_arity,
        has_initial_state=has_initial_state,
        keep_final_state=keep_final_state,
        total_gate_span=span,
        _pairs=pairs,
    )


# ---------------------------------------------------------------------- #
# The dispatch policy
# ---------------------------------------------------------------------- #
_INFEASIBLE = float("inf")


@dataclass
class DispatchPolicy:
    """Chooses a simulation backend per circuit via feasibility + cost.

    The thresholds reproduce the dispatch behaviour the stack had when the
    rules were hard-coded constants (statevector whenever it fits, tableau
    for big Clifford circuits), extended with the MPS engine for everything
    beyond the dense wall.  With the default knobs every auto-dispatched
    configuration is exact (``mps_max_bond=None``); a caller-set bond cap
    is an explicit accuracy opt-in and flows into both the cost estimate
    and the engine.
    """

    #: Clifford circuits that force per-shot trajectories (feedback or
    #: mid-circuit measurement) leave the state vector at this size.
    stabilizer_min_qubits: int = 21
    #: Sampled-eligible Clifford circuits (terminal measurements only) keep
    #: the flat-in-shots dense path until the amplitude array itself is the
    #: bottleneck, then the cost model arbitrates tableau vs MPS.
    stabilizer_sampled_min_qubits: int = 26
    #: Hard memory wall of the dense engine (2**26 amplitudes = 1 GiB).
    statevector_max_qubits: int = 26
    #: Mirrors the engine's own cap (one shared constant, like the MPS
    #: dense-materialisation limit) so feasibility and execution agree.
    density_max_qubits: int = DENSITY_MAX_QUBITS
    #: Opt-in: route channel-exact noisy circuits to the density engine when
    #: it is feasible, trading per-shot trajectories for one deterministic
    #: channel evolution.  Off by default so auto-dispatch never changes the
    #: seeded per-shot results of existing trajectory runs.
    prefer_exact_channels: bool = False
    #: Bond cap handed to auto-dispatched MPS runs (None = unbounded/exact).
    mps_max_bond: int | None = None
    mps_truncation_threshold: float = 1e-12
    #: Entanglement exponents above this make the MPS cost estimate
    #: saturate (2**cap is already hopeless next to any alternative).
    mps_exponent_cap: int = 24
    #: Relative per-element cost constants (dense amplitude update = 1).
    tableau_row_cost: float = 4.0
    svd_cost: float = 40.0

    # ------------------------------------------------------------------ #
    # Feasibility
    # ------------------------------------------------------------------ #
    def unsupported_reason(self, name: str, profile: CircuitProfile) -> str | None:
        """Why ``name`` cannot run the profiled circuit (None = it can)."""
        caps = BACKENDS.get(name)
        if caps is None:
            return f"unknown backend {name!r}; known: {', '.join(sorted(BACKENDS))}"
        if caps.max_qubits is not None and profile.num_qubits > caps.max_qubits:
            return f"{profile.num_qubits} qubits exceed the {name} limit of {caps.max_qubits}"
        if caps.clifford_only and not profile.is_clifford:
            return f"{name} is Clifford-only and the circuit has non-Clifford gates"
        if not profile.noise_free and caps.noise == "none":
            return f"{name} does not support error models"
        if profile.noise == "trajectory" and caps.noise == "channel":
            return (
                f"{name} runs exact compiled channels only; the error model has "
                "no channel representation (trajectory-only noise)"
            )
        if profile.needs_trajectories and not caps.conditionals:
            return f"{name} cannot run mid-circuit measurement or conditional feedback"
        if profile.has_initial_state and not caps.initial_state:
            return f"{name} does not accept a dense initial state"
        if profile.keep_final_state and not caps.final_state:
            return f"{name} cannot return a dense final state"
        if profile.num_measurements == 0 and not caps.final_state:
            return f"{name} only produces measurement histograms and the circuit never measures"
        if (
            (profile.keep_final_state or profile.num_measurements == 0)
            and name == "mps"
            and profile.num_qubits > DENSE_MATERIALISE_LIMIT
        ):
            return (
                f"returning a dense final state would materialise 2**{profile.num_qubits} "
                f"amplitudes; it is limited to {DENSE_MATERIALISE_LIMIT} qubits "
                "on the mps backend"
            )
        if (
            caps.max_gate_qubits is not None
            and not caps.clifford_only
            and profile.max_gate_qubits > caps.max_gate_qubits
        ):
            return (
                f"{name} applies at most {caps.max_gate_qubits}-qubit gates; "
                f"the circuit contains a {profile.max_gate_qubits}-qubit gate"
            )
        return None

    def validate(self, name: str, profile: CircuitProfile) -> str:
        """Validate an explicit backend request; returns the canonical name."""
        reason = self.unsupported_reason(name, profile)
        if reason is not None:
            raise UnsupportedBackendError(
                f"backend {name!r} cannot run this circuit: {reason}\n\n"
                f"{capability_matrix()}"
            )
        return name

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def estimate_cost(self, name: str, profile: CircuitProfile) -> float:
        """Rough work estimate (dense amplitude updates) of one run."""
        if self.unsupported_reason(name, profile) is not None:
            return _INFEASIBLE
        n = profile.num_qubits
        shots = max(profile.shots, 1)
        if name == "statevector":
            evolution = max(profile.gate_count, 1) * float(2**n) * 4.0
            if profile.noise_free and not profile.needs_trajectories:
                return evolution + shots
            return shots * evolution
        if name == "stabilizer":
            per_shot = (
                profile.gate_count * n + profile.num_measurements * n * n
            ) * self.tableau_row_cost
            return shots * max(per_shot, 1.0)
        if name == "density":
            # Compiled channel program: one fused superoperator per position
            # over 4**n real Pauli coefficients, flat in shots (sampling from
            # the final distribution is cheap next to the evolution).
            evolution = max(profile.gate_count, 1) * float(4**n) * 4.0
            return evolution + shots
        if name == "mps":
            cap = self.mps_exponent_cap
            exponent = min(profile.entanglement_exponent(), cap)
            if self.mps_max_bond is not None:
                bond = min(2**exponent, self.mps_max_bond)
            else:
                bond = 2**exponent
            # Every 2q gate is an SVD of a (2 bond, 2 bond) block; swap
            # ladders multiply that by the gate span.
            splits = profile.two_qubit_gate_count + 2 * max(
                profile.total_gate_span - profile.two_qubit_gate_count, 0
            )
            evolution = max(splits, 1) * float(bond) ** 3 * self.svd_cost
            sampling = shots * n * float(bond) ** 2 * 2.0
            if profile.noise_free and not profile.needs_trajectories:
                return evolution + sampling
            return shots * (evolution + n * float(bond) ** 2)
        return _INFEASIBLE

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def choose(self, profile: CircuitProfile) -> str:
        """Pick the backend for one run (auto-dispatch).

        Tiered: the dense engine keeps every circuit it comfortably fits
        (auto-dispatch must not perturb small-register behaviour), the
        tableau keeps its established Clifford territory, and beyond the
        dense wall the cost model arbitrates among whatever remains
        feasible.
        """
        # Dense-state obligations first: caller-provided initial states and
        # dense final states (requested, or implied by a measurement-free
        # circuit) are statevector-only features at full register range.
        if profile.has_initial_state or profile.num_measurements == 0 or (
            profile.keep_final_state and profile.num_qubits > self.statevector_max_qubits
        ):
            return self.validate("statevector", profile)
        # Opt-in exact-channel arbitration: when the error model compiles to
        # channels and the density engine fits, shots are free there — one
        # deterministic evolution replaces per-shot trajectories.
        if (
            self.prefer_exact_channels
            and profile.noise == "channel"
            and profile.num_qubits <= self.density_max_qubits
            and self.unsupported_reason("density", profile) is None
        ):
            return "density"
        clifford_eligible = (
            profile.noise_free
            and profile.is_clifford
            and profile.num_measurements > 0
            and not profile.keep_final_state
        )
        if clifford_eligible and profile.num_qubits >= self.stabilizer_min_qubits:
            if profile.needs_trajectories:
                return "stabilizer"
            if profile.num_qubits >= self.stabilizer_sampled_min_qubits:
                mps_cost = self.estimate_cost("mps", profile)
                if mps_cost < self.estimate_cost("stabilizer", profile):
                    return "mps"
                return "stabilizer"
        if profile.num_qubits <= self.statevector_max_qubits:
            return "statevector"
        # Beyond the dense wall: pick the cheapest feasible engine.
        candidates = [
            (self.estimate_cost(name, profile), name)
            for name in ("stabilizer", "mps")
            if self.unsupported_reason(name, profile) is None
        ]
        candidates = [entry for entry in candidates if entry[0] < _INFEASIBLE]
        if not candidates:
            reasons = "; ".join(
                f"{name}: {self.unsupported_reason(name, profile)}"
                for name in BACKENDS
                if self.unsupported_reason(name, profile) is not None
            )
            raise UnsupportedBackendError(
                f"no backend can run this {profile.num_qubits}-qubit circuit "
                f"({reasons})\n\n{capability_matrix()}"
            )
        return min(candidates)[1]
