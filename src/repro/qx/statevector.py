"""Dense state-vector engine.

The engine stores the full ``2**n`` amplitude vector (qubit 0 is the least
significant bit of the basis index).  One- and two-qubit gates are applied
in place by the stride kernels of :mod:`repro.qx.kernels`; larger gates use
the generic axis-permutation contraction, which keeps the cost of a k-qubit
gate at ``O(2**n * 2**k)`` instead of building the full operator.  The
amplitude array is always kept C-contiguous — the invariant the in-place
kernels rely on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.qx import kernels

_PAULI_MATRICES = {
    "i": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class StateVector:
    """Pure quantum state of ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, rng: np.random.Generator | None = None):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        if num_qubits > 26:
            raise ValueError("state vector limited to 26 qubits (memory)")
        self.num_qubits = int(num_qubits)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.amplitudes = np.zeros(2 ** self.num_qubits, dtype=complex)
        self.amplitudes[0] = 1.0

    # ------------------------------------------------------------------ #
    # State initialisation and inspection
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Return to the all-zeros computational basis state."""
        self.amplitudes[:] = 0
        self.amplitudes[0] = 1.0

    def set_basis_state(self, basis_index: int) -> None:
        if not 0 <= basis_index < self.amplitudes.size:
            raise IndexError(f"basis index {basis_index} out of range")
        self.amplitudes[:] = 0
        self.amplitudes[basis_index] = 1.0

    def set_state(self, amplitudes: np.ndarray) -> None:
        amplitudes = np.asarray(amplitudes, dtype=complex)
        if amplitudes.shape != self.amplitudes.shape:
            raise ValueError("amplitude vector has the wrong dimension")
        norm = np.linalg.norm(amplitudes)
        if norm < 1e-12:
            raise ValueError("cannot set a zero state")
        self.amplitudes = amplitudes / norm

    def copy(self) -> "StateVector":
        # The clone gets a spawned child generator: sharing the parent's
        # would let probe measurements on the copy advance the parent's
        # stream (REPRO007).
        clone = StateVector(self.num_qubits, rng=self.rng.spawn(1)[0])
        clone.amplitudes = self.amplitudes.copy()
        return clone

    def probabilities(self) -> np.ndarray:
        return np.abs(self.amplitudes) ** 2

    def probability_of(self, basis_index: int) -> float:
        return float(abs(self.amplitudes[basis_index]) ** 2)

    def norm(self) -> float:
        return float(np.linalg.norm(self.amplitudes))

    def fidelity(self, other: "StateVector | np.ndarray") -> float:
        """Squared overlap with another pure state."""
        other_amp = other.amplitudes if isinstance(other, StateVector) else np.asarray(other)
        return float(abs(np.vdot(self.amplitudes, other_amp)) ** 2)

    def entropy(self) -> float:
        """Shannon entropy (bits) of the measurement distribution."""
        probs = self.probabilities()
        probs = probs[probs > 1e-15]
        return float(-np.sum(probs * np.log2(probs)))

    # ------------------------------------------------------------------ #
    # Gate application
    # ------------------------------------------------------------------ #
    def _check_gate_operands(self, matrix: np.ndarray, qubits: tuple[int, ...]) -> None:
        k = len(qubits)
        if matrix.shape != (2 ** k, 2 ** k):
            raise ValueError("gate matrix dimension does not match qubit count")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise IndexError(f"qubit {q} out of range")
        if len(set(qubits)) != k:
            raise ValueError("duplicate qubits in gate operands")

    def apply_gate(self, matrix: np.ndarray, qubits: tuple[int, ...]) -> None:
        """Apply a ``2**k x 2**k`` unitary to the listed qubits.

        One- and two-qubit gates go through the in-place stride kernels of
        :mod:`repro.qx.kernels`; larger gates use the generic reference
        pipeline (see :meth:`apply_gate_generic`).
        """
        self._check_gate_operands(matrix, qubits)
        self.amplitudes = kernels.apply_gate_inplace(self.amplitudes, matrix, tuple(qubits))

    def apply_gate_generic(self, matrix: np.ndarray, qubits: tuple[int, ...]) -> None:
        """Reference gate application via axis permutation and matmul.

        Kept as the ground-truth implementation the fast kernels are
        property-tested against; the fast path must match it bit-for-bit up
        to floating-point reassociation.
        """
        self._check_gate_operands(matrix, qubits)
        # View the amplitude vector as an n-dimensional tensor with axis i
        # corresponding to qubit (n-1-i) — i.e. numpy's most-significant-first
        # ordering.  Qubit q lives on axis (n-1-q); target axes move to the
        # front (operand 0 first, matching the textbook convention that
        # operand 0 is the most significant bit of the gate-matrix index),
        # are contracted with the gate matrix, and move back.
        self.amplitudes = kernels.apply_gate_generic(self.amplitudes, matrix, tuple(qubits))

    def apply_pauli(self, pauli: str, qubit: int) -> None:
        """Apply a single Pauli error/gate by name ('i', 'x', 'y' or 'z')."""
        if pauli not in _PAULI_MATRICES:
            raise ValueError(f"unknown Pauli {pauli!r}")
        if pauli != "i":
            self.apply_gate(_PAULI_MATRICES[pauli], (qubit,))

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def measure(self, qubit: int, collapse: bool = True) -> int:
        """Measure one qubit in the computational basis.

        Returns 0 or 1, and (by default) collapses the state accordingly.
        """
        prob_one = self.probability_of_one(qubit)
        outcome = 1 if self.rng.random() < prob_one else 0
        if collapse:
            self.collapse(qubit, outcome)
        return outcome

    def probability_of_one(self, qubit: int) -> float:
        if not 0 <= qubit < self.num_qubits:
            raise IndexError(f"qubit {qubit} out of range")
        ones = kernels.qubit_view(self.amplitudes, qubit)[:, 1, :]
        return float(np.vdot(ones, ones).real)

    def collapse(self, qubit: int, outcome: int) -> None:
        """Project onto ``|outcome>`` of ``qubit`` and renormalise (in place)."""
        if outcome not in (0, 1):
            raise ValueError(f"measurement outcome must be 0 or 1, got {outcome}")
        view = kernels.qubit_view(self.amplitudes, qubit)
        kept = view[:, outcome, :]
        norm = math.sqrt(float(np.vdot(kept, kept).real))
        if norm < 1e-12:
            raise ValueError(
                f"cannot collapse qubit {qubit} to {outcome}: zero probability"
            )
        view[:, 1 - outcome, :] = 0.0
        self.amplitudes /= norm

    def measure_all(self) -> list[int]:
        """Measure every qubit; returns a list of bits indexed by qubit.

        Samples one basis index from the full distribution and collapses to
        it — equivalent in distribution to n sequential single-qubit
        measurements, but a single O(2**n) pass instead of n of them.
        """
        probs = self.probabilities()
        cumulative = np.cumsum(probs)
        draw = self.rng.random() * cumulative[-1]
        outcome = int(np.searchsorted(cumulative, draw, side="right"))
        outcome = min(outcome, probs.size - 1)
        self.set_basis_state(outcome)
        return [(outcome >> q) & 1 for q in range(self.num_qubits)]

    def sample_counts(self, shots: int, qubits: tuple[int, ...] | None = None) -> dict[str, int]:
        """Sample measurement outcomes without collapsing the live state.

        Returns a histogram keyed by bit-string with qubit 0 as the rightmost
        character (cQASM display convention).  Sampling and keying are the
        shared :func:`repro.qx.keying.sample_index_counts` implementation,
        so the dense and density engines key identically by construction.
        """
        from repro.qx.keying import sample_index_counts

        targets = qubits if qubits is not None else tuple(range(self.num_qubits))
        return sample_index_counts(self.probabilities(), shots, targets, self.rng)

    def expectation_z(self, qubit: int) -> float:
        """Expectation value of Pauli-Z on a qubit."""
        return 1.0 - 2.0 * self.probability_of_one(qubit)

    def expectation_zz(self, qubit_a: int, qubit_b: int) -> float:
        """Expectation value of Z_a Z_b, used by QAOA/Ising energy evaluation."""
        return kernels.pair_parity_expectation(self.amplitudes, qubit_a, qubit_b)


def zero_state(num_qubits: int) -> np.ndarray:
    state = np.zeros(2 ** num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def ghz_state(num_qubits: int) -> np.ndarray:
    state = np.zeros(2 ** num_qubits, dtype=complex)
    state[0] = 1.0 / math.sqrt(2.0)
    state[-1] = 1.0 / math.sqrt(2.0)
    return state


def uniform_superposition(num_qubits: int) -> np.ndarray:
    dim = 2 ** num_qubits
    return np.full(dim, 1.0 / math.sqrt(dim), dtype=complex)
