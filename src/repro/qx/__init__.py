"""QX-style quantum simulator.

Re-implementation of the role the QX simulator plays in the paper's stack
(Section 2.7): execute cQASM-level circuits on either *perfect* qubits (no
errors — application development mode) or *realistic* qubits (configurable
error models — architecture exploration mode), measure, and return results
to the micro-architecture.
"""

from repro.qx.statevector import StateVector
from repro.qx.compiled import KernelProgram, lower, program_for
from repro.qx.error_models import (
    ErrorModel,
    NoError,
    DepolarizingError,
    DecoherenceError,
    MeasurementError,
    AsymmetricPauliError,
    CrosstalkError,
    CompositeError,
    error_model_for,
)
from repro.qx.channels import (
    Channel,
    ChannelProgram,
    PauliBasis,
    compile_channels,
    compile_circuit,
    default_basis,
    ptm_of_unitary,
)
from repro.qx.simulator import QXSimulator, SimulationResult
from repro.qx.density import DENSITY_MAX_QUBITS, DensityMatrixSimulator, gpu_available
from repro.qx.stabilizer import StabilizerSimulator, StabilizerState
from repro.qx.mps import MPSSimulator, MPSState
from repro.qx.backends import (
    BACKENDS,
    BackendCapabilities,
    CircuitProfile,
    DispatchPolicy,
    UnsupportedBackendError,
    capability_matrix,
    profile_circuit,
    profile_program,
    register_backend,
)

__all__ = [
    "StateVector",
    "KernelProgram",
    "lower",
    "program_for",
    "ErrorModel",
    "NoError",
    "DepolarizingError",
    "DecoherenceError",
    "MeasurementError",
    "AsymmetricPauliError",
    "CrosstalkError",
    "CompositeError",
    "error_model_for",
    "Channel",
    "ChannelProgram",
    "PauliBasis",
    "compile_channels",
    "compile_circuit",
    "default_basis",
    "ptm_of_unitary",
    "QXSimulator",
    "SimulationResult",
    "DENSITY_MAX_QUBITS",
    "DensityMatrixSimulator",
    "gpu_available",
    "StabilizerSimulator",
    "StabilizerState",
    "MPSSimulator",
    "MPSState",
    "BACKENDS",
    "BackendCapabilities",
    "CircuitProfile",
    "DispatchPolicy",
    "UnsupportedBackendError",
    "capability_matrix",
    "profile_circuit",
    "profile_program",
    "register_backend",
]
