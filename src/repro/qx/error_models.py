"""Error models for realistic qubits.

Section 2.7 of the paper: when simulating *realistic* qubits the QX engine
inserts stochastic errors after gates and around measurements.  The basic
model is the depolarising channel ("every quantum gate is followed by some
error, drawn from a uniform distribution of the different errors that can
follow: Pauli X, Y or Z"); richer models add T1/T2 decoherence proportional
to the elapsed time and classical measurement read-out errors.

Every model has *one* definition of its physics and two execution views of
it:

* the **trajectory view** (:meth:`ErrorModel.apply_after_gate` /
  :meth:`ErrorModel.flip_measurement`) stochastically injects Pauli
  operations into a :class:`~repro.qx.statevector.StateVector`, one
  physical shot per run, drawing exactly once per error location from the
  seeded stream (the bit-identity contract the regression tests pin);
* the **channel view** (:meth:`ErrorModel.noise_channels` /
  :meth:`ErrorModel.confusion`) returns the exact
  :class:`~repro.qx.channels.Channel` the trajectory process averages to,
  which the density engine executes deterministically.

Both views read the same model parameters through the same helper methods
(``rate_for``, ``decay_probabilities``, ``pauli_probabilities``,
``spectators_for``), so they can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.qubits import PERFECT, QubitModel
from repro.qx.channels import Channel
from repro.qx.statevector import StateVector

#: The channel view's return type: ``(qubits, channel)`` placements.
ChannelPlacements = "list[tuple[tuple[int, ...], Channel]]"


class ErrorModel:
    """Interface for stochastic error injection and its exact channel."""

    #: True when the model is exactly representable as quantum channels
    #: (PTMs) plus a classical read-out confusion matrix — the condition
    #: for running on the density engine instead of trajectories.
    channel_exact: bool = False

    def apply_after_gate(
        self,
        state: StateVector,
        qubits: tuple[int, ...],
        duration_ns: float,
        rng: np.random.Generator,
    ) -> int:
        """Inject errors after a gate; returns the number of errors injected."""
        return 0

    def flip_measurement(self, outcome: int, rng: np.random.Generator) -> int:
        """Possibly flip a classical measurement outcome."""
        return outcome

    def noise_channels(
        self, qubits: tuple[int, ...], duration_ns: float
    ):
        """The exact channels this model attaches after a gate on ``qubits``.

        A list of ``(qubit_tuple, Channel)`` placements, or ``None`` when
        the model has no exact channel representation (trajectory only).
        """
        return None

    def confusion(self) -> np.ndarray | None:
        """The classical read-out confusion matrix, or ``None`` if perfect.

        Row-stochastic: ``confusion[a, b]`` is the probability of
        *reporting* ``b`` when the true outcome is ``a``.
        """
        return None

    def describe(self) -> str:
        return self.__class__.__name__


class NoError(ErrorModel):
    """Perfect qubits: no errors at all."""

    channel_exact = True

    def noise_channels(self, qubits, duration_ns):
        return []


@dataclass
class DepolarizingError(ErrorModel):
    """Symmetric depolarising channel applied after every gate.

    With probability ``error_rate`` one of X, Y, Z is applied (uniformly) to
    each qubit the gate touched.  Two-qubit gates may use a separate, larger
    ``two_qubit_error_rate``.
    """

    error_rate: float
    two_qubit_error_rate: float | None = None

    channel_exact = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate outside [0, 1]")

    def rate_for(self, qubits: tuple[int, ...]) -> float:
        """Per-qubit error rate after a gate on ``qubits``.

        The single definition of the one-vs-two-qubit rate selection, shared
        by the trajectory path and the density engine's exact channel.
        """
        if len(qubits) >= 2 and self.two_qubit_error_rate is not None:
            return self.two_qubit_error_rate
        return self.error_rate

    def apply_after_gate(self, state, qubits, duration_ns, rng) -> int:
        rate = self.rate_for(qubits)
        injected = 0
        for qubit in qubits:
            if rng.random() < rate:
                pauli = ("x", "y", "z")[int(rng.integers(3))]
                state.apply_pauli(pauli, qubit)
                injected += 1
        return injected

    def noise_channels(self, qubits, duration_ns):
        channel = Channel.depolarizing(self.rate_for(qubits))
        return [((qubit,), channel) for qubit in qubits]

    def describe(self) -> str:
        return f"depolarizing(p={self.error_rate:g}) [channel]"


@dataclass
class DecoherenceError(ErrorModel):
    """T1 relaxation and T2 dephasing proportional to elapsed gate time.

    Amplitude damping is approximated in the trajectory picture by a
    probabilistic reset-to-ground of the qubit (projective collapse to
    ``|0>`` with the damping probability); dephasing by a probabilistic Z.
    The exact channel (:meth:`noise_channels`) is the ensemble average of
    that same branch structure — see :meth:`Channel.decoherence`.
    """

    t1_ns: float
    t2_ns: float

    channel_exact = True

    def decay_probabilities(self, duration_ns: float) -> tuple[float, float]:
        """``(p_decay, p_dephase)`` for a gate of the given duration.

        The single definition of the T1/T2 branch probabilities, shared by
        the trajectory draws and the exact channel construction.
        """
        p_decay = 0.0 if np.isinf(self.t1_ns) else 1.0 - np.exp(-duration_ns / self.t1_ns)
        inv_tphi = 0.0
        if not np.isinf(self.t2_ns):
            inv_tphi = max(1.0 / self.t2_ns - 0.5 / max(self.t1_ns, 1e-30), 0.0)
        p_dephase = 1.0 - np.exp(-duration_ns * inv_tphi) if inv_tphi > 0 else 0.0
        return float(p_decay), float(p_dephase)

    def apply_after_gate(self, state, qubits, duration_ns, rng) -> int:
        injected = 0
        for qubit in qubits:
            p_decay, p_dephase = self.decay_probabilities(duration_ns)
            if rng.random() < p_decay:
                # Trajectory approximation of amplitude damping: collapse to
                # the measured value and reset to |0> if it was |1>.
                outcome = state.measure(qubit)
                if outcome == 1:
                    state.apply_pauli("x", qubit)
                injected += 1
                continue
            if rng.random() < p_dephase:
                state.apply_pauli("z", qubit)
                injected += 1
        return injected

    def noise_channels(self, qubits, duration_ns):
        p_decay, p_dephase = self.decay_probabilities(duration_ns)
        channel = Channel.decoherence(p_decay, p_dephase)
        return [((qubit,), channel) for qubit in qubits]

    def describe(self) -> str:
        return f"decoherence(T1={self.t1_ns:g}ns, T2={self.t2_ns:g}ns) [channel]"


@dataclass
class MeasurementError(ErrorModel):
    """Classical read-out error: flip the reported bit with a fixed probability."""

    flip_probability: float

    channel_exact = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.flip_probability <= 1.0:
            raise ValueError("flip_probability outside [0, 1]")

    def flip_measurement(self, outcome: int, rng) -> int:
        if rng.random() < self.flip_probability:
            return 1 - outcome
        return outcome

    def noise_channels(self, qubits, duration_ns):
        return []

    def confusion(self) -> np.ndarray:
        p = self.flip_probability
        return np.array([[1.0 - p, p], [p, 1.0 - p]])

    def describe(self) -> str:
        return f"measurement(p={self.flip_probability:g}) [channel]"


@dataclass
class AsymmetricPauliError(ErrorModel):
    """Biased Pauli channel with independent X, Y and Z probabilities.

    Real devices are rarely depolarising: dephasing (Z) usually dominates.
    This model lets the realistic-qubit experiments go "beyond simplistic
    error models such as the depolarising model" (Section 2.7) by setting,
    e.g., ``p_z >> p_x``.
    """

    p_x: float
    p_y: float
    p_z: float

    channel_exact = True

    def __post_init__(self) -> None:
        for rate in (self.p_x, self.p_y, self.p_z):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("Pauli probabilities must be in [0, 1]")
        if self.p_x + self.p_y + self.p_z > 1.0:
            raise ValueError("total Pauli error probability exceeds 1")

    def pauli_probabilities(self) -> tuple[float, float, float]:
        """``(p_x, p_y, p_z)`` — shared by the draws and the channel."""
        return self.p_x, self.p_y, self.p_z

    def apply_after_gate(self, state, qubits, duration_ns, rng) -> int:
        p_x, p_y, p_z = self.pauli_probabilities()
        injected = 0
        for qubit in qubits:
            draw = rng.random()
            if draw < p_x:
                state.apply_pauli("x", qubit)
                injected += 1
            elif draw < p_x + p_y:
                state.apply_pauli("y", qubit)
                injected += 1
            elif draw < p_x + p_y + p_z:
                state.apply_pauli("z", qubit)
                injected += 1
        return injected

    def noise_channels(self, qubits, duration_ns):
        channel = Channel.pauli(*self.pauli_probabilities())
        return [((qubit,), channel) for qubit in qubits]

    @property
    def bias(self) -> float:
        """Z-bias ratio p_z / (p_x + p_y); infinity for pure dephasing."""
        transverse = self.p_x + self.p_y
        if transverse == 0.0:
            return float("inf")
        return self.p_z / transverse

    def describe(self) -> str:
        return (
            f"asymmetric_pauli(px={self.p_x:g}, py={self.p_y:g}, pz={self.p_z:g})"
            " [channel]"
        )


@dataclass
class CrosstalkError(ErrorModel):
    """Crosstalk: two-qubit gates disturb spectator qubits adjacent to the pair.

    Whenever a multi-qubit gate fires, each neighbouring (spectator) qubit of
    the gate's operands suffers a Z error with probability
    ``spectator_error_rate`` — the simplified always-on-coupling crosstalk of
    frequency-crowded superconducting devices, one of the scheduling
    constraints Section 2.6 alludes to ("the number of available frequencies
    to control the qubits can also affect the scheduling").
    """

    spectator_error_rate: float
    neighbours: dict[int, tuple[int, ...]] = field(default_factory=dict)

    channel_exact = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.spectator_error_rate <= 1.0:
            raise ValueError("spectator_error_rate outside [0, 1]")

    @classmethod
    def from_topology(cls, topology, spectator_error_rate: float) -> "CrosstalkError":
        """Build the neighbour table from a :class:`~repro.mapping.topology.Topology`."""
        neighbours = {
            site: tuple(topology.neighbours(site)) for site in range(topology.num_qubits)
        }
        return cls(spectator_error_rate=spectator_error_rate, neighbours=neighbours)

    def spectators_for(self, qubits: tuple[int, ...]) -> set[int]:
        """Spectator qubits disturbed by a gate on ``qubits``.

        The single definition of the neighbour geometry, shared by the
        trajectory draws and the exact channel placements.  Empty for
        single-qubit gates or a zero rate.
        """
        if len(qubits) < 2 or self.spectator_error_rate == 0.0:
            return set()
        spectators: set[int] = set()
        for qubit in qubits:
            spectators.update(self.neighbours.get(qubit, ()))
        spectators -= set(qubits)
        return spectators

    def apply_after_gate(self, state, qubits, duration_ns, rng) -> int:
        injected = 0
        for spectator in self.spectators_for(qubits):
            if spectator < state.num_qubits and rng.random() < self.spectator_error_rate:
                state.apply_pauli("z", spectator)
                injected += 1
        return injected

    def noise_channels(self, qubits, duration_ns):
        spectators = self.spectators_for(qubits)
        if not spectators:
            return []
        channel = Channel.phase_flip(self.spectator_error_rate)
        return [((spectator,), channel) for spectator in sorted(spectators)]

    def describe(self) -> str:
        return f"crosstalk(p={self.spectator_error_rate:g}) [channel]"


class CompositeError(ErrorModel):
    """Combine several error models; all of them are applied in order."""

    def __init__(self, *models: ErrorModel):
        self.models = [m for m in models if not isinstance(m, NoError)]

    @property
    def channel_exact(self) -> bool:  # type: ignore[override]
        return all(model.channel_exact for model in self.models)

    def apply_after_gate(self, state, qubits, duration_ns, rng) -> int:
        return sum(m.apply_after_gate(state, qubits, duration_ns, rng) for m in self.models)

    def flip_measurement(self, outcome, rng) -> int:
        for model in self.models:
            outcome = model.flip_measurement(outcome, rng)
        return outcome

    def noise_channels(self, qubits, duration_ns):
        """One compiled channel per qubit position, not sequential application.

        Members' placements on the same qubit tuple compose into a single
        PTM (matrix product, in member order), so the density engine pays
        one superoperator per location however many models stack.
        """
        if not self.channel_exact:
            return None
        merged: dict[tuple[int, ...], Channel] = {}
        order: list[tuple[int, ...]] = []
        for model in self.models:
            for placement, channel in model.noise_channels(qubits, duration_ns) or []:
                existing = merged.get(placement)
                if existing is None:
                    merged[placement] = channel
                    order.append(placement)
                else:
                    merged[placement] = channel.compose(existing)
        return [(placement, merged[placement]) for placement in order]

    def confusion(self) -> np.ndarray | None:
        combined: np.ndarray | None = None
        for model in self.models:
            matrix = model.confusion()
            if matrix is None:
                continue
            combined = matrix if combined is None else combined @ matrix
        return combined

    def describe(self) -> str:
        return " + ".join(m.describe() for m in self.models) or "none"


def noise_kind(error_model: ErrorModel) -> str:
    """Classify an error model for backend dispatch.

    ``"none"`` (perfect qubits), ``"channel"`` (exactly representable as
    compiled PTM channels plus read-out confusion, so the density engine
    can run it) or ``"trajectory"`` (stochastic injection only).
    """
    if isinstance(error_model, NoError):
        return "none"
    if error_model.channel_exact:
        return "channel"
    return "trajectory"


def error_model_for(qubit_model: QubitModel) -> ErrorModel:
    """Build the QX error model matching a qubit quality description."""
    if qubit_model.is_perfect or qubit_model == PERFECT:
        return NoError()
    models: list[ErrorModel] = []
    if qubit_model.single_qubit_error_rate > 0 or qubit_model.two_qubit_error_rate > 0:
        models.append(
            DepolarizingError(
                error_rate=qubit_model.single_qubit_error_rate,
                two_qubit_error_rate=qubit_model.two_qubit_error_rate,
            )
        )
    if not np.isinf(qubit_model.t1_ns) or not np.isinf(qubit_model.t2_ns):
        models.append(DecoherenceError(t1_ns=qubit_model.t1_ns, t2_ns=qubit_model.t2_ns))
    if qubit_model.measurement_error_rate > 0:
        models.append(MeasurementError(qubit_model.measurement_error_rate))
    if not models:
        return NoError()
    if len(models) == 1:
        return models[0]
    return CompositeError(*models)
