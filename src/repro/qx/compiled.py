"""Circuit precompilation for the QX simulation core.

A :class:`~repro.core.circuit.Circuit` is a list of rich Python objects
(gates with names, parameters, durations).  Executing it shot after shot
re-dispatches those objects through ``isinstance`` checks and attribute
lookups every time.  The precompiler lowers a circuit *once* into a flat
:class:`KernelProgram` of slotted :class:`KernelOp` records that carry only
what execution needs — the gate matrix, the operand tuple, the classical
bit indices — so the simulator's shot loop touches nothing else.

With ``fuse=True`` adjacent single-qubit gates on the same qubit are folded
into one 2x2 matrix (runs of rotations, Euler decompositions, and basis
changes collapse to a single kernel call).  Fusion is only valid when no
error model hooks in between gates, so the simulator requests ``fuse=False``
for noisy trajectory execution, where every physical gate must keep its own
error-injection point and duration.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.circuit import Circuit
from repro.core.operations import (
    Barrier,
    ClassicalOperation,
    ConditionalGate,
    GateOperation,
    Measurement,
)
from repro.qx import kernels

#: KernelOp kinds.
GATE = 0
COND_GATE = 1
MEASURE = 2

_IDENTITY_2 = np.eye(2, dtype=complex)


class KernelOp:
    """One lowered instruction: a gate application or a measurement."""

    __slots__ = ("kind", "matrix", "qubits", "duration", "bit", "condition_bit", "structure")

    def __init__(self, kind, matrix=None, qubits=(), duration=0, bit=-1, condition_bit=-1):
        self.kind = kind
        self.matrix = matrix
        self.qubits = qubits
        self.duration = duration
        self.bit = bit
        self.condition_bit = condition_bit
        # 2-qubit gate structure, classified once here rather than per shot.
        self.structure = (
            kernels.classify_2q(matrix) if matrix is not None and len(qubits) == 2 else None
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = {GATE: "gate", COND_GATE: "cond", MEASURE: "measure"}
        return f"KernelOp({names[self.kind]}, qubits={self.qubits})"


class KernelProgram:
    """A circuit lowered to a flat list of :class:`KernelOp` records."""

    def __init__(
        self,
        num_qubits: int,
        num_bits: int,
        ops: list[KernelOp],
        fused: bool,
        num_measurements: int,
        has_conditionals: bool,
        has_mid_circuit_measurement: bool,
        measured_qubits: tuple[int, ...],
        measured_bits: tuple[int, ...],
    ):
        self.num_qubits = num_qubits
        self.num_bits = num_bits
        self.ops = ops
        self.fused = fused
        self.num_measurements = num_measurements
        self.has_conditionals = has_conditionals
        self.has_mid_circuit_measurement = has_mid_circuit_measurement
        #: Measured qubit per measurement, in program order.
        self.measured_qubits = measured_qubits
        #: Sorted unique classical bits written by measurements.
        self.measured_bits = measured_bits
        #: Classical bit -> source qubit (last measurement writing the bit
        #: wins, mirroring per-shot execution order).
        self.bit_sources = {
            op.bit: op.qubits[0] for op in ops if op.kind == MEASURE
        }

    @property
    def needs_trajectories(self) -> bool:
        """True when per-shot re-execution is required for correct semantics."""
        return self.has_conditionals or self.has_mid_circuit_measurement

    def apply_unitaries(self, amplitudes: np.ndarray) -> np.ndarray:
        """Apply every unconditional gate in place; returns the amplitude array.

        The single-evolution fast path for measurement-free execution and
        final-distribution sampling.
        """
        for op in self.ops:
            if op.kind == GATE:
                amplitudes = kernels.apply_gate_inplace(
                    amplitudes, op.matrix, op.qubits, structure=op.structure
                )
        return amplitudes


def lower(circuit: Circuit, fuse: bool = True) -> KernelProgram:
    """Lower ``circuit`` into a :class:`KernelProgram`.

    Barriers and classical operations carry no simulation semantics and are
    dropped (barriers conservatively cut fusion runs on their qubits).
    """
    ops: list[KernelOp] = []
    # qubit -> (accumulated 2x2 matrix, accumulated duration)
    pending: dict[int, tuple[np.ndarray, int]] = {}

    def flush(qubit: int) -> None:
        entry = pending.pop(qubit, None)
        if entry is None:
            return
        matrix, duration = entry
        if fuse and np.array_equal(matrix, _IDENTITY_2):
            return
        ops.append(KernelOp(GATE, matrix=matrix, qubits=(qubit,), duration=duration))

    def flush_all() -> None:
        for qubit in list(pending):
            flush(qubit)

    measured_qubits: list[int] = []
    measured_bits: set[int] = set()
    has_conditionals = False
    mid_circuit = False
    seen_measured: set[int] = set()

    for op in circuit.operations:
        if isinstance(op, GateOperation):
            if seen_measured.intersection(op.qubits):
                mid_circuit = True
            if fuse and len(op.qubits) == 1:
                qubit = op.qubits[0]
                previous = pending.get(qubit)
                if previous is None:
                    pending[qubit] = (np.array(op.gate.matrix, dtype=complex), op.duration)
                else:
                    pending[qubit] = (
                        op.gate.matrix @ previous[0],
                        previous[1] + op.duration,
                    )
                continue
            for qubit in op.qubits:
                flush(qubit)
            ops.append(
                KernelOp(
                    GATE,
                    matrix=np.asarray(op.gate.matrix, dtype=complex),
                    qubits=op.qubits,
                    duration=op.duration,
                )
            )
        elif isinstance(op, Measurement):
            flush(op.qubit)
            seen_measured.add(op.qubit)
            measured_qubits.append(op.qubit)
            measured_bits.add(op.bit)
            ops.append(
                KernelOp(MEASURE, qubits=op.qubits, duration=op.duration, bit=op.bit)
            )
        elif isinstance(op, ConditionalGate):
            if seen_measured.intersection(op.qubits):
                mid_circuit = True
            has_conditionals = True
            for qubit in op.qubits:
                flush(qubit)
            ops.append(
                KernelOp(
                    COND_GATE,
                    matrix=np.asarray(op.gate.matrix, dtype=complex),
                    qubits=op.qubits,
                    duration=op.duration,
                    condition_bit=op.condition_bit,
                )
            )
        elif isinstance(op, Barrier):
            for qubit in op.qubits:
                flush(qubit)
        elif isinstance(op, ClassicalOperation):
            continue
    flush_all()

    return KernelProgram(
        num_qubits=circuit.num_qubits,
        num_bits=circuit.num_bits,
        ops=ops,
        fused=fuse,
        num_measurements=len(measured_qubits),
        has_conditionals=has_conditionals,
        has_mid_circuit_measurement=mid_circuit,
        measured_qubits=tuple(measured_qubits),
        measured_bits=tuple(sorted(measured_bits)),
    )


# ---------------------------------------------------------------------- #
# Per-circuit program cache
# ---------------------------------------------------------------------- #
_cache: "weakref.WeakKeyDictionary[Circuit, dict]" = weakref.WeakKeyDictionary()


def _fingerprint(circuit: Circuit) -> tuple:
    # Identity of every operation: catches appends, removals and interior
    # replacement.  (An id can in principle be reused by a new op allocated
    # at a freed op's address; callers mutating circuits that aggressively
    # should call lower() directly.)
    return tuple(map(id, circuit.operations))


def program_for(circuit: Circuit, fuse: bool = True) -> KernelProgram:
    """Cached :func:`lower`; recompiles when the circuit was appended to."""
    try:
        entry = _cache.get(circuit)
    except TypeError:  # unhashable/unweakrefable circuit-like object
        return lower(circuit, fuse=fuse)
    fingerprint = _fingerprint(circuit)
    if entry is None or entry.get("fingerprint") != fingerprint:
        entry = {"fingerprint": fingerprint}
        _cache[circuit] = entry
    program = entry.get(fuse)
    if program is None:
        program = lower(circuit, fuse=fuse)
        entry[fuse] = program
    return program
