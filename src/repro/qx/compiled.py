"""Circuit precompilation for the QX simulation core.

A :class:`~repro.core.circuit.Circuit` is a list of rich Python objects
(gates with names, parameters, durations).  Executing it shot after shot
re-dispatches those objects through ``isinstance`` checks and attribute
lookups every time.  The precompiler lowers a circuit *once* into a flat
:class:`KernelProgram` of slotted :class:`KernelOp` records that carry only
what execution needs — the gate matrix, the operand tuple, the classical
bit indices — so the simulator's shot loop touches nothing else.

With ``fuse=True`` adjacent single-qubit gates on the same qubit are folded
into one 2x2 matrix (runs of rotations, Euler decompositions, and basis
changes collapse to a single kernel call).  Fusion is only valid when no
error model hooks in between gates, so the simulator requests ``fuse=False``
for noisy trajectory execution, where every physical gate must keep its own
error-injection point and duration.
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict

import numpy as np

from repro.core.circuit import Circuit
from repro.core.operations import (
    Barrier,
    ClassicalOperation,
    ConditionalGate,
    GateOperation,
    Measurement,
)
from repro.qx import kernels

#: KernelOp kinds.
GATE = 0
COND_GATE = 1
MEASURE = 2

_IDENTITY_2 = np.eye(2, dtype=complex)


class KernelOp:
    """One lowered instruction: a gate application or a measurement."""

    __slots__ = ("kind", "matrix", "qubits", "duration", "bit", "condition_bit", "structure")

    def __init__(self, kind, matrix=None, qubits=(), duration=0, bit=-1, condition_bit=-1):
        self.kind = kind
        self.matrix = matrix
        self.qubits = qubits
        self.duration = duration
        self.bit = bit
        self.condition_bit = condition_bit
        # 2-qubit gate structure, classified once here rather than per shot.
        self.structure = (
            kernels.classify_2q(matrix) if matrix is not None and len(qubits) == 2 else None
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = {GATE: "gate", COND_GATE: "cond", MEASURE: "measure"}
        return f"KernelOp({names[self.kind]}, qubits={self.qubits})"


class KernelProgram:
    """A circuit lowered to a flat list of :class:`KernelOp` records."""

    def __init__(
        self,
        num_qubits: int,
        num_bits: int,
        ops: list[KernelOp],
        fused: bool,
        num_measurements: int,
        has_conditionals: bool,
        has_mid_circuit_measurement: bool,
        measured_qubits: tuple[int, ...],
        measured_bits: tuple[int, ...],
    ):
        self.num_qubits = num_qubits
        self.num_bits = num_bits
        self.ops = ops
        self.fused = fused
        self.num_measurements = num_measurements
        self.has_conditionals = has_conditionals
        self.has_mid_circuit_measurement = has_mid_circuit_measurement
        #: Measured qubit per measurement, in program order.
        self.measured_qubits = measured_qubits
        #: Sorted unique classical bits written by measurements.
        self.measured_bits = measured_bits
        #: Classical bit -> source qubit (last measurement writing the bit
        #: wins, mirroring per-shot execution order).
        self.bit_sources = {
            op.bit: op.qubits[0] for op in ops if op.kind == MEASURE
        }

    @property
    def needs_trajectories(self) -> bool:
        """True when per-shot re-execution is required for correct semantics."""
        return self.has_conditionals or self.has_mid_circuit_measurement

    def sample_sources(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(ascending classical bits, their source qubits)`` for sampling.

        The single implementation of the sampled paths' keying setup: the
        histogram is keyed by classical bit (honouring cross-maps such as
        ``measure q[3] -> b[0]``) with the qubit each bit was last written
        from as its value source.
        """
        ordered_bits = tuple(sorted(self.bit_sources))
        return ordered_bits, tuple(self.bit_sources[bit] for bit in ordered_bits)

    def apply_unitaries(self, amplitudes: np.ndarray) -> np.ndarray:
        """Apply every unconditional gate in place; returns the amplitude array.

        The single-evolution fast path for measurement-free execution and
        final-distribution sampling.
        """
        for op in self.ops:
            if op.kind == GATE:
                amplitudes = kernels.apply_gate_inplace(
                    amplitudes, op.matrix, op.qubits, structure=op.structure
                )
        return amplitudes


def lower(circuit: Circuit, fuse: bool = True) -> KernelProgram:
    """Lower ``circuit`` into a :class:`KernelProgram`.

    Barriers and classical operations carry no simulation semantics and are
    dropped (barriers conservatively cut fusion runs on their qubits).
    """
    ops: list[KernelOp] = []
    # qubit -> (accumulated 2x2 matrix, accumulated duration)
    pending: dict[int, tuple[np.ndarray, int]] = {}

    def flush(qubit: int) -> None:
        entry = pending.pop(qubit, None)
        if entry is None:
            return
        matrix, duration = entry
        if fuse and np.array_equal(matrix, _IDENTITY_2):
            return
        ops.append(KernelOp(GATE, matrix=matrix, qubits=(qubit,), duration=duration))

    def flush_all() -> None:
        for qubit in list(pending):
            flush(qubit)

    measured_qubits: list[int] = []
    measured_bits: set[int] = set()
    has_conditionals = False
    mid_circuit = False
    seen_measured: set[int] = set()

    for op in circuit.operations:
        if isinstance(op, GateOperation):
            if seen_measured.intersection(op.qubits):
                mid_circuit = True
            if fuse and len(op.qubits) == 1:
                qubit = op.qubits[0]
                previous = pending.get(qubit)
                if previous is None:
                    pending[qubit] = (np.array(op.gate.matrix, dtype=complex), op.duration)
                else:
                    pending[qubit] = (
                        op.gate.matrix @ previous[0],
                        previous[1] + op.duration,
                    )
                continue
            for qubit in op.qubits:
                flush(qubit)
            ops.append(
                KernelOp(
                    GATE,
                    matrix=np.asarray(op.gate.matrix, dtype=complex),
                    qubits=op.qubits,
                    duration=op.duration,
                )
            )
        elif isinstance(op, Measurement):
            flush(op.qubit)
            seen_measured.add(op.qubit)
            measured_qubits.append(op.qubit)
            measured_bits.add(op.bit)
            ops.append(KernelOp(MEASURE, qubits=op.qubits, duration=op.duration, bit=op.bit))
        elif isinstance(op, ConditionalGate):
            if seen_measured.intersection(op.qubits):
                mid_circuit = True
            has_conditionals = True
            for qubit in op.qubits:
                flush(qubit)
            ops.append(
                KernelOp(
                    COND_GATE,
                    matrix=np.asarray(op.gate.matrix, dtype=complex),
                    qubits=op.qubits,
                    duration=op.duration,
                    condition_bit=op.condition_bit,
                )
            )
        elif isinstance(op, Barrier):
            for qubit in op.qubits:
                flush(qubit)
        elif isinstance(op, ClassicalOperation):
            continue
    flush_all()

    return KernelProgram(
        num_qubits=circuit.num_qubits,
        num_bits=circuit.num_bits,
        ops=ops,
        fused=fuse,
        num_measurements=len(measured_qubits),
        has_conditionals=has_conditionals,
        has_mid_circuit_measurement=mid_circuit,
        measured_qubits=tuple(measured_qubits),
        measured_bits=tuple(sorted(measured_bits)),
    )


# ---------------------------------------------------------------------- #
# Structural lowering plans
# ---------------------------------------------------------------------- #
# A fleet of structurally identical circuits (RB sequences, QAOA iterates:
# same gate positions, different rotation angles) repeats the *control flow*
# of lower() — which gates fuse into which runs, where runs flush, which
# metadata flags are set — while only the matrix arithmetic differs.  A
# LoweringPlan captures that control flow once per structure; materialising
# it against a concrete circuit replays exactly the matrix operations
# lower() would perform (same construction order, same identity elision),
# so the resulting program is bit-identical to lower()'s.


class LoweringPlan:
    """The structure-only part of lowering one circuit shape."""

    __slots__ = (
        "steps",
        "fused",
        "num_measurements",
        "has_conditionals",
        "has_mid_circuit_measurement",
        "measured_qubits",
        "measured_bits",
        "bit_sources",
    )

    def __init__(
        self,
        steps,
        fused,
        num_measurements,
        has_conditionals,
        has_mid_circuit_measurement,
        measured_qubits,
        measured_bits,
        bit_sources,
    ):
        #: Output steps in order: ``("run", op_indices, qubit)`` for a fused
        #: single-qubit run, ``("gate", i)``, ``("measure", i)`` or
        #: ``("cond", i)`` referencing ``circuit.operations[i]``.
        self.steps = steps
        self.fused = fused
        self.num_measurements = num_measurements
        self.has_conditionals = has_conditionals
        self.has_mid_circuit_measurement = has_mid_circuit_measurement
        self.measured_qubits = measured_qubits
        self.measured_bits = measured_bits
        #: Classical bit -> source qubit, last write wins — structural, so
        #: shared by every circuit materialising this plan.
        self.bit_sources = bit_sources

    @property
    def needs_trajectories(self) -> bool:
        """Mirror of :attr:`KernelProgram.needs_trajectories` at plan level."""
        return self.has_conditionals or self.has_mid_circuit_measurement

    def sample_sources(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Plan-level :meth:`KernelProgram.sample_sources` (same convention)."""
        ordered_bits = tuple(sorted(self.bit_sources))
        return ordered_bits, tuple(self.bit_sources[bit] for bit in ordered_bits)


def structure_key(circuit: Circuit, fuse: bool) -> tuple:
    """Hashable key of everything that determines a circuit's LoweringPlan.

    Gate *positions* (kinds, operands, classical bits) without gate
    *values* (matrices, parameters, durations) — two RB sequences with
    different angles share a key, and therefore share fusion planning.
    """
    records = []
    for op in circuit.operations:
        if isinstance(op, GateOperation):
            records.append((0, op.qubits))
        elif isinstance(op, Measurement):
            records.append((1, op.qubits, op.bit))
        elif isinstance(op, ConditionalGate):
            records.append((2, op.qubits, op.condition_bit))
        elif isinstance(op, Barrier):
            records.append((3, op.qubits))
        # ClassicalOperation carries no lowering semantics.
    return (circuit.num_qubits, circuit.num_bits, fuse, tuple(records))


def _build_plan(circuit: Circuit, fuse: bool) -> LoweringPlan:
    """Symbolic replay of :func:`lower`: indices instead of matrices."""
    steps: list[tuple] = []
    pending: dict[int, list[int]] = {}

    def flush(qubit: int) -> None:
        indices = pending.pop(qubit, None)
        if indices is not None:
            steps.append(("run", tuple(indices), qubit))

    def flush_all() -> None:
        for qubit in list(pending):
            flush(qubit)

    measured_qubits: list[int] = []
    measured_bits: set[int] = set()
    bit_sources: dict[int, int] = {}
    has_conditionals = False
    mid_circuit = False
    seen_measured: set[int] = set()

    for index, op in enumerate(circuit.operations):
        if isinstance(op, GateOperation):
            if seen_measured.intersection(op.qubits):
                mid_circuit = True
            if fuse and len(op.qubits) == 1:
                pending.setdefault(op.qubits[0], []).append(index)
                continue
            for qubit in op.qubits:
                flush(qubit)
            steps.append(("gate", index))
        elif isinstance(op, Measurement):
            flush(op.qubit)
            seen_measured.add(op.qubit)
            measured_qubits.append(op.qubit)
            measured_bits.add(op.bit)
            bit_sources[op.bit] = op.qubit
            steps.append(("measure", index))
        elif isinstance(op, ConditionalGate):
            if seen_measured.intersection(op.qubits):
                mid_circuit = True
            has_conditionals = True
            for qubit in op.qubits:
                flush(qubit)
            steps.append(("cond", index))
        elif isinstance(op, Barrier):
            for qubit in op.qubits:
                flush(qubit)
    flush_all()

    return LoweringPlan(
        steps=steps,
        fused=fuse,
        num_measurements=len(measured_qubits),
        has_conditionals=has_conditionals,
        has_mid_circuit_measurement=mid_circuit,
        measured_qubits=tuple(measured_qubits),
        measured_bits=tuple(sorted(measured_bits)),
        bit_sources=bit_sources,
    )


def _materialize(circuit: Circuit, plan: LoweringPlan) -> KernelProgram:
    """Instantiate a plan against a concrete circuit's matrices/durations.

    The matrix arithmetic mirrors :func:`lower` operation for operation
    (initial copy, left-multiplication order, identity elision), so the
    produced program is bit-identical to ``lower(circuit, fuse)``.
    """
    source = circuit.operations
    ops: list[KernelOp] = []
    for step in plan.steps:
        kind = step[0]
        if kind == "run":
            _, indices, qubit = step
            first = source[indices[0]]
            matrix = np.array(first.gate.matrix, dtype=complex)
            duration = first.duration
            for index in indices[1:]:
                op = source[index]
                matrix = op.gate.matrix @ matrix
                duration += op.duration
            if plan.fused and np.array_equal(matrix, _IDENTITY_2):
                continue
            ops.append(KernelOp(GATE, matrix=matrix, qubits=(qubit,), duration=duration))
        elif kind == "gate":
            op = source[step[1]]
            ops.append(
                KernelOp(
                    GATE,
                    matrix=np.asarray(op.gate.matrix, dtype=complex),
                    qubits=op.qubits,
                    duration=op.duration,
                )
            )
        elif kind == "measure":
            op = source[step[1]]
            ops.append(KernelOp(MEASURE, qubits=op.qubits, duration=op.duration, bit=op.bit))
        else:  # "cond"
            op = source[step[1]]
            ops.append(
                KernelOp(
                    COND_GATE,
                    matrix=np.asarray(op.gate.matrix, dtype=complex),
                    qubits=op.qubits,
                    duration=op.duration,
                    condition_bit=op.condition_bit,
                )
            )
    return KernelProgram(
        num_qubits=circuit.num_qubits,
        num_bits=circuit.num_bits,
        ops=ops,
        fused=plan.fused,
        num_measurements=plan.num_measurements,
        has_conditionals=plan.has_conditionals,
        has_mid_circuit_measurement=plan.has_mid_circuit_measurement,
        measured_qubits=plan.measured_qubits,
        measured_bits=plan.measured_bits,
    )


_PLAN_CACHE_CAP = 256
_plans: "OrderedDict[tuple, LoweringPlan]" = OrderedDict()
_plan_stats = {"hits": 0, "misses": 0}


def plan_for(circuit: Circuit, fuse: bool = True) -> LoweringPlan:
    """The (cached) :class:`LoweringPlan` of ``circuit``'s structure.

    Structurally identical circuits (same gate positions, any parameter
    values) share one plan object, so fleet runtimes can group circuits by
    plan identity and perform fusion control-flow analysis once per shape.
    """
    key = structure_key(circuit, fuse)
    plan = _plans.get(key)
    if plan is None:
        _plan_stats["misses"] += 1
        plan = _build_plan(circuit, fuse)
        _plans[key] = plan
        while len(_plans) > _PLAN_CACHE_CAP:
            _plans.popitem(last=False)
    else:
        _plan_stats["hits"] += 1
        _plans.move_to_end(key)
    return plan


def lower_structural(circuit: Circuit, fuse: bool = True) -> KernelProgram:
    """:func:`lower` through the structural plan cache.

    Bit-identical to ``lower(circuit, fuse)``; structurally identical
    circuits (same gate positions, any parameter values) pay the fusion
    control-flow analysis once.
    """
    return _materialize(circuit, plan_for(circuit, fuse))


def plan_cache_stats() -> dict[str, int]:
    """Hit/miss counters of the structural plan cache (process-wide)."""
    return dict(_plan_stats)


# ---------------------------------------------------------------------- #
# Per-circuit program cache
# ---------------------------------------------------------------------- #
_cache: "weakref.WeakKeyDictionary[Circuit, dict]" = weakref.WeakKeyDictionary()

#: Content-addressed programs: structurally identical circuits built as
#: distinct objects (RB/QAOA generators rebuild every sequence) share one
#: lowered program.  LRU-capped so long-lived processes stay bounded.
_CONTENT_CACHE_CAP = 1024
_content_cache: "OrderedDict[str, KernelProgram]" = OrderedDict()
_content_stats = {"hits": 0, "misses": 0}


def _fingerprint(circuit: Circuit) -> tuple:
    # Identity of every operation: catches appends, removals and interior
    # replacement.  (An id can in principle be reused by a new op allocated
    # at a freed op's address; callers mutating circuits that aggressively
    # should call lower() directly.)
    return tuple(map(id, circuit.operations))


def circuit_content_key(circuit: Circuit, fuse: bool) -> str:
    """Content hash of everything lowering reads: structure *and* values."""
    hasher = hashlib.sha256()
    hasher.update(f"{circuit.num_qubits}|{circuit.num_bits}|{int(fuse)}".encode())
    for op in circuit.operations:
        if isinstance(op, GateOperation):
            hasher.update(f"g{op.qubits}{op.duration}".encode())
            hasher.update(np.ascontiguousarray(op.gate.matrix, dtype=complex).tobytes())
        elif isinstance(op, Measurement):
            hasher.update(f"m{op.qubits}{op.bit}{op.duration}".encode())
        elif isinstance(op, ConditionalGate):
            hasher.update(f"c{op.qubits}{op.condition_bit}{op.duration}".encode())
            hasher.update(np.ascontiguousarray(op.gate.matrix, dtype=complex).tobytes())
        elif isinstance(op, Barrier):
            hasher.update(f"b{op.qubits}".encode())
        # ClassicalOperation carries no lowering semantics.
    return hasher.hexdigest()


def content_cache_stats() -> dict[str, int]:
    """Hit/miss counters of the content-addressed program cache."""
    return dict(_content_stats)


def _content_lookup(circuit: Circuit, fuse: bool) -> KernelProgram:
    key = circuit_content_key(circuit, fuse)
    program = _content_cache.get(key)
    if program is not None:
        _content_stats["hits"] += 1
        _content_cache.move_to_end(key)
        return program
    _content_stats["misses"] += 1
    program = lower_structural(circuit, fuse=fuse)
    _content_cache[key] = program
    while len(_content_cache) > _CONTENT_CACHE_CAP:
        _content_cache.popitem(last=False)
    return program


def program_for(circuit: Circuit, fuse: bool = True) -> KernelProgram:
    """Cached :func:`lower`; recompiles when the circuit was appended to.

    Two cache levels: a weak per-object fast path (no hashing at all for
    the repeated-execution case), backed by a content-addressed LRU keyed
    on the circuit's full lowering inputs, so distinct objects with
    identical content — every sequence an RB generator rebuilds — share
    one program, and the lowering itself goes through the structural plan
    cache.
    """
    try:
        entry = _cache.get(circuit)
    except TypeError:  # unhashable/unweakrefable circuit-like object
        return lower(circuit, fuse=fuse)
    fingerprint = _fingerprint(circuit)
    if entry is None or entry.get("fingerprint") != fingerprint:
        entry = {"fingerprint": fingerprint}
        _cache[circuit] = entry
    program = entry.get(fuse)
    if program is None:
        program = _content_lookup(circuit, fuse)
        entry[fuse] = program
    return program
