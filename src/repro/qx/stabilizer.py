"""Stabilizer (Clifford) simulator.

The realistic-qubit track of the paper needs to process "a very large graph
... in real-time" of syndrome measurements; state-vector simulation caps out
at a few tens of qubits, so QEC-scale circuits are simulated in the
stabilizer formalism instead.  This is an Aaronson-Gottesman CHP-style
tableau simulator: Clifford gates (H, S, CNOT, CZ, X, Y, Z, SWAP) in O(n)
per gate, measurements in O(n^2), hundreds of qubits comfortably.

The engine is validated against the state-vector engine on small circuits in
the test suite and is used by the QEC layer for circuit-level experiments
that would not fit in a state vector.
"""

from __future__ import annotations

import numpy as np

from repro.core.circuit import Circuit
from repro.core.operations import GateOperation, Measurement

#: Gates the stabilizer engine accepts, mapped to their tableau update.
CLIFFORD_GATES = ("i", "x", "y", "z", "h", "s", "sdag", "cnot", "cz", "swap")


class StabilizerState:
    """Tableau representation of an n-qubit stabilizer state.

    The tableau holds 2n rows (n destabilizers followed by n stabilizers);
    each row is a Pauli string stored as X and Z bit-vectors plus a sign bit.
    """

    def __init__(self, num_qubits: int, rng: np.random.Generator | None = None):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits
        self.rng = rng if rng is not None else np.random.default_rng()
        n = num_qubits
        # x[i, j] / z[i, j]: row i has an X / Z on qubit j; r[i]: sign bit.
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        for i in range(n):
            self.x[i, i] = 1          # destabilizer i = X_i
            self.z[n + i, i] = 1      # stabilizer i   = Z_i

    # ------------------------------------------------------------------ #
    # Gates
    # ------------------------------------------------------------------ #
    def apply_h(self, qubit: int) -> None:
        q = qubit
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def apply_s(self, qubit: int) -> None:
        q = qubit
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def apply_sdag(self, qubit: int) -> None:
        # Sdag = S . Z = three applications of S.
        self.apply_s(qubit)
        self.apply_s(qubit)
        self.apply_s(qubit)

    def apply_x(self, qubit: int) -> None:
        self.r ^= self.z[:, qubit]

    def apply_z(self, qubit: int) -> None:
        self.r ^= self.x[:, qubit]

    def apply_y(self, qubit: int) -> None:
        self.r ^= self.x[:, qubit] ^ self.z[:, qubit]

    def apply_cnot(self, control: int, target: int) -> None:
        c, t = control, target
        self.r ^= self.x[:, c] & self.z[:, t] & (self.x[:, t] ^ self.z[:, c] ^ 1)
        self.x[:, t] ^= self.x[:, c]
        self.z[:, c] ^= self.z[:, t]

    def apply_cz(self, control: int, target: int) -> None:
        self.apply_h(target)
        self.apply_cnot(control, target)
        self.apply_h(target)

    def apply_swap(self, qubit_a: int, qubit_b: int) -> None:
        self.apply_cnot(qubit_a, qubit_b)
        self.apply_cnot(qubit_b, qubit_a)
        self.apply_cnot(qubit_a, qubit_b)

    def apply_gate(self, name: str, qubits: tuple[int, ...]) -> None:
        handlers = {
            "i": lambda: None,
            "x": lambda: self.apply_x(qubits[0]),
            "y": lambda: self.apply_y(qubits[0]),
            "z": lambda: self.apply_z(qubits[0]),
            "h": lambda: self.apply_h(qubits[0]),
            "s": lambda: self.apply_s(qubits[0]),
            "sdag": lambda: self.apply_sdag(qubits[0]),
            "cnot": lambda: self.apply_cnot(qubits[0], qubits[1]),
            "cz": lambda: self.apply_cz(qubits[0], qubits[1]),
            "swap": lambda: self.apply_swap(qubits[0], qubits[1]),
        }
        if name not in handlers:
            raise ValueError(f"gate {name!r} is not a Clifford supported by the stabilizer engine")
        handlers[name]()

    # ------------------------------------------------------------------ #
    # Row algebra (needed for measurement)
    # ------------------------------------------------------------------ #
    def _g(self, x1, z1, x2, z2) -> int:
        """Phase exponent contribution of multiplying two single-qubit Paulis."""
        if x1 == 0 and z1 == 0:
            return 0
        if x1 == 1 and z1 == 1:  # Y
            return int(z2) - int(x2)
        if x1 == 1 and z1 == 0:  # X
            return int(z2) * (2 * int(x2) - 1)
        return int(x2) * (1 - 2 * int(z2))  # Z

    def _rowsum(self, h: int, i: int) -> None:
        """Row h <- row h * row i (Pauli multiplication with phase tracking)."""
        phase = 2 * int(self.r[h]) + 2 * int(self.r[i])
        for j in range(self.num_qubits):
            phase += self._g(self.x[i, j], self.z[i, j], self.x[h, j], self.z[h, j])
        self.r[h] = 1 if phase % 4 == 2 else 0
        self.x[h, :] ^= self.x[i, :]
        self.z[h, :] ^= self.z[i, :]

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def measure(self, qubit: int) -> int:
        """Measure one qubit in the Z basis (collapsing the tableau)."""
        n = self.num_qubits
        q = qubit
        # Random outcome if some stabilizer anticommutes with Z_q.
        anticommuting = [p for p in range(n, 2 * n) if self.x[p, q]]
        if anticommuting:
            p = anticommuting[0]
            for h in range(2 * n):
                if h != p and self.x[h, q]:
                    self._rowsum(h, p)
            self.x[p - n, :] = self.x[p, :]
            self.z[p - n, :] = self.z[p, :]
            self.r[p - n] = self.r[p]
            self.x[p, :] = 0
            self.z[p, :] = 0
            self.z[p, q] = 1
            outcome = int(self.rng.integers(2))
            self.r[p] = outcome
            return outcome
        # Deterministic outcome: compute the sign of the product of stabilizers.
        scratch = 2 * n
        x = np.vstack([self.x, np.zeros((1, n), dtype=np.uint8)])
        z = np.vstack([self.z, np.zeros((1, n), dtype=np.uint8)])
        r = np.append(self.r, 0)
        saved_x, saved_z, saved_r = self.x, self.z, self.r
        self.x, self.z, self.r = x, z, r
        for i in range(n):
            if self.x[i, q]:
                self._rowsum(scratch, i + n)
        outcome = int(self.r[scratch])
        self.x, self.z, self.r = saved_x, saved_z, saved_r
        return outcome

    def measure_all(self) -> list[int]:
        return [self.measure(q) for q in range(self.num_qubits)]

    def expectation_z_deterministic(self, qubit: int) -> int | None:
        """+1/-1 if <Z_q> is deterministic, None if the outcome is random."""
        n = self.num_qubits
        if any(self.x[p, qubit] for p in range(n, 2 * n)):
            return None
        probe = self.copy()
        return 1 if probe.measure(qubit) == 0 else -1

    # ------------------------------------------------------------------ #
    def copy(self) -> "StabilizerState":
        clone = StabilizerState(self.num_qubits, rng=self.rng)
        clone.x = self.x.copy()
        clone.z = self.z.copy()
        clone.r = self.r.copy()
        return clone

    def stabilizer_strings(self) -> list[str]:
        """Human-readable stabilizer generators (e.g. ``+XXI``)."""
        strings = []
        for p in range(self.num_qubits, 2 * self.num_qubits):
            sign = "-" if self.r[p] else "+"
            paulis = []
            for q in range(self.num_qubits):
                xq, zq = self.x[p, q], self.z[p, q]
                paulis.append({(0, 0): "I", (1, 0): "X", (0, 1): "Z", (1, 1): "Y"}[(xq, zq)])
            strings.append(sign + "".join(paulis))
        return strings


class StabilizerSimulator:
    """Multi-shot Clifford circuit simulator on the tableau engine."""

    def __init__(self, seed: int | None = None):
        self.rng = np.random.default_rng(seed)

    def run(self, circuit: Circuit, shots: int = 1) -> dict[str, int]:
        """Execute a Clifford circuit and histogram the measured bit-strings."""
        counts: dict[str, int] = {}
        measured_qubits = [op.qubit for op in circuit.operations if isinstance(op, Measurement)]
        for _ in range(shots):
            state = StabilizerState(circuit.num_qubits, rng=self.rng)
            bits: dict[int, int] = {}
            for op in circuit.operations:
                if isinstance(op, GateOperation):
                    state.apply_gate(op.name, op.qubits)
                elif isinstance(op, Measurement):
                    bits[op.qubit] = state.measure(op.qubit)
            if measured_qubits:
                key = "".join(str(bits[q]) for q in reversed(measured_qubits))
                counts[key] = counts.get(key, 0) + 1
        return counts

    def final_state(self, circuit: Circuit) -> StabilizerState:
        """Tableau after running the gate portion of a circuit."""
        state = StabilizerState(circuit.num_qubits, rng=self.rng)
        for op in circuit.operations:
            if isinstance(op, GateOperation):
                state.apply_gate(op.name, op.qubits)
            elif isinstance(op, Measurement):
                raise ValueError("final_state() requires a measurement-free circuit")
        return state

    @staticmethod
    def is_clifford_circuit(circuit: Circuit) -> bool:
        return all(
            op.name in CLIFFORD_GATES
            for op in circuit.operations
            if isinstance(op, GateOperation)
        )
