"""Stabilizer (Clifford) simulator.

The realistic-qubit track of the paper needs to process "a very large graph
... in real-time" of syndrome measurements; state-vector simulation caps out
at a few tens of qubits, so QEC-scale circuits are simulated in the
stabilizer formalism instead.  This is an Aaronson-Gottesman CHP-style
tableau simulator: Clifford gates (H, S, CNOT, CZ, X, Y, Z, SWAP) in O(n)
per gate, measurements in O(n^2), hundreds of qubits comfortably.

All row algebra is whole-row numpy: the phase of a Pauli-row product is one
vectorized expression over the X/Z bit-planes (no per-qubit Python loop),
and a measurement's anticommuting-row sweep updates every affected row in a
single broadcast operation against the pivot row.

The engine is validated against the state-vector engine on small circuits in
the test suite and is used by the QEC layer for circuit-level experiments
that would not fit in a state vector.  Measurement histograms follow the
same keying convention as :class:`~repro.qx.simulator.QXSimulator`: keys are
ordered by *classical bit* (``Measurement.bit``), lowest bit rightmost, and
a repeated measurement into one bit keeps only the last outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.circuit import Circuit
from repro.core.operations import Barrier, ConditionalGate, GateOperation, Measurement
from repro.qx.keying import key_for_bit_values

#: Gates the stabilizer engine accepts, mapped to their tableau update.
CLIFFORD_GATES = ("i", "x", "y", "z", "h", "s", "sdag", "cnot", "cz", "swap")


def _pauli_phase(x1, z1, x2, z2):
    """Summed phase exponents of multiplying source rows into target rows.

    ``(x1, z1)`` is the source Pauli row and ``(x2, z2)`` the target row(s);
    the return value is the sum over qubits of Aaronson-Gottesman ``g`` —
    the exponent of ``i`` picked up by multiplying the rows, taken along the
    last axis.  Broadcasting a single ``(n,)`` source against an ``(m, n)``
    block of targets yields all ``m`` phase sums in one expression.
    """
    x1 = x1.astype(np.int16)
    z1 = z1.astype(np.int16)
    x2 = x2.astype(np.int16)
    z2 = z2.astype(np.int16)
    g = x1 * z1 * (z2 - x2) + x1 * (1 - z1) * z2 * (2 * x2 - 1) + (1 - x1) * z1 * x2 * (1 - 2 * z2)
    return g.sum(axis=-1)


class StabilizerState:
    """Tableau representation of an n-qubit stabilizer state.

    The tableau holds 2n rows (n destabilizers followed by n stabilizers);
    each row is a Pauli string stored as X and Z bit-vectors plus a sign bit.
    """

    def __init__(self, num_qubits: int, rng: np.random.Generator | None = None):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = num_qubits
        self.rng = rng if rng is not None else np.random.default_rng()
        n = num_qubits
        # x[i, j] / z[i, j]: row i has an X / Z on qubit j; r[i]: sign bit.
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        for i in range(n):
            self.x[i, i] = 1  # destabilizer i = X_i
            self.z[n + i, i] = 1  # stabilizer i   = Z_i

    # ------------------------------------------------------------------ #
    # Gates
    # ------------------------------------------------------------------ #
    def apply_h(self, qubit: int) -> None:
        q = qubit
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def apply_s(self, qubit: int) -> None:
        q = qubit
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def apply_sdag(self, qubit: int) -> None:
        # Sdag = S . Z = three applications of S.
        self.apply_s(qubit)
        self.apply_s(qubit)
        self.apply_s(qubit)

    def apply_x(self, qubit: int) -> None:
        self.r ^= self.z[:, qubit]

    def apply_z(self, qubit: int) -> None:
        self.r ^= self.x[:, qubit]

    def apply_y(self, qubit: int) -> None:
        self.r ^= self.x[:, qubit] ^ self.z[:, qubit]

    def apply_cnot(self, control: int, target: int) -> None:
        c, t = control, target
        self.r ^= self.x[:, c] & self.z[:, t] & (self.x[:, t] ^ self.z[:, c] ^ 1)
        self.x[:, t] ^= self.x[:, c]
        self.z[:, c] ^= self.z[:, t]

    def apply_cz(self, control: int, target: int) -> None:
        self.apply_h(target)
        self.apply_cnot(control, target)
        self.apply_h(target)

    def apply_swap(self, qubit_a: int, qubit_b: int) -> None:
        self.apply_cnot(qubit_a, qubit_b)
        self.apply_cnot(qubit_b, qubit_a)
        self.apply_cnot(qubit_a, qubit_b)

    def apply_gate(self, name: str, qubits: tuple[int, ...]) -> None:
        handler = _GATE_DISPATCH.get(name)
        if handler is None:
            raise ValueError(f"gate {name!r} is not a Clifford supported by the stabilizer engine")
        handler(self, *qubits)

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def measure(self, qubit: int) -> int:
        """Measure one qubit in the Z basis (collapsing the tableau).

        Follows the shared measurement-randomness contract of the engine
        stack: every measurement consumes exactly one uniform draw and
        returns ``1 iff draw < p_one`` (here ``p_one`` is 0.5 for a random
        outcome, 0.0 or 1.0 for a deterministic one) — so a seeded
        trajectory consumes the random stream identically on the tableau,
        dense and MPS engines, and cross-engine histograms of the same seed
        are bit-identical.
        """
        n = self.num_qubits
        q = qubit
        # Random outcome if some stabilizer anticommutes with Z_q.
        pivots = np.nonzero(self.x[n:, q])[0]
        if pivots.size:
            p = int(pivots[0]) + n
            # Every other row carrying an X on q absorbs the pivot row.  The
            # pivot is invariant during the sweep, so all rows update in one
            # broadcast against it instead of 2n sequential rowsums.
            rows = np.nonzero(self.x[:, q])[0]
            rows = rows[rows != p]
            if rows.size:
                phases = (
                    2 * self.r[rows].astype(np.int16)
                    + 2 * int(self.r[p])
                    + _pauli_phase(self.x[p], self.z[p], self.x[rows], self.z[rows])
                )
                self.r[rows] = (phases % 4 == 2).astype(np.uint8)
                self.x[rows] ^= self.x[p]
                self.z[rows] ^= self.z[p]
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            self.x[p] = 0
            self.z[p] = 0
            self.z[p, q] = 1
            outcome = 1 if self.rng.random() < 0.5 else 0
            self.r[p] = outcome
            return outcome
        outcome = self._deterministic_outcome(q)
        # Deterministic outcomes still consume their draw (p_one is exactly
        # 0.0 or 1.0, so the comparison never flips the result).
        return 1 if self.rng.random() < float(outcome) else 0

    def measure_pinned(self, qubit: int, outcome: int = 0) -> tuple[int, bool]:
        """Measure one qubit, pinning a random outcome instead of sampling it.

        This is the reference-frame hook of the Pauli-frame sampler
        (:mod:`repro.qec.pauli_frame`): the tableau runs the noiseless
        syndrome-extraction circuit exactly once, and every measurement whose
        outcome is not determined by the state collapses onto the pinned
        ``outcome`` *without consuming a random draw* — the resulting outcome
        sequence is the deterministic reference frame that sampled Pauli
        errors are propagated against.  Returns ``(outcome, deterministic)``
        where ``deterministic`` reports whether the state forced the result
        (in which case the forced value is returned and ``outcome`` is
        ignored).  The tableau collapses exactly as :meth:`measure` would for
        the same result.
        """
        n = self.num_qubits
        q = qubit
        pivots = np.nonzero(self.x[n:, q])[0]
        if not pivots.size:
            return self._deterministic_outcome(q), True
        p = int(pivots[0]) + n
        rows = np.nonzero(self.x[:, q])[0]
        rows = rows[rows != p]
        if rows.size:
            phases = (
                2 * self.r[rows].astype(np.int16)
                + 2 * int(self.r[p])
                + _pauli_phase(self.x[p], self.z[p], self.x[rows], self.z[rows])
            )
            self.r[rows] = (phases % 4 == 2).astype(np.uint8)
            self.x[rows] ^= self.x[p]
            self.z[rows] ^= self.z[p]
        self.x[p - n] = self.x[p]
        self.z[p - n] = self.z[p]
        self.r[p - n] = self.r[p]
        self.x[p] = 0
        self.z[p] = 0
        self.z[p, q] = 1
        outcome = 1 if outcome else 0
        self.r[p] = outcome
        return outcome, False

    def reset(self, qubit: int) -> None:
        """Reset one qubit to |0> (measure, flip on 1) without consuming rng.

        Both collapse branches land in the same state, so no random draw is
        needed: a random outcome is pinned to 0, a deterministic 1 is
        corrected with an X.
        """
        outcome, _ = self.measure_pinned(qubit, 0)
        if outcome:
            self.apply_x(qubit)

    def _deterministic_outcome(self, qubit: int) -> int:
        """Sign of the stabilizer product fixing Z_qubit, without mutation.

        Accumulates the product of the stabilizer rows selected by the
        destabilizer X-column into local scratch arrays — the tableau and the
        random stream are untouched, so deterministic read-out is side-effect
        free.
        """
        n = self.num_qubits
        scratch_x = np.zeros(n, dtype=np.uint8)
        scratch_z = np.zeros(n, dtype=np.uint8)
        sign = 0
        for i in np.nonzero(self.x[:n, qubit])[0]:
            row = int(i) + n
            phase = (
                2 * sign
                + 2 * int(self.r[row])
                + int(_pauli_phase(self.x[row], self.z[row], scratch_x, scratch_z))
            )
            sign = 1 if phase % 4 == 2 else 0
            scratch_x ^= self.x[row]
            scratch_z ^= self.z[row]
        return sign

    def measure_all(self) -> list[int]:
        return [self.measure(q) for q in range(self.num_qubits)]

    def expectation_z_deterministic(self, qubit: int) -> int | None:
        """+1/-1 if <Z_q> is deterministic, None if the outcome is random."""
        n = self.num_qubits
        if self.x[n:, qubit].any():
            return None
        return 1 if self._deterministic_outcome(qubit) == 0 else -1

    # ------------------------------------------------------------------ #
    def copy(self) -> "StabilizerState":
        """Independent deep copy, including an independently derived rng.

        The clone's generator is spawned from the parent's, so probe
        measurements on a copy never perturb the parent's random stream
        (the runtime determinism contract), while remaining a deterministic
        function of the parent's seed.
        """
        clone = StabilizerState(self.num_qubits, rng=self.rng.spawn(1)[0])
        clone.x = self.x.copy()
        clone.z = self.z.copy()
        clone.r = self.r.copy()
        return clone

    def stabilizer_strings(self) -> list[str]:
        """Human-readable stabilizer generators (e.g. ``+XXI``)."""
        strings = []
        for p in range(self.num_qubits, 2 * self.num_qubits):
            sign = "-" if self.r[p] else "+"
            paulis = []
            for q in range(self.num_qubits):
                xq, zq = self.x[p, q], self.z[p, q]
                paulis.append({(0, 0): "I", (1, 0): "X", (0, 1): "Z", (1, 1): "Y"}[(xq, zq)])
            strings.append(sign + "".join(paulis))
        return strings


#: Gate name -> tableau update, resolved once at import time: apply_gate sits
#: on the per-shot hot path of the auto-dispatched engine, so it must not
#: rebuild a handler table per call.
_GATE_DISPATCH = {
    "i": lambda self, qubit: None,
    "x": StabilizerState.apply_x,
    "y": StabilizerState.apply_y,
    "z": StabilizerState.apply_z,
    "h": StabilizerState.apply_h,
    "s": StabilizerState.apply_s,
    "sdag": StabilizerState.apply_sdag,
    "cnot": StabilizerState.apply_cnot,
    "cz": StabilizerState.apply_cz,
    "swap": StabilizerState.apply_swap,
}


@dataclass
class ReferenceRun:
    """Reference frame of one noiseless tableau execution of a circuit.

    ``outcomes[i]`` is the result of the circuit's *i*-th measurement
    operation (in program order) with every random outcome pinned to 0;
    ``deterministic[i]`` records whether the state forced that outcome.
    Pauli-frame sampling (:mod:`repro.qec.pauli_frame`) replays sampled
    errors as deviations from this frame, so the expensive tableau
    simulation happens once per circuit, not once per shot.
    """

    num_qubits: int
    outcomes: list[int] = field(default_factory=list)
    deterministic: list[bool] = field(default_factory=list)
    #: Final classical-bit values (last write wins), as `_run_shot` reports.
    bits: dict[int, int] = field(default_factory=dict)

    @property
    def all_deterministic(self) -> bool:
        return all(self.deterministic)


class StabilizerSimulator:
    """Multi-shot Clifford circuit simulator on the tableau engine."""

    def __init__(self, seed: int | None = None, rng: np.random.Generator | None = None):
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def run(self, circuit: Circuit, shots: int = 1) -> dict[str, int]:
        """Execute a Clifford circuit and histogram the measured bit-strings.

        Histogram keys follow the QX convention: character ``j`` of a key is
        the outcome of classical bit ``sorted(bits)[-1 - j]`` (lowest bit
        rightmost), ``Measurement.bit`` cross-maps are honoured, and the last
        measurement writing a bit wins.  Conditional Clifford gates are
        evaluated against the bits measured so far.
        """
        counts: dict[str, int] = {}
        for _ in range(shots):
            bits = self._run_shot(circuit)
            if bits:
                key = key_for_bit_values(bits)
                counts[key] = counts.get(key, 0) + 1
        return counts

    def _run_shot(self, circuit: Circuit) -> dict[int, int]:
        """One tableau execution; returns the classical bits it wrote."""
        state = StabilizerState(circuit.num_qubits, rng=self.rng)
        bits: dict[int, int] = {}
        for op in circuit.operations:
            if isinstance(op, GateOperation):
                state.apply_gate(op.name, op.qubits)
            elif isinstance(op, Measurement):
                bits[op.bit] = state.measure(op.qubit)
            elif isinstance(op, ConditionalGate):
                if bits.get(op.condition_bit, 0):
                    state.apply_gate(op.gate.name, op.qubits)
        return bits

    def reference_run(self, circuit: Circuit) -> ReferenceRun:
        """Execute a Clifford circuit once with pinned measurement outcomes.

        No randomness is consumed: measurements collapse via
        :meth:`StabilizerState.measure_pinned` (random outcomes pinned to 0),
        and conditional gates are evaluated against the pinned bits.  The
        returned :class:`ReferenceRun` is the reference frame for
        Pauli-frame sampling of circuit-level noise.
        """
        state = StabilizerState(circuit.num_qubits, rng=self.rng)
        reference = ReferenceRun(num_qubits=circuit.num_qubits)
        for op in circuit.operations:
            if isinstance(op, GateOperation):
                state.apply_gate(op.name, op.qubits)
            elif isinstance(op, Measurement):
                outcome, deterministic = state.measure_pinned(op.qubit, 0)
                reference.outcomes.append(outcome)
                reference.deterministic.append(deterministic)
                reference.bits[op.bit] = outcome
            elif isinstance(op, ConditionalGate):
                if reference.bits.get(op.condition_bit, 0):
                    state.apply_gate(op.gate.name, op.qubits)
            elif isinstance(op, Barrier):
                continue
        return reference

    def final_state(self, circuit: Circuit) -> StabilizerState:
        """Tableau after running the gate portion of a circuit."""
        state = StabilizerState(circuit.num_qubits, rng=self.rng)
        for op in circuit.operations:
            if isinstance(op, GateOperation):
                state.apply_gate(op.name, op.qubits)
            elif isinstance(op, Measurement):
                raise ValueError("final_state() requires a measurement-free circuit")
        return state

    @staticmethod
    def is_clifford_circuit(circuit: Circuit) -> bool:
        """True when every (conditional) gate is in the supported Clifford set."""
        for op in circuit.operations:
            if isinstance(op, GateOperation) and op.name not in CLIFFORD_GATES:
                return False
            if isinstance(op, ConditionalGate) and op.gate.name not in CLIFFORD_GATES:
                return False
        return True
