"""Quantum channels as Pauli-transfer matrices (PTMs).

The trajectory error models in :mod:`repro.qx.error_models` describe noise
operationally — "with probability p, apply X/Y/Z" — which forces the
density engine into per-gate Kraus contractions.  This module gives every
channel a single linear-algebra representation instead: a real
``4**k x 4**k`` matrix acting on the coefficient vector of the density
matrix in an orthonormal Hermitian operator basis (the Pauli-transfer
matrix).  In that picture

* a unitary gate is a PTM (conjugation lifted to superoperator form),
* every noise channel is a PTM,
* channel composition is a plain matrix product, and
* the density matrix itself is a *real* vector of length ``4**n``.

That last point is what the compiler below exploits — the technique of
quantumsim's ``Operation.from_sequence(...).compile()``: each circuit
position (a gate *and* the noise channels trailing it) fuses into one
superoperator, adjacent single-qubit channels fold together, and identity
channels are elided, mirroring the :class:`~repro.qx.compiled
.KernelProgram` lowering (pending per-qubit runs, flushed at multi-qubit
boundaries).

Nothing here touches an engine: :mod:`repro.qx.density` executes the
compiled :class:`ChannelProgram` with stride-view superoperator kernels.
"""

from __future__ import annotations

import numpy as np

from repro.qx.compiled import GATE, MEASURE, KernelProgram, program_for

_ATOL = 1e-12

_SQRT2 = float(np.sqrt(2.0))

#: Unnormalised single-qubit Pauli matrices in the conventional order.
PAULIS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class PauliBasis:
    """An orthonormal Hermitian operator basis for one qubit.

    The PTM representation is defined relative to a basis ``{B_i}`` with
    ``Tr[B_i^dag B_j] = delta_ij``; the default is the normalised Pauli
    basis ``{I, X, Y, Z} / sqrt(2)``, in which PTMs of Pauli channels are
    diagonal and the state vector is real.  Alternative orderings (or
    rotated bases) plug in through :meth:`from_matrices`.
    """

    __slots__ = ("labels", "matrices")

    def __init__(self, labels: tuple[str, ...], matrices: np.ndarray):
        matrices = np.asarray(matrices, dtype=complex)
        if matrices.shape != (4, 2, 2):
            raise ValueError("a single-qubit operator basis needs shape (4, 2, 2)")
        if len(labels) != 4:
            raise ValueError("need exactly four basis labels")
        gram = np.einsum("iab,jab->ij", matrices.conj(), matrices)
        if not np.allclose(gram, np.eye(4), atol=1e-10):
            raise ValueError("basis matrices are not orthonormal under the trace inner product")
        for index, matrix in enumerate(matrices):
            if not np.allclose(matrix, matrix.conj().T, atol=1e-10):
                raise ValueError(f"basis element {labels[index]!r} is not Hermitian")
        self.labels = tuple(labels)
        self.matrices = matrices

    @classmethod
    def ixyz(cls) -> "PauliBasis":
        """The normalised Pauli basis ``{I, X, Y, Z} / sqrt(2)``."""
        stack = np.stack([PAULIS[p] for p in "IXYZ"]) / _SQRT2
        return cls(("I", "X", "Y", "Z"), stack)

    @classmethod
    def from_matrices(cls, labels, matrices) -> "PauliBasis":
        return cls(tuple(labels), np.asarray(matrices, dtype=complex))

    def tensor_elements(self, num_qubits: int) -> np.ndarray:
        """All ``4**k`` elements of the k-qubit product basis.

        Element ``i`` is the Kronecker product over qubits with operand 0
        as the *most* significant base-4 digit of ``i`` — the same textbook
        convention the gate kernels use for matrix indices.
        """
        elements = self.matrices
        for _ in range(num_qubits - 1):
            count, dim = elements.shape[0], elements.shape[1]
            elements = np.einsum("iab,jcd->ijacbd", elements, self.matrices).reshape(
                count * 4, dim * 2, dim * 2
            )
        return elements

    def traces(self, num_qubits: int = 1) -> np.ndarray:
        """Trace of each k-qubit basis element.

        The linear functional expressing trace preservation of a PTM as
        ``traces @ ptm == traces``.
        """
        return np.einsum("iaa->i", self.tensor_elements(num_qubits))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PauliBasis({'/'.join(self.labels)})"


_DEFAULT_BASIS: PauliBasis | None = None


def default_basis() -> PauliBasis:
    """The module-wide default ``{I, X, Y, Z} / sqrt(2)`` basis (cached)."""
    global _DEFAULT_BASIS
    if _DEFAULT_BASIS is None:
        _DEFAULT_BASIS = PauliBasis.ixyz()
    return _DEFAULT_BASIS


# ---------------------------------------------------------------------- #
# State conversions
# ---------------------------------------------------------------------- #
def density_to_vector(rho: np.ndarray, basis: PauliBasis | None = None) -> np.ndarray:
    """Coefficient vector ``r_i = Tr[B_i^dag rho]`` of a density matrix.

    Qubit ``q`` occupies the base-4 digit of significance ``4**q`` in the
    flat index, matching the little-endian bit layout of the state-vector
    engine.  Real for Hermitian ``rho`` in a Hermitian basis; cost is
    ``O(n 4**n)`` via per-qubit partial transforms.
    """
    basis = basis or default_basis()
    rho = np.asarray(rho, dtype=complex)
    num_qubits = rho.shape[0].bit_length() - 1
    # Interleave row/column bits per qubit: axes (r_0, c_0, r_1, c_1, ...)
    # with axis pair 2j belonging to qubit n-1-j.
    tensor = rho.reshape((2,) * (2 * num_qubits))
    order = [axis for q in range(num_qubits) for axis in (q, num_qubits + q)]
    tensor = np.transpose(tensor, order)
    contract = basis.matrices.conj()  # r_i = sum_ab conj(B_i[a, b]) rho[a, b]
    for qubit_axis in range(num_qubits):
        axis = qubit_axis  # processed axes collapse 2 -> 1, so pairs stay put
        moved = np.tensordot(contract, tensor, axes=([1, 2], [axis, axis + 1]))
        tensor = np.moveaxis(moved, 0, axis)
    vector = tensor.reshape(-1)
    if np.max(np.abs(vector.imag)) > 1e-9 * max(1.0, np.max(np.abs(vector.real))):
        raise ValueError("density matrix is not Hermitian: coefficient vector is complex")
    return np.ascontiguousarray(vector.real)


def vector_to_density(vector: np.ndarray, basis: PauliBasis | None = None) -> np.ndarray:
    """Reassemble ``rho = sum_i r_i B_i`` from its coefficient vector."""
    basis = basis or default_basis()
    vector = np.asarray(vector)
    num_qubits = (vector.size.bit_length() - 1) // 2
    tensor = vector.astype(complex).reshape((4,) * num_qubits)
    # Expand each base-4 axis into an interleaved (row, column) pair.
    for qubit_axis in range(num_qubits):
        axis = 2 * qubit_axis
        moved = np.tensordot(basis.matrices, tensor, axes=([0], [axis]))
        tensor = np.moveaxis(moved, [0, 1], [axis, axis + 1])
    order = [2 * q for q in range(num_qubits)] + [2 * q + 1 for q in range(num_qubits)]
    dim = 1 << num_qubits
    return np.ascontiguousarray(np.transpose(tensor, order).reshape(dim, dim))


# ---------------------------------------------------------------------- #
# Channels
# ---------------------------------------------------------------------- #
class Channel:
    """A quantum channel represented by its Pauli-transfer matrix.

    ``ptm[i, j] = Tr[B_i^dag E(B_j)]`` over the k-qubit product basis;
    real for Hermiticity-preserving maps in a Hermitian basis.  Operand 0
    is the most significant base-4 digit of the PTM index.
    """

    __slots__ = ("ptm", "num_qubits", "basis")

    def __init__(self, ptm: np.ndarray, basis: PauliBasis | None = None):
        ptm = np.ascontiguousarray(ptm, dtype=np.float64)
        if ptm.ndim != 2 or ptm.shape[0] != ptm.shape[1]:
            raise ValueError("a PTM must be square")
        num_qubits = (ptm.shape[0].bit_length() - 1) // 2
        if 4**num_qubits != ptm.shape[0]:
            raise ValueError("PTM dimension must be a power of four")
        self.ptm = ptm
        self.num_qubits = num_qubits
        self.basis = basis or default_basis()

    # -- constructors ---------------------------------------------------- #
    @classmethod
    def from_kraus(cls, kraus, basis: PauliBasis | None = None) -> "Channel":
        """Channel ``E(rho) = sum_k K rho K^dag`` from its Kraus operators."""
        basis = basis or default_basis()
        kraus = [np.asarray(k, dtype=complex) for k in kraus]
        num_qubits = kraus[0].shape[0].bit_length() - 1
        elements = basis.tensor_elements(num_qubits)
        images = np.zeros_like(elements)
        for operator in kraus:
            conjugated = np.einsum("ab,jbc,dc->jad", operator, elements, operator.conj())
            images = images + conjugated
        ptm = np.einsum("iab,jab->ij", elements.conj(), images)
        if np.max(np.abs(ptm.imag)) > 1e-10:
            raise ValueError("Kraus map is not Hermiticity-preserving in this basis")
        return cls(ptm.real, basis)

    @classmethod
    def from_unitary(cls, matrix, basis: PauliBasis | None = None) -> "Channel":
        """The superoperator lift ``rho -> U rho U^dag`` of a unitary gate."""
        return cls.from_kraus([matrix], basis)

    @classmethod
    def identity(cls, num_qubits: int = 1, basis: PauliBasis | None = None) -> "Channel":
        return cls(np.eye(4**num_qubits), basis)

    @classmethod
    def pauli(cls, p_x: float, p_y: float, p_z: float) -> "Channel":
        """Biased Pauli channel: apply X/Y/Z with the given probabilities.

        Diagonal in the default basis: each Pauli axis is damped by twice
        the weight of the anticommuting error probabilities.
        """
        diag = [
            1.0,
            1.0 - 2.0 * (p_y + p_z),
            1.0 - 2.0 * (p_x + p_z),
            1.0 - 2.0 * (p_x + p_y),
        ]
        return cls(np.diag(diag))

    @classmethod
    def depolarizing(cls, probability: float, num_qubits: int = 1) -> "Channel":
        """Uniform depolarising channel on ``num_qubits`` qubits.

        With probability ``p`` one of the ``4**k - 1`` non-identity k-qubit
        Paulis is applied uniformly — the exact channel of both the
        trajectory model (k=1) and the Pauli-frame sampler's two-qubit gate
        noise (k=2, uniform over 15); every non-identity axis is damped by
        ``1 - p * 4**k / (4**k - 1)``.
        """
        dim = 4**num_qubits
        scale = 1.0 - probability * dim / (dim - 1)
        diag = np.full(dim, scale)
        diag[0] = 1.0
        return cls(np.diag(diag))

    @classmethod
    def phase_flip(cls, probability: float) -> "Channel":
        """Apply Z with probability ``p`` (pure dephasing)."""
        return cls.pauli(0.0, 0.0, probability)

    @classmethod
    def amplitude_damping(cls, gamma: float) -> "Channel":
        """True T1 amplitude damping with decay probability ``gamma``."""
        kraus = [
            np.array([[1.0, 0.0], [0.0, np.sqrt(1.0 - gamma)]], dtype=complex),
            np.array([[0.0, np.sqrt(gamma)], [0.0, 0.0]], dtype=complex),
        ]
        return cls.from_kraus(kraus)

    @classmethod
    def reset(cls, probability: float) -> "Channel":
        """Measure-and-reset-to-``|0>`` with probability ``p``.

        The exact ensemble of the trajectory picture's probabilistic
        collapse (measure, then X on outcome 1): Kraus ``{P0, |0><1|}``,
        i.e. ``E(rho) = Tr(rho) |0><0|`` on the firing branch.
        """
        fire = np.zeros((4, 4))
        fire[0, 0] = 1.0
        fire[3, 0] = 1.0
        return cls((1.0 - probability) * np.eye(4) + probability * fire)

    @classmethod
    def decoherence(cls, p_decay: float, p_dephase: float) -> "Channel":
        """The T1/T2 trajectory model's exact channel.

        With probability ``p_decay`` the qubit is measured and reset to
        ``|0>``; otherwise it dephases (Z) with probability ``p_dephase`` —
        exactly the branch structure of
        :class:`~repro.qx.error_models.DecoherenceError`, so trajectory
        averages converge to this channel (the trajectory approximation of
        amplitude damping, which unlike :meth:`amplitude_damping` destroys
        all coherence on the decay branch).
        """
        survive = cls.phase_flip(p_dephase).ptm
        collapse = cls.reset(1.0).ptm
        return cls((1.0 - p_decay) * survive + p_decay * collapse)

    # -- algebra --------------------------------------------------------- #
    def compose(self, other: "Channel") -> "Channel":
        """The channel "``other``, then ``self``" (``self`` applied after)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot compose channels of different arity")
        return Channel(self.ptm @ other.ptm, self.basis)

    def tensor(self, other: "Channel") -> "Channel":
        """Parallel composition; ``self`` takes the more significant digits."""
        return Channel(np.kron(self.ptm, other.ptm), self.basis)

    def is_identity(self, atol: float = _ATOL) -> bool:
        return bool(np.allclose(self.ptm, np.eye(self.ptm.shape[0]), atol=atol))

    # -- diagnostics ----------------------------------------------------- #
    def choi(self) -> np.ndarray:
        """The Choi matrix ``sum_ij ptm[i, j] B_i (x) conj(B_j)``.

        Positive semidefinite iff the channel is completely positive.
        """
        elements = self.basis.tensor_elements(self.num_qubits)
        return np.einsum("ij,iab,jcd->acbd", self.ptm, elements, elements.conj()).reshape(
            self.ptm.shape
        )

    def is_trace_preserving(self, atol: float = 1e-9) -> bool:
        traces = self.basis.traces(self.num_qubits)
        return bool(np.allclose(traces @ self.ptm, traces, atol=atol))

    def is_cptp(self, atol: float = 1e-9) -> bool:
        """Complete positivity (Choi spectrum) plus trace preservation."""
        if not self.is_trace_preserving(atol):
            return False
        eigenvalues = np.linalg.eigvalsh(self.choi())
        return bool(eigenvalues.min() > -atol)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Channel(qubits={self.num_qubits}, basis={self.basis!r})"


# PTMs of unitary lifts are recomputed for every gate position; circuits
# repeat a handful of matrices (h, cnot, rotations), so memoise by content
# exactly like the 2q structure classifier in repro.qx.kernels.
_PTM_CACHE: dict[bytes, np.ndarray] = {}
_PTM_CACHE_CAP = 512


def ptm_of_unitary(matrix: np.ndarray, basis: PauliBasis | None = None) -> np.ndarray:
    """Memoised ``Channel.from_unitary(matrix).ptm`` (default basis only)."""
    if basis is not None and basis is not default_basis():
        return Channel.from_unitary(matrix, basis).ptm
    key = np.ascontiguousarray(matrix).tobytes()
    cached = _PTM_CACHE.get(key)
    if cached is not None:
        return cached
    ptm = Channel.from_unitary(matrix).ptm
    if len(_PTM_CACHE) >= _PTM_CACHE_CAP:
        _PTM_CACHE.pop(next(iter(_PTM_CACHE)))
    _PTM_CACHE[key] = ptm
    return ptm


# ---------------------------------------------------------------------- #
# Compiled channel programs
# ---------------------------------------------------------------------- #
class ChannelOp:
    """One placed superoperator: a PTM bound to a qubit tuple."""

    __slots__ = ("ptm", "qubits")

    def __init__(self, ptm: np.ndarray, qubits: tuple[int, ...]):
        self.ptm = np.ascontiguousarray(ptm, dtype=np.float64)
        self.qubits = tuple(qubits)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ChannelOp(qubits={self.qubits})"


class ChannelProgram:
    """A circuit + error model lowered to a flat list of superoperators.

    ``confusion`` is the classical read-out channel (a 2x2 row-stochastic
    matrix, or ``None`` for perfect read-out) applied to the outcome
    distribution of every measured qubit — measurement error lives on the
    classical side of the quantum/classical boundary, so it never enters
    the PTM stream.
    """

    __slots__ = ("num_qubits", "ops", "confusion", "fused", "gate_count")

    def __init__(
        self,
        num_qubits: int,
        ops: list[ChannelOp],
        confusion: np.ndarray | None = None,
        fused: bool = True,
        gate_count: int = 0,
    ):
        self.num_qubits = num_qubits
        self.ops = ops
        self.confusion = confusion
        self.fused = fused
        #: Gate positions in the source program (before fusion/elision).
        self.gate_count = gate_count

    @property
    def positions(self) -> int:
        """Superoperator applications the engine will execute."""
        return len(self.ops)


def _lift_noise_to(ptm: np.ndarray, noise_qubits, gate_qubits) -> np.ndarray:
    """Embed a noise PTM on (a subset of) a gate's qubits into the gate's arity."""
    noise_qubits = tuple(noise_qubits)
    gate_qubits = tuple(gate_qubits)
    if noise_qubits == gate_qubits:
        return ptm
    if set(noise_qubits) == set(gate_qubits):
        # Same qubits, different operand order: permute the PTM's per-qubit
        # axes (operand 0 is the most significant base-4 digit).
        k = len(gate_qubits)
        perm = [noise_qubits.index(qubit) for qubit in gate_qubits]
        tensor = ptm.reshape((4,) * (2 * k))
        return tensor.transpose(perm + [k + axis for axis in perm]).reshape(4**k, 4**k)
    if len(noise_qubits) != 1:
        raise ValueError(
            "noise channels must act on one qubit or exactly the gate's qubits"
        )
    factors = [ptm if qubit == noise_qubits[0] else np.eye(4) for qubit in gate_qubits]
    lifted = factors[0]
    for factor in factors[1:]:
        lifted = np.kron(lifted, factor)
    return lifted


def compile_channels(
    program: KernelProgram,
    error_model=None,
    *,
    num_qubits: int | None = None,
    fuse: bool = True,
    basis: PauliBasis | None = None,
) -> ChannelProgram:
    """Lower a :class:`KernelProgram` + error model into a channel program.

    Every gate position becomes one superoperator: the gate's PTM composed
    with the PTMs of the noise channels the error model attaches to it
    (``noise_channels``); spectator noise (crosstalk) emits separate ops.
    With ``fuse=True`` adjacent single-qubit superoperators on the same
    qubit fold into one PTM and near-identity PTMs are elided, mirroring
    the single-qubit run fusion of :func:`repro.qx.compiled.lower`; with
    ``fuse=False`` each gate and each noise channel stays its own op (the
    per-position baseline the benchmarks compare against).

    The program must be trajectory-free (no conditionals, no mid-circuit
    measurement) and, when noise is attached, lowered with ``fuse=False``
    so every physical gate keeps its noise-injection point.
    """
    basis = basis or default_basis()
    register = num_qubits or program.num_qubits
    if program.needs_trajectories:
        raise ValueError(
            "channel compilation requires a trajectory-free program "
            "(no feedback, terminal measurements only)"
        )
    if error_model is not None and not getattr(error_model, "channel_exact", False):
        raise ValueError(
            f"error model {error_model.describe()} has no exact channel representation"
        )

    ops: list[ChannelOp] = []
    # qubit -> accumulated 4x4 PTM, mirroring lower()'s pending 1q runs.
    pending: dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        ptm = pending.pop(qubit, None)
        if ptm is None:
            return
        if fuse and np.allclose(ptm, np.eye(4), atol=_ATOL):
            return  # identity elision
        ops.append(ChannelOp(ptm, (qubit,)))

    def emit(ptm: np.ndarray, qubits: tuple[int, ...]) -> None:
        if len(qubits) == 1 and fuse:
            qubit = qubits[0]
            previous = pending.get(qubit)
            pending[qubit] = ptm if previous is None else ptm @ previous
            return
        for qubit in qubits:
            flush(qubit)
        if fuse and np.allclose(ptm, np.eye(ptm.shape[0]), atol=_ATOL):
            return
        ops.append(ChannelOp(ptm, qubits))

    gate_count = 0
    for op in program.ops:
        if op.kind == MEASURE:
            continue
        if op.kind != GATE:  # pragma: no cover - guarded by needs_trajectories
            raise ValueError("channel compilation hit a non-gate, non-measure op")
        gate_count += 1
        position = ptm_of_unitary(op.matrix, basis)
        attached: list[tuple[tuple[int, ...], Channel]] = []
        if error_model is not None:
            attached = [
                (noise_qubits, channel)
                for noise_qubits, channel in error_model.noise_channels(op.qubits, op.duration)
                or []
                # Mirror the trajectory path: spectators outside the register
                # (crosstalk neighbours of edge qubits) are dropped, not errors.
                if all(qubit < register for qubit in noise_qubits)
            ]
        if attached and program.fused:
            raise ValueError("noisy channel compilation requires an unfused program")
        if fuse:
            # Fold trailing noise on the gate's own qubits into one
            # superoperator per circuit position; spectators stay separate.
            for noise_qubits, channel in attached:
                if set(noise_qubits) <= set(op.qubits):
                    lifted = _lift_noise_to(channel.ptm, noise_qubits, op.qubits)
                    position = lifted @ position
            emit(position, op.qubits)
            for noise_qubits, channel in attached:
                if not set(noise_qubits) <= set(op.qubits):
                    emit(channel.ptm, noise_qubits)
        else:
            emit(position, op.qubits)
            for noise_qubits, channel in attached:
                emit(channel.ptm, noise_qubits)
    for qubit in list(pending):
        flush(qubit)

    confusion = None
    if error_model is not None and program.num_measurements:
        confusion = error_model.confusion()
    return ChannelProgram(
        num_qubits=register,
        ops=ops,
        confusion=confusion,
        fused=fuse,
        gate_count=gate_count,
    )


def compile_circuit(
    circuit,
    error_model=None,
    *,
    num_qubits: int | None = None,
    fuse: bool = True,
    basis: PauliBasis | None = None,
) -> ChannelProgram:
    """Compile a circuit directly (lowering unfused so noise points survive)."""
    program = program_for(circuit, fuse=False)
    return compile_channels(
        program, error_model, num_qubits=num_qubits, fuse=fuse, basis=basis
    )
