"""Density-matrix simulator.

A small (<= 10 qubit) density-matrix engine used to cross-check the
trajectory-based error models of the state-vector engine: the depolarising
channel has an exact Kraus representation here, so expectation values from
many state-vector trajectories must converge to the density-matrix result.
"""

from __future__ import annotations

import numpy as np

from repro.core.circuit import Circuit
from repro.core.operations import GateOperation, Measurement


def _contract(tensor: np.ndarray, matrix: np.ndarray, qubits, num_qubits: int, offset: int):
    """Contract a ``2**k x 2**k`` gate into a ``(2,) * 2n`` density tensor.

    ``offset`` selects the index group: 0 applies the matrix to the row
    indices (``U rho``), ``num_qubits`` to the column indices (``rho U^T``,
    so pass the conjugate matrix for ``rho U^dagger``).  Qubit q of the flat
    index is axis ``offset + n - 1 - q`` (little-endian flat index, C-order
    tensor axes); gate operand 0 is the most significant bit of the gate
    index, matching ``repro.core.circuit._expand_gate``.
    """
    k = len(qubits)
    reshaped = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
    axes = [offset + num_qubits - 1 - q for q in qubits]
    contracted = np.tensordot(reshaped, tensor, axes=(list(range(k, 2 * k)), axes))
    return np.moveaxis(contracted, list(range(k)), axes)


class DensityMatrixSimulator:
    """Exact open-system simulation with per-gate depolarising noise."""

    def __init__(self, num_qubits: int, depolarizing_rate: float = 0.0):
        if num_qubits > 10:
            raise ValueError("density-matrix engine limited to 10 qubits")
        if not 0.0 <= depolarizing_rate <= 1.0:
            raise ValueError("depolarizing_rate outside [0, 1]")
        self.num_qubits = num_qubits
        self.depolarizing_rate = depolarizing_rate
        dim = 2**num_qubits
        self.rho = np.zeros((dim, dim), dtype=complex)
        self.rho[0, 0] = 1.0

    def reset(self) -> None:
        self.rho[:] = 0
        self.rho[0, 0] = 1.0

    def apply_unitary(self, matrix: np.ndarray, qubits: tuple[int, ...]) -> None:
        """Apply ``U rho U^dagger`` by tensor contraction on the gate's axes.

        Cost is ``O(4**k * 4**n)`` for a k-qubit gate instead of the
        ``O(8**n)`` of materialising the full ``2**n x 2**n`` unitary and
        taking two dense matrix products.
        """
        matrix = np.asarray(matrix, dtype=complex)
        tensor = self.rho.reshape((2,) * (2 * self.num_qubits))
        tensor = _contract(tensor, matrix, qubits, self.num_qubits, 0)
        tensor = _contract(tensor, matrix.conj(), qubits, self.num_qubits, self.num_qubits)
        self.rho = np.ascontiguousarray(tensor).reshape(self.rho.shape)

    def apply_depolarizing(self, qubit: int, probability: float) -> None:
        """Apply the exact single-qubit depolarising channel.

        Uses the closed block form: splitting rho into 2x2 blocks over the
        target qubit, ``(X rho X + Y rho Y + Z rho Z)`` equals
        ``[[A + 2D, -B], [-C, D + 2A]]``, so the channel mixes the diagonal
        blocks and damps the off-diagonal ones in place — no Pauli matrices
        are ever expanded.
        """
        if probability <= 0:
            return
        n = self.num_qubits
        high = 2 ** (n - 1 - qubit)
        low = 2**qubit
        # The block update mutates reshape views in place, which requires a
        # C-contiguous rho (reshaping a non-contiguous array returns a copy
        # and the writes would be silently discarded).
        if not self.rho.flags.c_contiguous:
            self.rho = np.ascontiguousarray(self.rho)
        blocks = self.rho.reshape(high, 2, low, high, 2, low)
        mix = 2.0 * probability / 3.0
        damp = 1.0 - 4.0 * probability / 3.0
        top = blocks[:, 0, :, :, 0, :].copy()
        bottom = blocks[:, 1, :, :, 1, :]
        blocks[:, 0, :, :, 0, :] = (1.0 - mix) * top + mix * bottom
        blocks[:, 1, :, :, 1, :] = (1.0 - mix) * bottom + mix * top
        blocks[:, 0, :, :, 1, :] *= damp
        blocks[:, 1, :, :, 0, :] *= damp

    def run(self, circuit: Circuit) -> None:
        """Evolve the density matrix through a measurement-free circuit."""
        if circuit.num_qubits > self.num_qubits:
            raise ValueError("circuit does not fit")
        for op in circuit.operations:
            if isinstance(op, Measurement):
                raise ValueError("density-matrix run() does not support measurements")
            if isinstance(op, GateOperation):
                self.apply_unitary(op.gate.matrix, op.qubits)
                if self.depolarizing_rate > 0:
                    for qubit in op.qubits:
                        self.apply_depolarizing(qubit, self.depolarizing_rate)

    def probabilities(self) -> np.ndarray:
        return np.real(np.diag(self.rho)).clip(min=0.0)

    def expectation_z(self, qubit: int) -> float:
        probs = self.probabilities()
        indices = np.arange(probs.size)
        signs = 1.0 - 2.0 * ((indices >> qubit) & 1)
        return float(np.sum(signs * probs))

    def purity(self) -> float:
        return float(np.real(np.trace(self.rho @ self.rho)))

    def fidelity_with_pure(self, state: np.ndarray) -> float:
        state = np.asarray(state, dtype=complex)
        return float(np.real(state.conj() @ self.rho @ state))

    def trace(self) -> float:
        return float(np.real(np.trace(self.rho)))
