"""Density-matrix simulator.

A small (<= 10 qubit) density-matrix engine used to cross-check the
trajectory-based error models of the state-vector engine: the depolarising
channel has an exact Kraus representation here, so expectation values from
many state-vector trajectories must converge to the density-matrix result.
"""

from __future__ import annotations

import numpy as np

from repro.core.circuit import Circuit, _expand_gate
from repro.core.operations import GateOperation, Measurement


class DensityMatrixSimulator:
    """Exact open-system simulation with per-gate depolarising noise."""

    def __init__(self, num_qubits: int, depolarizing_rate: float = 0.0):
        if num_qubits > 10:
            raise ValueError("density-matrix engine limited to 10 qubits")
        if not 0.0 <= depolarizing_rate <= 1.0:
            raise ValueError("depolarizing_rate outside [0, 1]")
        self.num_qubits = num_qubits
        self.depolarizing_rate = depolarizing_rate
        dim = 2 ** num_qubits
        self.rho = np.zeros((dim, dim), dtype=complex)
        self.rho[0, 0] = 1.0

    def reset(self) -> None:
        self.rho[:] = 0
        self.rho[0, 0] = 1.0

    def apply_unitary(self, matrix: np.ndarray, qubits: tuple[int, ...]) -> None:
        full = _expand_gate(matrix, qubits, self.num_qubits)
        self.rho = full @ self.rho @ full.conj().T

    def apply_depolarizing(self, qubit: int, probability: float) -> None:
        """Apply the exact single-qubit depolarising channel."""
        if probability <= 0:
            return
        paulis = {
            "x": np.array([[0, 1], [1, 0]], dtype=complex),
            "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
            "z": np.array([[1, 0], [0, -1]], dtype=complex),
        }
        new_rho = (1.0 - probability) * self.rho
        for matrix in paulis.values():
            full = _expand_gate(matrix, (qubit,), self.num_qubits)
            new_rho += (probability / 3.0) * (full @ self.rho @ full.conj().T)
        self.rho = new_rho

    def run(self, circuit: Circuit) -> None:
        """Evolve the density matrix through a measurement-free circuit."""
        if circuit.num_qubits > self.num_qubits:
            raise ValueError("circuit does not fit")
        for op in circuit.operations:
            if isinstance(op, Measurement):
                raise ValueError("density-matrix run() does not support measurements")
            if isinstance(op, GateOperation):
                self.apply_unitary(op.gate.matrix, op.qubits)
                if self.depolarizing_rate > 0:
                    for qubit in op.qubits:
                        self.apply_depolarizing(qubit, self.depolarizing_rate)

    def probabilities(self) -> np.ndarray:
        return np.real(np.diag(self.rho)).clip(min=0.0)

    def expectation_z(self, qubit: int) -> float:
        probs = self.probabilities()
        indices = np.arange(probs.size)
        signs = 1.0 - 2.0 * ((indices >> qubit) & 1)
        return float(np.sum(signs * probs))

    def purity(self) -> float:
        return float(np.real(np.trace(self.rho @ self.rho)))

    def fidelity_with_pure(self, state: np.ndarray) -> float:
        state = np.asarray(state, dtype=complex)
        return float(np.real(state.conj() @ self.rho @ state))

    def trace(self) -> float:
        return float(np.real(np.trace(self.rho)))
