"""Channel-native density-matrix engine.

The density matrix is stored as a *real* coefficient vector of length
``4**n`` in the normalised Pauli basis (qubit ``q`` owns the base-4 digit
of stride ``4**q``), and every operation — unitary gates and noise
channels alike — is one Pauli-transfer-matrix application executed by
stride-view superoperator kernels in the style of :mod:`repro.qx.kernels`:
a strided reshape exposes any qubit's dim-4 axis directly, diagonal PTMs
(Pauli channels) scale blocks in place, and dense PTMs run double-buffered
matrix products against a single scratch buffer, so peak memory stays at
two real ``4**n`` buffers (half the footprint of one complex ``2**n x
2**n`` matrix).

The array module is duck-typed: ``numpy`` by default, ``cupy`` when
importable and requested (``device="gpu"``), so the same kernels run on a
GPU without code changes — :func:`gpu_available` reports the honest
capability.

Executing a compiled :class:`~repro.qx.channels.ChannelProgram` (one fused
superoperator per circuit position) replaces the per-gate Kraus
contraction of the previous engine; that path is kept verbatim as
:class:`ContractionDensityMatrix`, the ground truth the kernels are tested
against and the baseline the channel-fusion benchmarks compare to.
"""

from __future__ import annotations

import numpy as np

from repro.core.circuit import Circuit
from repro.core.operations import GateOperation, Measurement
from repro.qx.channels import (
    Channel,
    ChannelProgram,
    compile_circuit,
    density_to_vector,
    ptm_of_unitary,
    vector_to_density,
)

#: Qubit cap of the density engine — the single source of truth shared with
#: the backend registry's feasibility check (same pattern as the MPS
#: engine's DENSE_MATERIALISE_LIMIT).  A 16-qubit Pauli vector is 4**16
#: float64 = 34 GB; two buffers fit large-memory hosts, and the register
#: cap is checked before any allocation happens.
DENSITY_MAX_QUBITS = 16

_ATOL = 1e-12


# ---------------------------------------------------------------------- #
# Array-module selection (numpy / cupy duck typing)
# ---------------------------------------------------------------------- #
_CUPY_MODULE = None
_CUPY_CHECKED = False


def _cupy():
    """The imported ``cupy`` module, or ``None`` when unavailable (cached)."""
    global _CUPY_MODULE, _CUPY_CHECKED
    if not _CUPY_CHECKED:
        _CUPY_CHECKED = True
        try:  # pragma: no cover - exercised only on GPU hosts
            import cupy

            cupy.zeros(1)  # fail fast when the driver is absent
            _CUPY_MODULE = cupy
        except Exception:
            _CUPY_MODULE = None
    return _CUPY_MODULE


def gpu_available() -> bool:
    """True when ``cupy`` imports and can allocate on a device."""
    return _cupy() is not None


def array_module(device: str = "auto"):
    """The array namespace for ``device``: ``"cpu"``, ``"gpu"`` or ``"auto"``.

    ``"gpu"`` raises when cupy is unavailable instead of silently falling
    back; ``"auto"`` prefers the GPU when one exists.
    """
    if device == "cpu":
        return np
    if device == "gpu":
        module = _cupy()
        if module is None:
            raise RuntimeError("device='gpu' requested but cupy is not importable")
        return module
    if device == "auto":
        return _cupy() or np
    raise ValueError(f"unknown device {device!r} (expected 'cpu', 'gpu' or 'auto')")


def _to_numpy(array) -> np.ndarray:
    """Bring a possibly-on-device array back to host numpy."""
    if hasattr(array, "get"):
        return np.asarray(array.get())
    return np.asarray(array)


# ---------------------------------------------------------------------- #
# Stride-view superoperator kernels
# ---------------------------------------------------------------------- #
# Qubit q occupies the base-4 digit of stride 4**q in the coefficient
# vector, so — exactly like the dim-2 views of repro.qx.kernels — a
# strided reshape (always a view on a C-contiguous vector) exposes its
# axis as (high, 4, 4**q).


def _is_diagonal(ptm: np.ndarray) -> bool:
    off = ptm - np.diag(np.diag(ptm))
    return bool(np.max(np.abs(off)) < _ATOL)


def _scale_diagonal_1q(vector, diag, qubit) -> None:
    view = vector.reshape(-1, 4, 4**qubit)
    for index in range(4):
        entry = float(diag[index])
        if abs(entry - 1.0) > _ATOL:
            view[:, index, :] *= entry


def _scale_diagonal_2q(vector, diag, q_low, q_high, swapped) -> None:
    low = 4**q_low
    mid = 4 ** (q_high - q_low - 1)
    view = vector.reshape(-1, 4, mid, 4, low)
    for index in range(16):
        entry = float(diag[index])
        if abs(entry - 1.0) > _ATOL:
            digit_0, digit_1 = index >> 2, index & 3
            if swapped:
                digit_0, digit_1 = digit_1, digit_0
            view[:, digit_0, :, digit_1, :] *= entry


def _apply_dense_1q(vector, scratch, ptm, qubit, xp):
    """Dense 4x4 PTM on one qubit; returns ``(result, spare)`` buffers."""
    if qubit == 0:
        # The qubit's digit is the fastest axis: one flat gemm, no copies.
        xp.matmul(vector.reshape(-1, 4), ptm.T, out=scratch.reshape(-1, 4))
    else:
        view = vector.reshape(-1, 4, 4**qubit)
        xp.matmul(ptm, view, out=scratch.reshape(view.shape))
    return scratch, vector


def _operand_ordered(ptm: np.ndarray, swapped: bool) -> np.ndarray:
    """PTM with its operand digits swapped when the memory order differs."""
    if not swapped:
        return ptm
    return np.ascontiguousarray(
        ptm.reshape(4, 4, 4, 4).transpose(1, 0, 3, 2).reshape(16, 16)
    )


# Gather/scatter work buffers for the far-apart 2q kernel are sized so one
# chunk streams through the last-level cache region without TLB thrash; the
# engine keeps them alive across ops so large registers fault them in once.
_WORK_ELEMS = 8 << 20


def _work_buffers(work, elements, dtype, xp):
    """Two flat reusable buffers of at least ``elements`` entries each."""
    if work is None:
        work = {}
    buffers = work.get("2q")
    if buffers is None or buffers[0].size < elements or buffers[0].dtype != dtype:
        size = max(elements, _WORK_ELEMS)
        buffers = (xp.empty(size, dtype), xp.empty(size, dtype))
        work["2q"] = buffers
    return buffers


def _apply_dense_2q(vector, scratch, ptm, qubit_0, qubit_1, xp, work=None):
    """Dense 16x16 PTM on ``(qubit_0, qubit_1)``; operand 0 most significant."""
    q_low, q_high = (qubit_0, qubit_1) if qubit_0 < qubit_1 else (qubit_1, qubit_0)
    # Memory order puts q_high's digit first; reorder the PTM when the
    # gate's operand 0 is the *lower* qubit index.
    ordered = xp.asarray(_operand_ordered(np.asarray(ptm), swapped=qubit_0 == q_low))
    low = 4**q_low
    if q_high == q_low + 1:
        if low == 1:
            # The pair owns the two fastest digits: one flat gemm.
            xp.matmul(
                vector.reshape(-1, 16), ordered.T, out=scratch.reshape(-1, 16)
            )
            return scratch, vector
        # Adjacent digits form one contiguous dim-16 axis: plain gemm.
        view = vector.reshape(-1, 16, low)
        xp.matmul(ordered, view, out=scratch.reshape(view.shape))
        return scratch, vector
    mid = 4 ** (q_high - q_low - 1)
    view = vector.reshape(-1, 4, mid, 4, low)
    blocks_h = view.shape[0]
    out = scratch.reshape(view.shape)
    # Far-apart digits: gather each chunk into a contiguous (16, rest)
    # buffer, apply the PTM as one gemm, and scatter back.  A single
    # whole-vector tensordot would allocate (and page-fault) a full-size
    # temporary on every call and run orders of magnitude slower for
    # high-stride digit pairs.
    span = 16 * mid * low
    if span >= _WORK_ELEMS:
        # Chunk the mid axis; the outer h loop is short (h <= N / span).
        chunk = max(1, _WORK_ELEMS // (16 * low))
        gather, result = _work_buffers(work, 16 * chunk * low, vector.dtype, xp)
        gather = gather[: 16 * chunk * low].reshape(4, 4, chunk, low)
        result = result[: 16 * chunk * low].reshape(4, 4, chunk, low)
        for index in range(blocks_h):
            for start in range(0, mid, chunk):
                stop = min(mid, start + chunk)
                width = stop - start
                lhs = gather[:, :, :width, :]
                rhs = result[:, :, :width, :]
                lhs[...] = view[index, :, start:stop, :, :].transpose(0, 2, 1, 3)
                xp.matmul(ordered, lhs.reshape(16, -1), out=rhs.reshape(16, -1))
                out[index, :, start:stop, :, :] = rhs.transpose(0, 2, 1, 3)
        return scratch, vector
    # Small span: chunk the h axis instead so each gemm still covers a
    # cache-sized block of the vector.
    chunk = max(1, min(blocks_h, _WORK_ELEMS // span))
    gather, result = _work_buffers(work, chunk * span, vector.dtype, xp)
    gather = gather[: chunk * span].reshape(4, 4, chunk, mid, low)
    result = result[: chunk * span].reshape(4, 4, chunk, mid, low)
    for start in range(0, blocks_h, chunk):
        stop = min(blocks_h, start + chunk)
        width = stop - start
        lhs = gather[:, :, :width, :, :]
        rhs = result[:, :, :width, :, :]
        lhs[...] = view[start:stop].transpose(1, 3, 0, 2, 4)
        xp.matmul(ordered, lhs.reshape(16, -1), out=rhs.reshape(16, -1))
        out[start:stop] = rhs.transpose(2, 0, 3, 1, 4)
    return scratch, vector


def _apply_dense_generic(vector, ptm, qubits, num_qubits, xp):
    """Reference k-qubit PTM application (axis-permutation pipeline).

    Mirrors ``repro.qx.kernels.apply_gate_generic``; the execution path for
    k >= 3 superoperators, which are rare enough that specialised kernels
    are not worth their complexity.  Allocates instead of double-buffering.
    """
    k = len(qubits)
    tensor = vector.reshape((4,) * num_qubits)
    axes = [num_qubits - 1 - q for q in qubits]
    blocks = xp.asarray(np.asarray(ptm)).reshape((4,) * (2 * k))
    contracted = xp.tensordot(blocks, tensor, axes=(list(range(k, 2 * k)), axes))
    contracted = xp.moveaxis(contracted, list(range(k)), axes)
    return xp.ascontiguousarray(contracted).reshape(-1)


# ---------------------------------------------------------------------- #
# The engine
# ---------------------------------------------------------------------- #
class DensityMatrixSimulator:
    """Exact open-system simulation on the compiled-channel representation.

    The state lives as the real Pauli-basis vector ``self.vector``; the
    dense matrix is available (and assignable) through the ``rho``
    property for diagnostics and small-register cross-checks.  ``xp``
    overrides the array module directly (any numpy-like namespace);
    ``device`` selects it by name.
    """

    def __init__(
        self,
        num_qubits: int,
        depolarizing_rate: float = 0.0,
        device: str = "cpu",
        xp=None,
        dtype=np.float64,
    ):
        if num_qubits > DENSITY_MAX_QUBITS:
            raise ValueError(
                f"density-matrix engine limited to {DENSITY_MAX_QUBITS} qubits"
            )
        if not 0.0 <= depolarizing_rate <= 1.0:
            raise ValueError("depolarizing_rate outside [0, 1]")
        self.num_qubits = num_qubits
        self.depolarizing_rate = depolarizing_rate
        self._xp = xp if xp is not None else array_module(device)
        self.dtype = dtype
        self.vector = self._xp.asarray(_ground_state_vector(num_qubits, dtype))
        self._scratch = None
        self._work: dict = {}

    # -- state access ---------------------------------------------------- #
    @property
    def rho(self) -> np.ndarray:
        """The dense density matrix (materialised on demand, host memory)."""
        return vector_to_density(_to_numpy(self.vector))

    @rho.setter
    def rho(self, matrix: np.ndarray) -> None:
        vector = density_to_vector(np.asarray(matrix, dtype=complex))
        if vector.size != 4**self.num_qubits:
            raise ValueError("density matrix does not match the register size")
        self.vector = self._xp.asarray(vector.astype(self.dtype))

    def reset(self) -> None:
        self.vector = self._xp.asarray(_ground_state_vector(self.num_qubits, self.dtype))

    def _ensure_scratch(self):
        if self._scratch is None:
            self._scratch = self._xp.empty_like(self.vector)
        return self._scratch

    # -- superoperator application --------------------------------------- #
    def apply_ptm(self, ptm: np.ndarray, qubits: tuple[int, ...]) -> None:
        """Apply one Pauli-transfer matrix to ``qubits`` (operand 0 high)."""
        xp = self._xp
        k = len(qubits)
        host_ptm = np.asarray(ptm, dtype=self.dtype)
        if k <= 2 and _is_diagonal(host_ptm):
            diag = np.diag(host_ptm)
            if k == 1:
                _scale_diagonal_1q(self.vector, diag, qubits[0])
            else:
                q_low, q_high = sorted(qubits)
                _scale_diagonal_2q(self.vector, diag, q_low, q_high, qubits[0] == q_low)
            return
        if k == 1:
            device_ptm = xp.asarray(host_ptm)
            self.vector, self._scratch = _apply_dense_1q(
                self.vector, self._ensure_scratch(), device_ptm, qubits[0], xp
            )
        elif k == 2:
            self.vector, self._scratch = _apply_dense_2q(
                self.vector,
                self._ensure_scratch(),
                host_ptm,
                qubits[0],
                qubits[1],
                xp,
                work=self._work,
            )
        else:
            self.vector = _apply_dense_generic(
                self.vector, host_ptm, qubits, self.num_qubits, xp
            )

    def apply_channel(self, channel: Channel, qubits: tuple[int, ...]) -> None:
        """Apply a :class:`~repro.qx.channels.Channel` to ``qubits``."""
        self.apply_ptm(channel.ptm, qubits)

    def run_channels(self, program: ChannelProgram) -> None:
        """Execute a compiled channel program (one PTM per fused position)."""
        if program.num_qubits > self.num_qubits:
            raise ValueError("channel program does not fit")
        for op in program.ops:
            self.apply_ptm(op.ptm, op.qubits)

    # -- legacy per-gate API --------------------------------------------- #
    def apply_unitary(self, matrix: np.ndarray, qubits: tuple[int, ...]) -> None:
        """Apply ``U rho U^dagger`` as a single PTM application."""
        self.apply_ptm(ptm_of_unitary(np.asarray(matrix, dtype=complex)), qubits)

    def apply_depolarizing(self, qubit: int, probability: float) -> None:
        """Apply the exact single-qubit depolarising channel (diagonal PTM)."""
        if probability <= 0:
            return
        scale = 1.0 - 4.0 * probability / 3.0
        _scale_diagonal_1q(self.vector, np.array([1.0, scale, scale, scale]), qubit)

    def run(self, circuit: Circuit, channel_fusion: bool = True) -> None:
        """Evolve through a measurement-free circuit via the compiled path."""
        if circuit.num_qubits > self.num_qubits:
            raise ValueError("circuit does not fit")
        for op in circuit.operations:
            if isinstance(op, Measurement):
                raise ValueError("density-matrix run() does not support measurements")
        noise = (
            _UniformDepolarizing(self.depolarizing_rate)
            if self.depolarizing_rate > 0
            else None
        )
        program = compile_circuit(circuit, noise, fuse=channel_fusion)
        self.run_channels(program)

    # -- observables ----------------------------------------------------- #
    def probabilities(self) -> np.ndarray:
        """Diagonal of rho in the computational basis (host numpy array).

        Only the ``{I, Z}**n`` sub-tensor of the coefficient vector
        contributes to the diagonal, so this is ``O(2**n)`` work on a
        ``4**n`` state — no dense matrix is ever materialised.
        """
        xp = self._xp
        izonly = self.vector.reshape((4,) * self.num_qubits)
        picker = [0, 3]
        for axis in range(self.num_qubits):
            index = (slice(None),) * axis + (picker,)
            izonly = izonly[index]
        flat = xp.ascontiguousarray(izonly).reshape(-1)
        # Per-qubit transform <b|B_I|b> = 1/sqrt2, <b|B_Z|b> = (1-2b)/sqrt2.
        half = 1.0 / np.sqrt(2.0)
        for axis in range(self.num_qubits):
            view = flat.reshape(-1, 2, 2 ** (self.num_qubits - 1 - axis))
            zero = view[:, 0, :].copy()
            one = view[:, 1, :]
            view[:, 0, :] = half * (zero + one)
            view[:, 1, :] = half * (zero - one)
        return _to_numpy(flat).clip(min=0.0)

    def expectation_z(self, qubit: int) -> float:
        probs = self.probabilities()
        indices = np.arange(probs.size)
        signs = 1.0 - 2.0 * ((indices >> qubit) & 1)
        return float(np.sum(signs * probs))

    def purity(self) -> float:
        """``Tr[rho^2]`` — the squared norm of the coefficient vector."""
        return float(_to_numpy(self.vector @ self.vector))

    def trace(self) -> float:
        return float(_to_numpy(self.vector[0])) * float(np.sqrt(2.0) ** self.num_qubits)

    def fidelity_with_pure(self, state: np.ndarray) -> float:
        """``<psi| rho |psi>`` (materialises rho; small registers only)."""
        state = np.asarray(state, dtype=complex)
        return float(np.real(state.conj() @ self.rho @ state))


def _ground_state_vector(num_qubits: int, dtype) -> np.ndarray:
    """Coefficient vector of ``|0...0><0...0|``: ``(B_I + B_Z)/sqrt2`` per qubit."""
    vector = np.zeros(4**num_qubits, dtype=dtype)
    weight = (0.5**0.5) ** num_qubits
    patterns = np.arange(1 << num_qubits, dtype=np.int64)
    indices = np.zeros_like(patterns)
    for qubit in range(num_qubits):
        indices += ((patterns >> qubit) & 1) * 3 * 4**qubit
    vector[indices] = weight
    return vector


class _UniformDepolarizing:
    """Minimal channel provider for ``run(circuit)``'s uniform gate noise.

    Mirrors the legacy engine semantics (the same per-qubit rate after
    every gate) without importing :mod:`repro.qx.error_models`, which
    sits above this module in the layering.
    """

    channel_exact = True

    def __init__(self, rate: float):
        self.rate = rate
        self._channel = Channel.depolarizing(rate)

    def noise_channels(self, qubits, duration_ns):
        return [((qubit,), self._channel) for qubit in qubits]

    def confusion(self):
        return None

    def describe(self) -> str:
        return f"depolarizing(p={self.rate:g})"


# ---------------------------------------------------------------------- #
# Per-gate-contraction reference engine
# ---------------------------------------------------------------------- #
def _contract(tensor: np.ndarray, matrix: np.ndarray, qubits, num_qubits: int, offset: int):
    """Contract a ``2**k x 2**k`` gate into a ``(2,) * 2n`` density tensor.

    ``offset`` selects the index group: 0 applies the matrix to the row
    indices (``U rho``), ``num_qubits`` to the column indices (``rho U^T``,
    so pass the conjugate matrix for ``rho U^dagger``).  Qubit q of the flat
    index is axis ``offset + n - 1 - q`` (little-endian flat index, C-order
    tensor axes); gate operand 0 is the most significant bit of the gate
    index, matching ``repro.core.circuit._expand_gate``.
    """
    k = len(qubits)
    reshaped = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
    axes = [offset + num_qubits - 1 - q for q in qubits]
    contracted = np.tensordot(reshaped, tensor, axes=(list(range(k, 2 * k)), axes))
    return np.moveaxis(contracted, list(range(k)), axes)


class ContractionDensityMatrix:
    """The pre-channel per-gate-contraction engine, kept verbatim.

    Ground truth for the PTM kernels' property tests and the baseline the
    channel-fusion benchmarks measure against: gates contract into a dense
    complex ``2**n x 2**n`` matrix one at a time, noise applies as a
    separate Kraus block-update per qubit.
    """

    def __init__(self, num_qubits: int, depolarizing_rate: float = 0.0):
        if num_qubits > DENSITY_MAX_QUBITS:
            raise ValueError(
                f"density-matrix engine limited to {DENSITY_MAX_QUBITS} qubits"
            )
        if not 0.0 <= depolarizing_rate <= 1.0:
            raise ValueError("depolarizing_rate outside [0, 1]")
        self.num_qubits = num_qubits
        self.depolarizing_rate = depolarizing_rate
        dim = 2**num_qubits
        self.rho = np.zeros((dim, dim), dtype=complex)
        self.rho[0, 0] = 1.0

    def reset(self) -> None:
        self.rho[:] = 0
        self.rho[0, 0] = 1.0

    def apply_unitary(self, matrix: np.ndarray, qubits: tuple[int, ...]) -> None:
        """Apply ``U rho U^dagger`` by tensor contraction on the gate's axes.

        Cost is ``O(4**k * 4**n)`` for a k-qubit gate instead of the
        ``O(8**n)`` of materialising the full ``2**n x 2**n`` unitary and
        taking two dense matrix products.
        """
        matrix = np.asarray(matrix, dtype=complex)
        tensor = self.rho.reshape((2,) * (2 * self.num_qubits))
        tensor = _contract(tensor, matrix, qubits, self.num_qubits, 0)
        tensor = _contract(tensor, matrix.conj(), qubits, self.num_qubits, self.num_qubits)
        self.rho = np.ascontiguousarray(tensor).reshape(self.rho.shape)

    def apply_depolarizing(self, qubit: int, probability: float) -> None:
        """Apply the exact single-qubit depolarising channel.

        Uses the closed block form: splitting rho into 2x2 blocks over the
        target qubit, ``(X rho X + Y rho Y + Z rho Z)`` equals
        ``[[A + 2D, -B], [-C, D + 2A]]``, so the channel mixes the diagonal
        blocks and damps the off-diagonal ones in place — no Pauli matrices
        are ever expanded.
        """
        if probability <= 0:
            return
        n = self.num_qubits
        high = 2 ** (n - 1 - qubit)
        low = 2**qubit
        # The block update mutates reshape views in place, which requires a
        # C-contiguous rho (reshaping a non-contiguous array returns a copy
        # and the writes would be silently discarded).
        if not self.rho.flags.c_contiguous:
            self.rho = np.ascontiguousarray(self.rho)
        blocks = self.rho.reshape(high, 2, low, high, 2, low)
        mix = 2.0 * probability / 3.0
        damp = 1.0 - 4.0 * probability / 3.0
        top = blocks[:, 0, :, :, 0, :].copy()
        bottom = blocks[:, 1, :, :, 1, :]
        blocks[:, 0, :, :, 0, :] = (1.0 - mix) * top + mix * bottom
        blocks[:, 1, :, :, 1, :] = (1.0 - mix) * bottom + mix * top
        blocks[:, 0, :, :, 1, :] *= damp
        blocks[:, 1, :, :, 0, :] *= damp

    def run(self, circuit: Circuit) -> None:
        """Evolve the density matrix through a measurement-free circuit."""
        if circuit.num_qubits > self.num_qubits:
            raise ValueError("circuit does not fit")
        for op in circuit.operations:
            if isinstance(op, Measurement):
                raise ValueError("density-matrix run() does not support measurements")
            if isinstance(op, GateOperation):
                self.apply_unitary(op.gate.matrix, op.qubits)
                if self.depolarizing_rate > 0:
                    for qubit in op.qubits:
                        self.apply_depolarizing(qubit, self.depolarizing_rate)

    def probabilities(self) -> np.ndarray:
        return np.real(np.diag(self.rho)).clip(min=0.0)

    def expectation_z(self, qubit: int) -> float:
        probs = self.probabilities()
        indices = np.arange(probs.size)
        signs = 1.0 - 2.0 * ((indices >> qubit) & 1)
        return float(np.sum(signs * probs))

    def purity(self) -> float:
        return float(np.real(np.trace(self.rho @ self.rho)))

    def fidelity_with_pure(self, state: np.ndarray) -> float:
        state = np.asarray(state, dtype=complex)
        return float(np.real(state.conj() @ self.rho @ state))

    def trace(self) -> float:
        return float(np.real(np.trace(self.rho)))
