"""Circuit-level noisy QEC: extraction circuit, Pauli-frame sampler,
union-find decoder, and the runtime's ``noise_model="circuit"`` mode."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.operations import ConditionalGate, GateOperation, Measurement
from repro.qec.decoder import MatchingDecoder, decoder_for
from repro.qec.pauli_frame import DEPOLARIZING2_FLIPS, FrameNoise, PauliFrameSampler
from repro.qec.surface_code import PlanarSurfaceCode
from repro.qec.union_find import UnionFindDecoder
from repro.qx.stabilizer import StabilizerSimulator

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------- #
# Extraction circuit + reference run
# ---------------------------------------------------------------------- #
class TestExtractionCircuit:
    def test_structure_counts(self):
        code = PlanarSurfaceCode(3)
        rounds = 2
        circuit = code.extraction_circuit(rounds)
        assert circuit.num_qubits == code.num_physical_qubits
        assert circuit.num_bits == rounds * code.num_ancilla
        measurements = [op for op in circuit.operations if isinstance(op, Measurement)]
        assert len(measurements) == rounds * code.num_ancilla
        cnots = [
            op
            for op in circuit.operations
            if isinstance(op, GateOperation) and op.name == "cnot"
        ]
        assert len(cnots) == rounds * sum(len(p) for p in code.plaquettes)
        resets = [op for op in circuit.operations if isinstance(op, ConditionalGate)]
        assert len(resets) == rounds * code.num_ancilla
        # Every reset is conditioned on the bit its ancilla just measured.
        for measurement, reset in zip(measurements, resets, strict=True):
            assert reset.qubits == (measurement.qubit,)
            assert reset.condition_bit == measurement.bit

    def test_bits_are_round_major(self):
        code = PlanarSurfaceCode(3)
        circuit = code.extraction_circuit(2)
        bits = [op.bit for op in circuit.operations if isinstance(op, Measurement)]
        assert bits == list(range(2 * code.num_ancilla))

    def test_rounds_validation(self):
        with pytest.raises(ValueError):
            PlanarSurfaceCode(3).extraction_circuit(0)

    def test_reference_outcomes_deterministic_zero(self):
        code = PlanarSurfaceCode(3)
        reference = StabilizerSimulator(seed=0).reference_run(code.extraction_circuit(2))
        assert reference.all_deterministic
        assert reference.outcomes == [0] * (2 * code.num_ancilla)


# ---------------------------------------------------------------------- #
# Pauli-frame sampler
# ---------------------------------------------------------------------- #
class TestPauliFrameSampler:
    def test_depolarizing_table_covers_all_nonidentity_paulis(self):
        assert DEPOLARIZING2_FLIPS.shape == (15, 4)
        rows = {tuple(row) for row in DEPOLARIZING2_FLIPS.tolist()}
        assert len(rows) == 15
        assert (0, 0, 0, 0) not in rows

    def test_zero_noise_is_noiseless_reference(self):
        code = PlanarSurfaceCode(3)
        sampler = PauliFrameSampler(code.extraction_circuit(2))
        sample = sampler.sample(20, FrameNoise(), seed=1)
        assert not sample.bits.any()
        assert not sample.final_x.any()
        assert not sample.final_z.any()

    def test_measurement_noise_only_leaves_data_clean(self):
        code = PlanarSurfaceCode(3)
        sampler = PauliFrameSampler(code.extraction_circuit(3))
        sample = sampler.sample(
            200, FrameNoise(measurement_error_rate=0.2), seed=2
        )
        assert sample.bits.any()  # read-out flips show up as syndrome bits
        assert not sample.final_x[:, : code.num_data].any()  # data untouched

    def test_seed_determinism_and_seed_sequence(self):
        code = PlanarSurfaceCode(3)
        sampler = PauliFrameSampler(code.extraction_circuit(2))
        noise = FrameNoise(0.05, 0.02, 0.02)
        a = sampler.sample(50, noise, seed=9)
        b = sampler.sample(50, noise, seed=9)
        c = sampler.sample(50, noise, seed=np.random.SeedSequence(9))
        assert np.array_equal(a.bits, b.bits)
        assert np.array_equal(a.final_x, b.final_x)
        assert np.array_equal(a.bits, c.bits)

    def test_rejects_random_reference_outcomes(self):
        from repro.core.circuit import Circuit

        circuit = Circuit(1).h(0).measure(0, 0)
        with pytest.raises(ValueError, match="random outcomes"):
            PauliFrameSampler(circuit)

    def test_rejects_non_clifford_gates(self):
        from repro.core.circuit import Circuit

        circuit = Circuit(1).t(0).measure(0, 0)
        with pytest.raises(ValueError, match="Clifford"):
            PauliFrameSampler(circuit)

    def test_rejects_general_feedback(self):
        from repro.core.circuit import Circuit

        # Conditional X on a *different* qubit than the one measured: real
        # feedback, not the reset idiom.
        circuit = Circuit(2).measure(0, 0).conditional_gate("x", 0, 1)
        with pytest.raises(ValueError, match="reset"):
            PauliFrameSampler(circuit)

    def test_noise_rate_validation(self):
        with pytest.raises(ValueError):
            FrameNoise(cnot_error_rate=1.5)
        with pytest.raises(ValueError):
            FrameNoise(measurement_error_rate=-0.1)

    def test_shots_validation(self):
        code = PlanarSurfaceCode(3)
        sampler = PauliFrameSampler(code.extraction_circuit(1))
        with pytest.raises(ValueError):
            sampler.sample(0, FrameNoise())


# ---------------------------------------------------------------------- #
# Circuit-level memory experiment
# ---------------------------------------------------------------------- #
class TestCircuitMemoryExperiment:
    def test_zero_noise_no_failures_no_defects(self):
        result = PlanarSurfaceCode(3).run_circuit_memory_experiment(0.0, trials=30, seed=1)
        assert result.logical_failures == 0
        assert result.total_defects == 0
        assert result.noise_model == "circuit"
        assert result.decoder == "union_find"

    def test_measurement_noise_only_rarely_fails(self):
        # Pure read-out/reset noise produces time-like defect pairs but no
        # physical X errors on data qubits (the true parity is always 0),
        # so decoder-reported failures must be rare — far below what the
        # same rate of data noise would produce (~10% at d=3, p=0.05).
        result = PlanarSurfaceCode(3).run_circuit_memory_experiment(
            0.0, trials=150, measurement_error_rate=0.05, seed=3
        )
        assert result.total_defects > 0
        assert result.logical_failures <= 3

    def test_seed_determinism(self):
        code = PlanarSurfaceCode(3)
        a = code.run_circuit_memory_experiment(0.01, trials=100, seed=4)
        b = code.run_circuit_memory_experiment(0.01, trials=100, seed=4)
        assert a.logical_failures == b.logical_failures
        assert a.total_defects == b.total_defects

    def test_error_rate_grows_with_p(self):
        code = PlanarSurfaceCode(3)
        low = code.run_circuit_memory_experiment(0.002, trials=800, seed=5)
        high = code.run_circuit_memory_experiment(0.03, trials=800, seed=5)
        assert high.logical_error_rate > low.logical_error_rate

    def test_distance_helps_below_threshold(self):
        p = 0.004
        rate3 = PlanarSurfaceCode(3).run_circuit_memory_experiment(
            p, trials=2000, seed=11
        )
        rate7 = PlanarSurfaceCode(7).run_circuit_memory_experiment(
            p, trials=2000, seed=11
        )
        assert rate7.logical_error_rate < rate3.logical_error_rate

    def test_blossom_cross_check_agrees_at_small_scale(self):
        # Union-find approximates minimum-weight matching: on guaranteed-
        # correctable syndromes they agree exactly (the hypothesis test
        # below); on a full noisy batch the failure counts must stay within
        # a small tolerance of each other.
        code = PlanarSurfaceCode(3)
        uf = code.run_circuit_memory_experiment(0.01, trials=300, seed=6, decoder="union_find")
        mw = code.run_circuit_memory_experiment(0.01, trials=300, seed=6, decoder="matching")
        assert uf.total_defects == mw.total_defects  # same sampled noise
        assert abs(uf.logical_failures - mw.logical_failures) <= 3


# ---------------------------------------------------------------------- #
# Union-find decoder vs blossom
# ---------------------------------------------------------------------- #
def _defects_from_faults(code, rounds, data_faults, measurement_faults):
    """Build the space-time defect set the phenomenological model would see
    for explicit fault locations, plus the true logical parity."""
    errors = np.zeros(code.num_data, dtype=np.int8)
    previous = np.zeros(code.num_ancilla, dtype=np.int8)
    defects = []
    for round_index in range(rounds):
        for fault_round, qubit in data_faults:
            if fault_round == round_index:
                errors[qubit] ^= 1
        observed = code.syndrome(errors).copy()
        for fault_round, ancilla in measurement_faults:
            if fault_round == round_index:
                observed[ancilla] ^= 1
        changed = observed ^ previous
        defects.extend((round_index, int(a)) for a in np.nonzero(changed)[0])
        previous = observed
    changed = code.syndrome(errors) ^ previous
    defects.extend((rounds, int(a)) for a in np.nonzero(changed)[0])
    return defects, code.error_crossing_parity(errors)


class TestUnionFindDecoder:
    def test_empty_defects(self):
        assert UnionFindDecoder(PlanarSurfaceCode(3)).decode([]) == 0

    def test_time_pair_is_trivial(self):
        # A lone measurement error: two time-separated defects on one
        # ancilla, no logical flip.
        code = PlanarSurfaceCode(5)
        decoder = UnionFindDecoder(code)
        for ancilla in range(code.num_ancilla):
            assert decoder.decode([(0, ancilla), (1, ancilla)]) == 0

    def test_single_defects_match_blossom(self):
        for distance in (3, 5, 7):
            code = PlanarSurfaceCode(distance)
            union_find = UnionFindDecoder(code)
            blossom = MatchingDecoder(code)
            for ancilla in range(code.num_ancilla):
                for round_index in (0, 2):
                    defects = [(round_index, ancilla)]
                    assert union_find.decode(defects) == blossom.decode(defects)

    def test_single_data_errors_corrected(self):
        for distance in (3, 5):
            code = PlanarSurfaceCode(distance)
            decoder = UnionFindDecoder(code)
            for qubit in range(code.num_data):
                errors = np.zeros(code.num_data, dtype=np.int8)
                errors[qubit] = 1
                defects = [(0, int(a)) for a in np.nonzero(code.syndrome(errors))[0]]
                assert decoder.decode(defects) == code.error_crossing_parity(errors)

    def test_input_validation(self):
        decoder = UnionFindDecoder(PlanarSurfaceCode(3))
        with pytest.raises(ValueError, match="out of range"):
            decoder.decode([(0, 99)])
        with pytest.raises(ValueError, match="round"):
            decoder.decode([(-1, 0)])
        with pytest.raises(ValueError, match="time_weight"):
            UnionFindDecoder(PlanarSurfaceCode(3), time_weight=0.0)

    def test_duplicate_defects_annihilate(self):
        code = PlanarSurfaceCode(3)
        union_find = UnionFindDecoder(code)
        blossom = MatchingDecoder(code)
        defects = [(0, 0), (0, 0)]
        assert union_find.decode(defects) == blossom.decode(defects) == 0

    @SETTINGS
    @given(
        distance=st.sampled_from([3, 5]),
        seed=st.integers(0, 10_000),
    )
    def test_agreement_on_correctable_syndromes(self, distance, seed):
        """Both decoders correct any fault set of weight <= (d-1)/2, so on
        random correctable syndromes they must agree (with the truth and
        with each other) — the blossom cross-check property."""
        code = PlanarSurfaceCode(distance)
        rounds = 3
        rng = np.random.default_rng(seed)
        budget = (distance - 1) // 2
        num_data_faults = int(rng.integers(0, budget + 1))
        num_measurement_faults = int(budget - num_data_faults)
        data_faults = [
            (int(rng.integers(0, rounds)), int(rng.integers(0, code.num_data)))
            for _ in range(num_data_faults)
        ]
        measurement_faults = [
            (int(rng.integers(0, rounds)), int(rng.integers(0, code.num_ancilla)))
            for _ in range(num_measurement_faults)
        ]
        defects, true_parity = _defects_from_faults(
            code, rounds, data_faults, measurement_faults
        )
        union_find = UnionFindDecoder(code).decode(defects)
        blossom = MatchingDecoder(code).decode(defects)
        assert union_find == blossom == true_parity


# ---------------------------------------------------------------------- #
# Degenerate decoder inputs, both decoders x both noise models
# ---------------------------------------------------------------------- #
class TestDegenerateDecoderInputs:
    @pytest.mark.parametrize("name", ["matching", "union_find"])
    def test_empty_syndrome(self, name):
        code = PlanarSurfaceCode(3)
        assert decoder_for(code, name).decode([]) == 0

    @pytest.mark.parametrize("name", ["matching", "union_find"])
    @pytest.mark.parametrize("noise_model", ["phenomenological", "circuit"])
    def test_zero_noise_both_models(self, name, noise_model):
        code = PlanarSurfaceCode(3)
        if noise_model == "circuit":
            result = code.run_circuit_memory_experiment(0.0, trials=20, seed=1, decoder=name)
        else:
            result = code.run_memory_experiment(0.0, trials=20, seed=1, decoder=name)
        assert result.logical_failures == 0
        assert result.total_defects == 0
        assert result.decoder == name

    @pytest.mark.parametrize("name", ["matching", "union_find"])
    def test_single_defect_on_boundary_plaquette(self, name):
        # Weight-2 plaquettes sit on the left/right boundaries; a lone
        # defect there must pair with its nearest open boundary, not raise.
        for distance in (3, 5):
            code = PlanarSurfaceCode(distance)
            decoder = decoder_for(code, name)
            for ancilla, plaquette in enumerate(code.plaquettes):
                if len(plaquette) != 2:
                    continue
                parity = decoder.decode([(0, ancilla)])
                assert parity in (0, 1)
                assert parity == MatchingDecoder(code).decode([(0, ancilla)])

    @pytest.mark.parametrize("name", ["matching", "union_find"])
    def test_all_defects(self, name):
        # Every detector fires in every round: decoding must terminate and
        # return a bit, deterministically.
        code = PlanarSurfaceCode(3)
        rounds = 2
        defects = [
            (t, a) for t in range(rounds + 1) for a in range(code.num_ancilla)
        ]
        decoder = decoder_for(code, name)
        first = decoder.decode(list(defects))
        second = decoder.decode(list(defects))
        assert first in (0, 1)
        assert first == second

    @pytest.mark.parametrize("name", ["matching", "union_find"])
    def test_odd_defect_counts_absorbed_by_boundary(self, name):
        # Odd-parity defect sets are valid on a planar code (chains may end
        # on the open boundaries) — the guard is that decoding completes.
        code = PlanarSurfaceCode(5)
        decoder = decoder_for(code, name)
        assert decoder.decode([(0, 0)]) in (0, 1)
        assert decoder.decode([(0, 0), (0, 1), (1, 2)]) in (0, 1)

    def test_unknown_decoder_name_rejected(self):
        with pytest.raises(ValueError, match="unknown decoder"):
            decoder_for(PlanarSurfaceCode(3), "bogus")


# ---------------------------------------------------------------------- #
# Runtime plumbing
# ---------------------------------------------------------------------- #
class TestRuntimeCircuitMode:
    def test_spec_validation(self):
        from repro.runtime.spec import QecSpec

        with pytest.raises(ValueError, match="noise_model"):
            QecSpec(noise_model="wrong")
        with pytest.raises(ValueError, match="decoder"):
            QecSpec(decoder="wrong")
        assert QecSpec().effective_decoder == "matching"
        assert QecSpec(noise_model="circuit").effective_decoder == "union_find"
        assert QecSpec(noise_model="circuit", decoder="matching").effective_decoder == "matching"

    def test_circuit_sweep_bit_identical_across_workers(self):
        from repro.runtime import ExperimentRunner, ExperimentSpec, QecSpec

        spec = ExperimentSpec(
            name="qec-circuit",
            kind="qec",
            qec=QecSpec(distance=3, noise_model="circuit"),
            shots=400,
            seed=77,
            sweep={"qec.physical_error_rate": [0.004, 0.02]},
        )
        serial = ExperimentRunner(spec, workers=1, use_cache=False).run()
        parallel = ExperimentRunner(spec, workers=3, use_cache=False).run()
        assert [p.counts for p in serial.points] == [p.counts for p in parallel.points]
        assert [p.errors_injected for p in serial.points] == [
            p.errors_injected for p in parallel.points
        ]
        # More physical noise, more (or equal) logical failures.
        assert serial.points[0].probability("1") <= serial.points[1].probability("1")

    def test_circuit_mode_matches_direct_shard_calls(self):
        """The runtime's merged histogram is exactly the shard-wise sum of
        direct run_circuit_memory_experiment calls under the seeding contract."""
        from repro.runtime import ExperimentRunner, ExperimentSpec, QecSpec
        from repro.runtime.seeding import shard_seed, shard_sizes

        spec = ExperimentSpec(
            name="qec-contract",
            kind="qec",
            qec=QecSpec(distance=3, noise_model="circuit", physical_error_rate=0.01),
            shots=300,
            seed=13,
        )
        result = ExperimentRunner(spec, workers=1, use_cache=False).run()
        code = PlanarSurfaceCode(3)
        failures = 0
        for shard_index, size in enumerate(shard_sizes(300, spec.max_shard_shots, spec.min_shards)):
            failures += code.run_circuit_memory_experiment(
                0.01,
                trials=size,
                seed=shard_seed(13, 0, shard_index),
            ).logical_failures
        assert result.points[0].counts.get("1", 0) == failures

    def test_sweep_over_noise_model(self):
        from repro.runtime import ExperimentRunner, ExperimentSpec, QecSpec

        spec = ExperimentSpec(
            name="qec-models",
            kind="qec",
            qec=QecSpec(distance=3, physical_error_rate=0.01),
            shots=120,
            seed=3,
            sweep={"qec.noise_model": ["phenomenological", "circuit"]},
        )
        result = ExperimentRunner(spec, workers=1, use_cache=False).run()
        assert [p.params["qec.noise_model"] for p in result.points] == [
            "phenomenological",
            "circuit",
        ]
        assert all(p.shots == 120 for p in result.points)
