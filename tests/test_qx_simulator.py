"""Unit tests for the QX simulator front-end."""

import numpy as np
import pytest

from repro.core.circuit import Circuit, bell_pair_circuit, ghz_circuit
from repro.core.qubits import PERFECT, REALISTIC
from repro.qx.error_models import DepolarizingError, MeasurementError, NoError
from repro.qx.simulator import QXSimulator


def test_bell_state_counts_only_correlated(ideal_simulator, bell_circuit):
    result = ideal_simulator.run(bell_circuit, shots=500)
    assert set(result.counts) <= {"00", "11"}
    assert sum(result.counts.values()) == 500
    assert 0.3 < result.probability("00") < 0.7


def test_ghz_counts_two_outcomes(ideal_simulator, ghz5_circuit):
    result = ideal_simulator.run(ghz5_circuit, shots=300)
    assert set(result.counts) <= {"00000", "11111"}


def test_shots_must_be_positive(ideal_simulator, bell_circuit):
    with pytest.raises(ValueError):
        ideal_simulator.run(bell_circuit, shots=0)


def test_deterministic_circuit_single_outcome(ideal_simulator):
    circuit = Circuit(2)
    circuit.x(0).x(1).measure_all()
    result = ideal_simulator.run(circuit, shots=50)
    assert result.counts == {"11": 50}
    assert result.most_frequent() == "11"


def test_simulator_register_size_check():
    simulator = QXSimulator(num_qubits=2)
    with pytest.raises(ValueError):
        simulator.run(ghz_circuit(3), shots=1)


def test_final_state_returned_when_no_measurement():
    simulator = QXSimulator(seed=3)
    result = simulator.run(bell_pair_circuit(), shots=1)
    assert result.final_state is not None
    np.testing.assert_allclose(np.abs(result.final_state[[0, 3]]) ** 2, [0.5, 0.5], atol=1e-12)


def test_statevector_matches_unitary_column(ideal_simulator):
    circuit = bell_pair_circuit()
    statevector = ideal_simulator.statevector(circuit)
    np.testing.assert_allclose(statevector, circuit.to_unitary()[:, 0], atol=1e-12)


def test_statevector_rejects_measurement(ideal_simulator, bell_circuit):
    with pytest.raises(ValueError):
        ideal_simulator.statevector(bell_circuit)


def test_error_model_and_qubit_model_mutually_exclusive():
    with pytest.raises(ValueError):
        QXSimulator(error_model=NoError(), qubit_model=REALISTIC)


def test_qubit_model_constructs_matching_error_model():
    simulator = QXSimulator(qubit_model=PERFECT)
    assert isinstance(simulator.error_model, NoError)
    noisy = QXSimulator(qubit_model=REALISTIC)
    assert not isinstance(noisy.error_model, NoError)


def test_noisy_bell_eventually_produces_wrong_outcomes(bell_circuit):
    simulator = QXSimulator(error_model=DepolarizingError(0.2), seed=9)
    result = simulator.run(bell_circuit, shots=300)
    assert set(result.counts) - {"00", "11"}, "strong noise must leak into 01/10"
    assert result.errors_injected > 0


def test_measurement_error_flips_deterministic_outcome():
    circuit = Circuit(1)
    circuit.measure(0)
    simulator = QXSimulator(error_model=MeasurementError(1.0), seed=1)
    result = simulator.run(circuit, shots=20)
    assert result.counts == {"1": 20}


def test_seeded_runs_are_reproducible(bell_circuit):
    first = QXSimulator(seed=42).run(bell_circuit, shots=200).counts
    second = QXSimulator(seed=42).run(bell_circuit, shots=200).counts
    assert first == second


def test_classical_bits_recorded_per_shot(ideal_simulator, bell_circuit):
    result = ideal_simulator.run(bell_circuit, shots=25)
    assert len(result.classical_bits) == 25
    for bits in result.classical_bits:
        assert bits[0] == bits[1]


def test_expectation_z_from_result(ideal_simulator):
    circuit = Circuit(1)
    circuit.x(0).measure(0)
    result = ideal_simulator.run(circuit, shots=10)
    assert result.expectation_z(0) == pytest.approx(-1.0)


def test_success_probability_helper(ideal_simulator, bell_circuit):
    result = ideal_simulator.run(bell_circuit, shots=100)
    assert result.success_probability("00") + result.success_probability("11") == pytest.approx(1.0)


def test_fidelity_with_ideal_decreases_with_noise():
    circuit = ghz_circuit(4)
    low_noise = QXSimulator(error_model=DepolarizingError(0.001), seed=5)
    high_noise = QXSimulator(error_model=DepolarizingError(0.1), seed=5)
    fidelity_low = low_noise.fidelity_with_ideal(circuit, shots=30)
    fidelity_high = high_noise.fidelity_with_ideal(circuit, shots=30)
    assert fidelity_low > fidelity_high


def test_mid_circuit_measurement_forces_trajectories():
    circuit = Circuit(2)
    circuit.h(0)
    circuit.measure(0)
    circuit.cnot(0, 1)
    circuit.measure(1)
    result = QXSimulator(seed=8).run(circuit, shots=100)
    # Measured qubit 0 then CNOT: outcomes must remain correlated.
    for bits in result.classical_bits:
        assert bits[0] == bits[1]


def test_initial_state_override(ideal_simulator):
    circuit = Circuit(1)
    circuit.measure(0)
    one_state = np.array([0.0, 1.0], dtype=complex)
    result = ideal_simulator.run(circuit, shots=10, initial_state=one_state)
    assert result.counts == {"1": 10}


class TestCliffordAutoDispatch:
    """Noise-free all-Clifford circuits beyond the state-vector range are
    routed to the stabilizer tableau engine with unchanged result format."""

    def test_large_clifford_circuit_runs(self):
        circuit = ghz_circuit(32)
        circuit.measure_all()
        result = QXSimulator(seed=2).run(circuit, shots=60)
        assert set(result.counts) <= {"0" * 32, "1" * 32}
        assert sum(result.counts.values()) == 60
        assert len(result.classical_bits) == 60
        assert result.num_qubits == 32

    def test_midsize_trajectory_forcing_clifford_dispatches(self, monkeypatch):
        """Mid-circuit feedback forces per-shot O(2**n) trajectories on the
        state vector, so the tableau takes over already at 21+ qubits."""
        calls = []
        original = QXSimulator._run_stabilizer
        monkeypatch.setattr(
            QXSimulator,
            "_run_stabilizer",
            lambda self, *args: calls.append(1) or original(self, *args),
        )
        circuit = Circuit(21)
        circuit.h(0)
        circuit.measure(0)
        circuit.conditional_gate("x", 0, 20)
        circuit.measure(20)
        result = QXSimulator(seed=3).run(circuit, shots=30)
        assert calls, "trajectory-forcing Clifford circuit was not dispatched"
        assert sum(result.counts.values()) == 30

    def test_midsize_sampled_eligible_clifford_keeps_statevector(self, monkeypatch):
        """Terminal-measurement circuits keep the flat-in-shots sampled path
        until the amplitude array itself becomes infeasible."""
        monkeypatch.setattr(
            QXSimulator,
            "_run_stabilizer",
            lambda *args, **kwargs: pytest.fail("sampled-eligible circuit dispatched"),
        )
        circuit = ghz_circuit(21)
        circuit.measure_all()
        result = QXSimulator(seed=4).run(circuit, shots=500)
        assert sum(result.counts.values()) == 500
        assert set(result.counts) <= {"0" * 21, "1" * 21}

    def test_large_clifford_bit_cross_map(self):
        circuit = Circuit(26)
        circuit.x(0)
        circuit.measure(0, bit=5)
        circuit.measure(1, bit=2)
        result = QXSimulator(seed=0).run(circuit, shots=9)
        assert result.counts == {"10": 9}
        assert all(bits[5] == 1 and bits[2] == 0 for bits in result.classical_bits)

    def test_large_clifford_conditional_feedback(self):
        circuit = Circuit(25)
        circuit.h(0)
        circuit.cnot(0, 24)
        circuit.measure(0)
        circuit.conditional_gate("x", 0, 24)
        circuit.measure(24)
        result = QXSimulator(seed=5).run(circuit, shots=80)
        # Bit 24 (leftmost key character) is always corrected back to 0.
        assert all(key[0] == "0" for key in result.counts)
        assert sum(result.counts.values()) == 80

    def test_small_circuits_keep_statevector_path(self, monkeypatch):
        monkeypatch.setattr(
            QXSimulator,
            "_run_stabilizer",
            lambda *args, **kwargs: pytest.fail("small circuit dispatched to tableau"),
        )
        circuit = ghz_circuit(5)
        circuit.measure_all()
        result = QXSimulator(seed=0).run(circuit, shots=20)
        assert sum(result.counts.values()) == 20

    def test_noisy_clifford_keeps_trajectory_path(self, monkeypatch):
        monkeypatch.setattr(
            QXSimulator,
            "_run_stabilizer",
            lambda *args, **kwargs: pytest.fail("noisy circuit dispatched to tableau"),
        )
        circuit = Circuit(2)
        circuit.h(0)
        circuit.cnot(0, 1)
        circuit.measure_all()
        simulator = QXSimulator(error_model=DepolarizingError(0.01), seed=1)
        result = simulator.run(circuit, shots=10)
        assert sum(result.counts.values()) == 10
