"""Unit tests for the variational algorithms (QAOA, VQE) and the QFT module."""

import math

import numpy as np
import pytest

from repro.algorithms.qaoa import QAOA, _all_energies
from repro.algorithms.qft import (
    approximate_qft,
    inverse_quantum_fourier_transform,
    phase_estimation_rotation_count,
    quantum_fourier_transform,
)
from repro.algorithms.vqe import VQE, PauliTerm, ising_hamiltonian
from repro.annealing.ising import random_ising
from repro.annealing.qubo import maxcut_qubo


class TestQFTModule:
    def test_qft_times_inverse_is_identity(self):
        qft = quantum_fourier_transform(3)
        iqft = inverse_quantum_fourier_transform(3)
        product = qft.compose(iqft).to_unitary()
        np.testing.assert_allclose(product, np.eye(8), atol=1e-9)

    def test_rotation_count_formula(self):
        assert phase_estimation_rotation_count(5) == 10
        assert quantum_fourier_transform(5).gate_count("cr") == 10

    def test_approximate_qft_has_fewer_rotations(self):
        full = quantum_fourier_transform(8)
        approx = approximate_qft(8, max_k=3)
        assert approx.gate_count("cr") < full.gate_count("cr")

    def test_approximate_qft_close_to_exact(self):
        full = quantum_fourier_transform(5).to_unitary()
        approx = approximate_qft(5, max_k=4).to_unitary()
        # Operator overlap must remain high for max_k = 4.
        fidelity = abs(np.trace(full.conj().T @ approx)) / 2 ** 5
        assert fidelity > 0.95


class TestQAOA:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QAOA(depth=0)
        with pytest.raises(ValueError):
            QAOA(optimizer="adam")

    def test_all_energies_matches_model(self):
        model = random_ising(4, density=0.8, seed=1)
        energies = _all_energies(model)
        for index in (0, 5, 15):
            spins = np.array([2 * ((index >> q) & 1) - 1 for q in range(4)])
            assert energies[index] == pytest.approx(model.energy(spins))

    def test_circuit_structure(self):
        model = random_ising(4, density=0.6, seed=2)
        qaoa = QAOA(depth=2, seed=3)
        circuit = qaoa.circuit(model, np.array([0.3, 0.4]), np.array([0.2, 0.1]))
        assert circuit.gate_count("h") == 4
        assert circuit.gate_count("rx") == 8  # one mixer rotation per qubit per layer
        assert circuit.gate_count("cnot") == 2 * 2 * len(model.edges())

    def test_solves_triangle_maxcut(self):
        qubo = maxcut_qubo([(0, 1), (1, 2), (0, 2)], 3)
        _, optimum = qubo.brute_force()
        result = QAOA(depth=2, seed=4, max_iterations=60).solve_qubo(qubo)
        assert result.best_energy == pytest.approx(optimum, abs=1e-9)
        assert result.circuit_executions > 0
        assert len(result.history) >= result.iterations

    def test_grid_optimizer_depth_one(self):
        qubo = maxcut_qubo([(0, 1), (1, 2)], 3)
        _, optimum = qubo.brute_force()
        result = QAOA(depth=1, optimizer="grid", seed=5).solve_qubo(qubo)
        assert result.best_energy == pytest.approx(optimum, abs=1e-9)

    def test_expectation_improves_over_random_guess(self):
        model = random_ising(5, density=0.5, seed=6)
        energies = _all_energies(model)
        random_average = float(np.mean(energies))
        result = QAOA(depth=2, seed=7, max_iterations=60).solve_ising(model)
        assert result.expectation < random_average

    def test_approximation_ratio_bounds(self):
        qubo = maxcut_qubo([(0, 1), (1, 2), (0, 2)], 3)
        ising, offset = qubo.to_ising()
        energies = _all_energies(ising)
        result = QAOA(depth=2, seed=8, max_iterations=50).solve_ising(ising)
        ratio = result.approximation_ratio(float(energies.min()), float(energies.max()))
        assert 0.0 <= ratio <= 1.0 + 1e-9

    def test_top_bitstrings_sorted_by_probability(self):
        model = random_ising(3, density=1.0, seed=9)
        result = QAOA(depth=1, seed=10, max_iterations=20).solve_ising(model)
        probabilities = [p for _, p in result.top_bitstrings]
        assert probabilities == sorted(probabilities, reverse=True)
        assert sum(probabilities) <= 1.0 + 1e-6

    def test_qubit_limit(self):
        with pytest.raises(ValueError):
            QAOA(depth=1).solve_ising(random_ising(21, seed=11))

    def test_shot_based_expectation_runs(self):
        qubo = maxcut_qubo([(0, 1)], 2)
        result = QAOA(depth=1, shots=256, seed=12, max_iterations=15).solve_qubo(qubo)
        assert result.best_energy <= 0.0


class TestVQE:
    def test_parameter_count(self):
        vqe = VQE(4, layers=3)
        assert vqe.num_parameters == 4 * 4

    def test_ansatz_validates_parameter_length(self):
        vqe = VQE(3, layers=1)
        with pytest.raises(ValueError):
            vqe.ansatz(np.zeros(2))

    def test_pauli_term_validation(self):
        with pytest.raises(ValueError):
            PauliTerm(1.0, {0: "w"})

    def test_expectation_of_z_on_ground_state(self):
        vqe = VQE(2, layers=1, seed=1)
        params = np.zeros(vqe.num_parameters)
        value = vqe.expectation([PauliTerm(1.0, {0: "z"})], params)
        assert value == pytest.approx(1.0)

    def test_expectation_of_x_after_rotation(self):
        vqe = VQE(1, layers=0, seed=2)
        params = np.array([math.pi / 2])  # Ry(pi/2)|0> = |+>
        value = vqe.expectation([PauliTerm(1.0, {0: "x"})], params)
        assert value == pytest.approx(1.0, abs=1e-9)

    def test_minimize_single_qubit_z(self):
        vqe = VQE(1, layers=1, seed=3, max_iterations=100)
        result = vqe.minimize([PauliTerm(1.0, {0: "z"})])
        assert result.energy == pytest.approx(-1.0, abs=1e-2)

    def test_minimize_ising_chain_reaches_ground_state(self):
        ising = random_ising(3, density=1.0, seed=4)
        _, exact = ising.brute_force()
        hamiltonian = ising_hamiltonian(ising.h, ising.couplings)
        result = VQE(3, layers=2, seed=5, max_iterations=200).minimize(hamiltonian)
        assert result.energy <= exact + 0.15
        assert result.circuit_executions == len(result.history)

    def test_qubit_limit(self):
        with pytest.raises(ValueError):
            VQE(13)

    def test_ising_hamiltonian_term_count(self):
        ising = random_ising(4, density=1.0, seed=6)
        terms = ising_hamiltonian(ising.h, ising.couplings)
        expected = np.count_nonzero(ising.h) + len(ising.edges())
        assert len(terms) == expected
