"""Unit tests for platforms, kernels and programs."""

import json

import pytest

from repro.openql.kernel import Kernel
from repro.openql.platform import (
    Platform,
    perfect_platform,
    realistic_platform,
    spin_qubit_platform,
    superconducting_platform,
    surface17_platform,
)
from repro.openql.program import Program


class TestPlatform:
    def test_perfect_platform_fully_connected_no_routing(self):
        platform = perfect_platform(5)
        assert platform.num_qubits == 5
        assert not platform.requires_routing
        assert platform.topology.diameter() == 1

    def test_realistic_platform_requires_routing(self):
        platform = realistic_platform(9, error_rate=1e-3)
        assert platform.requires_routing
        assert platform.qubit_model.single_qubit_error_rate == pytest.approx(1e-3)

    def test_superconducting_platform_native_gates(self):
        platform = superconducting_platform()
        assert platform.supports("cz")
        assert not platform.supports("cnot")
        assert not platform.supports("h")
        assert platform.duration_of("measure") == 600

    def test_spin_platform_slower_than_transmon(self):
        spin = spin_qubit_platform()
        transmon = superconducting_platform()
        assert spin.duration_of("cz") > transmon.duration_of("cz")
        assert spin.cycle_time_ns > transmon.cycle_time_ns

    def test_surface17_platform_has_17_qubits(self):
        platform = surface17_platform()
        assert platform.num_qubits == 17
        assert platform.topology.is_connected()

    def test_platform_validation(self):
        with pytest.raises(ValueError):
            Platform(name="bad", num_qubits=0)
        from repro.mapping.topology import linear_topology

        with pytest.raises(ValueError):
            Platform(name="bad", num_qubits=5, topology=linear_topology(3))

    def test_describe_and_json_round_trip(self, tmp_path):
        platform = superconducting_platform()
        path = tmp_path / "platform.json"
        platform.to_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["name"] == platform.name
        assert loaded["num_qubits"] == 7
        assert loaded["nearest_neighbour_only"] is True

    def test_default_two_qubit_durations_derived_from_qubit_model(self):
        platform = perfect_platform(2)
        assert platform.duration_of("swap") == 3 * platform.qubit_model.two_qubit_gate_ns


class TestKernelAndProgram:
    def test_kernel_gate_api_builds_circuit(self, perfect_4q_platform):
        kernel = Kernel("demo", perfect_4q_platform)
        kernel.hadamard(0).cnot(0, 1).rx(2, 0.5).measure(1)
        assert kernel.gate_count() == 3
        assert kernel.depth() >= 2
        assert len(kernel.circuit.measurements()) == 1

    def test_kernel_rejects_too_many_qubits(self, perfect_4q_platform):
        with pytest.raises(ValueError):
            Kernel("too_big", perfect_4q_platform, num_qubits=10)

    def test_kernel_gate_with_angle(self, perfect_4q_platform):
        kernel = Kernel("rot", perfect_4q_platform)
        kernel.gate("rz", 0, angle=1.2)
        assert kernel.circuit.gate_operations()[0].params == (1.2,)

    def test_kernel_extend_with_circuit(self, perfect_4q_platform):
        from repro.core.circuit import bell_pair_circuit

        kernel = Kernel("ext", perfect_4q_platform)
        kernel.extend(bell_pair_circuit())
        assert kernel.gate_count() == 2

    def test_kernel_prepz_is_noop(self, perfect_4q_platform):
        kernel = Kernel("prep", perfect_4q_platform)
        kernel.prepz(0)
        assert kernel.gate_count() == 0

    def test_program_new_kernel_registers(self, perfect_4q_platform):
        program = Program("app", perfect_4q_platform)
        kernel = program.new_kernel("main")
        kernel.x(0)
        assert program.kernels == [kernel]
        assert program.total_gate_count() == 1

    def test_program_for_loop_multiplies_gate_count(self, perfect_4q_platform):
        program = Program("loop", perfect_4q_platform)
        kernel = Kernel("body", perfect_4q_platform)
        kernel.x(0)
        program.add_for(kernel, 10)
        assert program.total_gate_count() == 10

    def test_program_conditional_kernel(self, perfect_4q_platform):
        program = Program("cond", perfect_4q_platform)
        kernel = Kernel("branch", perfect_4q_platform)
        kernel.z(0)
        program.add_if(kernel, condition="result == 1")
        assert program.entries[0].condition == "result == 1"

    def test_program_rejects_invalid_iterations(self, perfect_4q_platform):
        program = Program("bad", perfect_4q_platform)
        kernel = Kernel("k", perfect_4q_platform)
        with pytest.raises(ValueError):
            program.add_kernel(kernel, iterations=0)

    def test_program_rejects_oversized_request(self, perfect_4q_platform):
        with pytest.raises(ValueError):
            Program("big", perfect_4q_platform, num_qubits=16)
