"""Unit tests for the QUBO and Ising models and their inter-conversion."""

import numpy as np
import pytest

from repro.annealing.ising import IsingModel, random_ising
from repro.annealing.qubo import QUBO, maxcut_qubo, random_qubo


class TestQUBO:
    def test_requires_square_matrix(self):
        with pytest.raises(ValueError):
            QUBO(np.zeros((2, 3)))

    def test_canonicalises_to_upper_triangular(self):
        matrix = np.array([[1.0, 0.0], [2.0, -1.0]])
        qubo = QUBO(matrix)
        assert qubo.matrix[0, 1] == 2.0
        assert qubo.matrix[1, 0] == 0.0

    def test_from_dict_accumulates_terms(self):
        qubo = QUBO.from_dict(3, {(0, 0): 1.0, (0, 1): 2.0, (1, 0): 0.5})
        assert qubo.matrix[0, 0] == 1.0
        assert qubo.matrix[0, 1] == 2.5

    def test_energy_evaluation(self):
        qubo = QUBO.from_dict(2, {(0, 0): -1.0, (1, 1): -1.0, (0, 1): 2.0})
        assert qubo.energy(np.array([0, 0])) == 0.0
        assert qubo.energy(np.array([1, 0])) == -1.0
        assert qubo.energy(np.array([1, 1])) == 0.0

    def test_energy_rejects_wrong_length(self):
        qubo = QUBO.empty(3)
        with pytest.raises(ValueError):
            qubo.energy(np.array([1, 0]))

    def test_brute_force_finds_optimum(self):
        qubo = QUBO.from_dict(2, {(0, 0): -1.0, (1, 1): -1.0, (0, 1): 2.0})
        best, energy = qubo.brute_force()
        assert energy == -1.0
        assert best.sum() == 1

    def test_brute_force_size_limit(self):
        with pytest.raises(ValueError):
            QUBO.empty(25).brute_force()

    def test_quadratic_terms_and_edges(self):
        qubo = QUBO.from_dict(3, {(0, 1): 1.0, (1, 2): -2.0})
        assert qubo.quadratic_terms() == {(0, 1): 1.0, (1, 2): -2.0}
        assert qubo.interaction_graph_edges() == [(0, 1), (1, 2)]

    def test_maxcut_qubo_optimum_cuts_all_edges(self):
        # A 4-cycle is bipartite: the optimum cuts all four edges.
        edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
        qubo = maxcut_qubo(edges, 4)
        _, energy = qubo.brute_force()
        assert energy == -4.0

    def test_random_qubo_reproducible(self):
        a = random_qubo(6, seed=1)
        b = random_qubo(6, seed=1)
        np.testing.assert_allclose(a.matrix, b.matrix)


class TestIsing:
    def test_coupling_shape_validation(self):
        with pytest.raises(ValueError):
            IsingModel(h=np.zeros(3), couplings=np.zeros((2, 2)))

    def test_energy_ferromagnetic_pair(self):
        model = IsingModel(h=np.zeros(2), couplings=np.array([[0.0, -1.0], [0.0, 0.0]]))
        assert model.energy(np.array([1, 1])) == -1.0
        assert model.energy(np.array([1, -1])) == 1.0

    def test_energy_delta_matches_explicit_flip(self):
        model = random_ising(6, density=0.7, seed=2)
        rng = np.random.default_rng(3)
        spins = rng.choice([-1.0, 1.0], size=6)
        for index in range(6):
            flipped = spins.copy()
            flipped[index] = -flipped[index]
            expected = model.energy(flipped) - model.energy(spins)
            assert model.energy_delta(spins, index) == pytest.approx(expected)

    def test_brute_force_ground_state_of_frustration_free_model(self):
        couplings = np.zeros((3, 3))
        couplings[0, 1] = couplings[1, 2] = -1.0
        model = IsingModel(h=np.zeros(3), couplings=couplings)
        spins, energy = model.brute_force()
        assert energy == -2.0
        assert abs(spins.sum()) == 3  # all aligned

    def test_edges_listed(self):
        model = IsingModel(h=np.zeros(3), couplings=np.array(
            [[0, 1.0, 0], [0, 0, -1.0], [0, 0, 0]]
        ))
        assert model.edges() == [(0, 1), (1, 2)]


class TestConversions:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_qubo_to_ising_energy_consistency(self, seed):
        qubo = random_qubo(6, density=0.6, seed=seed)
        ising, offset = qubo.to_ising()
        rng = np.random.default_rng(seed)
        for _ in range(20):
            x = rng.integers(0, 2, size=6)
            spins = 2 * x - 1
            assert qubo.energy(x) == pytest.approx(ising.energy(spins) + offset)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_ising_to_qubo_energy_consistency(self, seed):
        ising = random_ising(5, density=0.7, seed=seed)
        qubo, offset = ising.to_qubo()
        rng = np.random.default_rng(seed)
        for _ in range(20):
            spins = rng.choice([-1, 1], size=5)
            x = (spins + 1) // 2
            assert ising.energy(spins) == pytest.approx(qubo.energy(x) + offset)

    def test_round_trip_preserves_ground_state(self):
        qubo = random_qubo(8, density=0.5, seed=9)
        ising, offset = qubo.to_ising()
        x_best, e_qubo = qubo.brute_force()
        s_best, e_ising = ising.brute_force()
        assert e_qubo == pytest.approx(e_ising + offset)
