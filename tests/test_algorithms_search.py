"""Unit tests for the search-style algorithms: Grover, Deutsch-Jozsa, Bernstein-Vazirani."""

import math

import numpy as np
import pytest

from repro.algorithms.bernstein_vazirani import BernsteinVazirani
from repro.algorithms.deutsch_jozsa import DeutschJozsa
from repro.algorithms.grover import (
    GroverSearch,
    classical_search_queries,
    grover_circuit,
    optimal_grover_iterations,
)
from repro.qx.simulator import QXSimulator


class TestGroverIterationCount:
    def test_known_values(self):
        assert optimal_grover_iterations(4) == 1
        assert optimal_grover_iterations(1024) == 25
        assert optimal_grover_iterations(1024, num_solutions=4) == 12

    def test_scaling_is_sqrt(self):
        small = optimal_grover_iterations(2 ** 10)
        large = optimal_grover_iterations(2 ** 14)
        assert large / small == pytest.approx(4.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_grover_iterations(8, num_solutions=0)
        with pytest.raises(ValueError):
            optimal_grover_iterations(8, num_solutions=9)

    def test_classical_queries_linear(self):
        assert classical_search_queries(100) == pytest.approx(50.5)
        assert classical_search_queries(1000) / classical_search_queries(100) == pytest.approx(
            9.91, rel=0.01
        )


class TestGroverGateLevel:
    @pytest.mark.parametrize("marked", range(8))
    def test_three_qubit_search_finds_any_marked_state(self, marked):
        circuit = grover_circuit(3, marked)
        circuit.measure_all()
        result = QXSimulator(seed=marked).run(circuit, shots=100)
        expected = format(marked, "03b")
        assert result.most_frequent() == expected
        assert result.probability(expected) > 0.8

    def test_two_qubit_search_is_deterministic(self):
        for marked in range(4):
            circuit = grover_circuit(2, marked)
            circuit.measure_all()
            result = QXSimulator(seed=1).run(circuit, shots=50)
            assert result.probability(format(marked, "02b")) == pytest.approx(1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            grover_circuit(4, 0)
        with pytest.raises(ValueError):
            grover_circuit(3, 9)


class TestGroverStateVectorLevel:
    def test_success_probability_near_one(self):
        search = GroverSearch(12, rng=np.random.default_rng(1))
        result = search.run(marked=1234)
        assert result.best_index == 1234
        assert result.success_probability > 0.99
        assert result.oracle_queries == optimal_grover_iterations(2 ** 12)

    def test_multiple_marked_entries(self):
        search = GroverSearch(10, rng=np.random.default_rng(2))
        marked = {5, 100, 800}
        result = search.run(marked=marked)
        assert result.best_index in marked
        assert result.success_probability > 0.95

    def test_sampling_follows_amplified_distribution(self):
        search = GroverSearch(8, rng=np.random.default_rng(3))
        result = search.run(marked=17)
        samples = search.sample(result, shots=200)
        assert samples.count(17) > 180

    def test_non_uniform_initial_state(self):
        search = GroverSearch(4, rng=np.random.default_rng(4))
        amplitudes = np.zeros(16)
        amplitudes[:8] = 1.0
        result = search.run(marked=3, initial_amplitudes=amplitudes)
        # The marked entry is amplified well above its initial 1/8 weight and
        # ends up as the most likely outcome even from a non-uniform start.
        assert result.best_index == 3
        assert result.success_probability > 0.3

    def test_quadratic_speedup_vs_classical(self):
        for num_qubits in (8, 12, 16):
            database = 2 ** num_qubits
            quantum = optimal_grover_iterations(database)
            classical = classical_search_queries(database)
            assert quantum < math.sqrt(database) * 1.1
            assert classical / quantum > math.sqrt(database) / 3

    def test_marked_index_validation(self):
        search = GroverSearch(3)
        with pytest.raises(IndexError):
            search.run(marked=100)
        with pytest.raises(ValueError):
            search.run(marked=set())


class TestDeutschJozsa:
    def test_constant_oracle_detected(self):
        result = DeutschJozsa(5).run("constant", seed=1)
        assert result.is_constant
        assert result.measured_bits == "00000"

    def test_balanced_oracle_detected(self):
        result = DeutschJozsa(5).run("balanced", seed=2)
        assert not result.is_constant

    @pytest.mark.parametrize("mask", [0b1, 0b101, 0b1111])
    def test_balanced_masks(self, mask):
        result = DeutschJozsa(4).run("balanced", mask=mask, seed=3)
        assert not result.is_constant

    def test_single_query_vs_classical(self):
        assert DeutschJozsa.classical_worst_case_queries(10) == 513
        assert DeutschJozsa(10).run("constant", seed=4).oracle_queries == 1

    def test_invalid_oracle_name(self):
        with pytest.raises(ValueError):
            DeutschJozsa(3).circuit("sideways")

    def test_size_validation(self):
        with pytest.raises(ValueError):
            DeutschJozsa(0)


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", [0, 1, 0b1010, 0b111111])
    def test_recovers_secret_in_one_query(self, secret):
        algorithm = BernsteinVazirani(6)
        result = algorithm.run(secret, seed=secret + 1)
        assert result.success
        assert result.recovered == secret
        assert result.oracle_queries == 1

    def test_classical_needs_n_queries(self):
        assert BernsteinVazirani.classical_queries(12) == 12

    def test_secret_out_of_range(self):
        with pytest.raises(ValueError):
            BernsteinVazirani(3).circuit(100)

    def test_circuit_gate_structure(self):
        circuit = BernsteinVazirani(4).circuit(0b1001)
        assert circuit.gate_count("h") == 8
        assert circuit.gate_count("z") == 2
