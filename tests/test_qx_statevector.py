"""Unit tests for the state-vector engine."""


import numpy as np
import pytest

from repro.core.gates import build_gate
from repro.qx.statevector import StateVector, ghz_state, uniform_superposition, zero_state


def test_initial_state_is_all_zeros():
    state = StateVector(3)
    assert state.probability_of(0) == pytest.approx(1.0)
    assert state.norm() == pytest.approx(1.0)


def test_qubit_limit_enforced():
    with pytest.raises(ValueError):
        StateVector(27)
    with pytest.raises(ValueError):
        StateVector(0)


def test_set_basis_state():
    state = StateVector(2)
    state.set_basis_state(3)
    assert state.probability_of(3) == pytest.approx(1.0)
    with pytest.raises(IndexError):
        state.set_basis_state(4)


def test_set_state_normalises():
    state = StateVector(1)
    state.set_state(np.array([3.0, 4.0]))
    assert state.norm() == pytest.approx(1.0)
    assert state.probability_of(1) == pytest.approx(16.0 / 25.0)


def test_set_state_rejects_zero_vector():
    state = StateVector(1)
    with pytest.raises(ValueError):
        state.set_state(np.zeros(2))


def test_apply_hadamard_creates_superposition():
    state = StateVector(1)
    state.apply_gate(build_gate("h").matrix, (0,))
    np.testing.assert_allclose(state.probabilities(), [0.5, 0.5], atol=1e-12)


def test_apply_gate_validates_operands():
    state = StateVector(2)
    with pytest.raises(IndexError):
        state.apply_gate(build_gate("x").matrix, (5,))
    with pytest.raises(ValueError):
        state.apply_gate(build_gate("cnot").matrix, (0, 0))
    with pytest.raises(ValueError):
        state.apply_gate(build_gate("x").matrix, (0, 1))


def test_cnot_entangles():
    state = StateVector(2)
    state.apply_gate(build_gate("h").matrix, (0,))
    state.apply_gate(build_gate("cnot").matrix, (0, 1))
    probs = state.probabilities()
    np.testing.assert_allclose(probs[[0, 3]], [0.5, 0.5], atol=1e-12)
    np.testing.assert_allclose(probs[[1, 2]], [0.0, 0.0], atol=1e-12)


def test_gate_on_high_qubit_index():
    state = StateVector(4)
    state.apply_gate(build_gate("x").matrix, (3,))
    assert state.probability_of(0b1000) == pytest.approx(1.0)


def test_norm_preserved_by_random_gates():
    rng = np.random.default_rng(0)
    state = StateVector(4, rng=rng)
    for name in ("h", "t", "s", "x", "y", "z"):
        qubit = int(rng.integers(4))
        state.apply_gate(build_gate(name).matrix, (qubit,))
    state.apply_gate(build_gate("cnot").matrix, (0, 3))
    assert state.norm() == pytest.approx(1.0)


def test_apply_pauli_by_name():
    state = StateVector(1)
    state.apply_pauli("x", 0)
    assert state.probability_of(1) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        state.apply_pauli("q", 0)


def test_measurement_collapses_state():
    rng = np.random.default_rng(5)
    state = StateVector(1, rng=rng)
    state.apply_gate(build_gate("h").matrix, (0,))
    outcome = state.measure(0)
    assert outcome in (0, 1)
    assert state.probability_of_one(0) == pytest.approx(float(outcome))


def test_measure_statistics_of_plus_state():
    rng = np.random.default_rng(7)
    ones = 0
    for _ in range(400):
        state = StateVector(1, rng=rng)
        state.apply_gate(build_gate("h").matrix, (0,))
        ones += state.measure(0)
    assert 140 < ones < 260


def test_collapse_to_zero_probability_raises():
    state = StateVector(1)
    with pytest.raises(ValueError):
        state.collapse(0, 1)


def test_sample_counts_does_not_collapse():
    rng = np.random.default_rng(11)
    state = StateVector(2, rng=rng)
    state.apply_gate(build_gate("h").matrix, (0,))
    counts = state.sample_counts(100)
    assert set(counts) <= {"00", "01"}
    # State unchanged after sampling.
    assert state.probability_of_one(0) == pytest.approx(0.5)


def test_expectation_z_values():
    state = StateVector(1)
    assert state.expectation_z(0) == pytest.approx(1.0)
    state.apply_pauli("x", 0)
    assert state.expectation_z(0) == pytest.approx(-1.0)


def test_expectation_zz_of_bell_state():
    state = StateVector(2)
    state.set_state(ghz_state(2))
    assert state.expectation_zz(0, 1) == pytest.approx(1.0)
    assert state.expectation_z(0) == pytest.approx(0.0)


def test_fidelity_between_states():
    state = StateVector(2)
    assert state.fidelity(zero_state(2)) == pytest.approx(1.0)
    assert state.fidelity(ghz_state(2)) == pytest.approx(0.5)


def test_entropy_of_uniform_superposition():
    state = StateVector(3)
    state.set_state(uniform_superposition(3))
    assert state.entropy() == pytest.approx(3.0)
    fresh = StateVector(3)
    assert fresh.entropy() == pytest.approx(0.0)


def test_copy_independent():
    state = StateVector(1)
    clone = state.copy()
    clone.apply_pauli("x", 0)
    assert state.probability_of(0) == pytest.approx(1.0)
    assert clone.probability_of(1) == pytest.approx(1.0)


def test_reset_restores_ground_state():
    state = StateVector(2)
    state.apply_pauli("x", 1)
    state.reset()
    assert state.probability_of(0) == pytest.approx(1.0)
