"""Importable assertion helpers shared by the unit tests.

Kept out of ``conftest.py`` on purpose: pytest imports every ``conftest.py``
under a bare ``conftest`` module name, so ``from conftest import ...`` in a
test module resolves to whichever conftest happens to land on ``sys.path``
first (historically ``benchmarks/conftest.py``, breaking collection).
"""

from __future__ import annotations

import numpy as np


def relabel_statevector(
    statevector: np.ndarray, mapping: dict[int, int], num_qubits: int
) -> np.ndarray:
    """Move amplitudes from physical to logical qubit ordering.

    ``mapping`` is a routing result's ``final_placement`` (logical ->
    physical); unplaced logical/physical indices are paired up in ascending
    order so the permutation is total.
    """
    used_physical = set(mapping.values())
    used_logical = set(mapping.keys())
    free_physical = [p for p in range(num_qubits) if p not in used_physical]
    free_logical = [l for l in range(num_qubits) if l not in used_logical]
    full_map = dict(mapping)
    full_map.update(dict(zip(free_logical, free_physical, strict=False)))
    out = np.zeros_like(statevector)
    for index in range(len(statevector)):
        new_index = 0
        for logical, physical in full_map.items():
            if (index >> physical) & 1:
                new_index |= 1 << logical
        out[new_index] = statevector[index]
    return out


def assert_equivalent_up_to_phase(matrix_a: np.ndarray, matrix_b: np.ndarray, atol: float = 1e-8):
    """Assert two unitaries are equal up to a global phase."""
    index = np.unravel_index(np.argmax(np.abs(matrix_b)), matrix_b.shape)
    assert abs(matrix_b[index]) > atol, "reference matrix is numerically zero"
    phase = matrix_a[index] / matrix_b[index]
    assert abs(abs(phase) - 1.0) < 1e-6, "matrices differ by more than a phase"
    np.testing.assert_allclose(matrix_a, phase * matrix_b, atol=atol)


# ---------------------------------------------------------------------- #
# Circuit builders referenced by specs as "helpers:<name>"
# ---------------------------------------------------------------------- #
def cross_measured_circuit(num_qubits: int = 3, depth: int = 2, seed: int = 0):
    """Rotation ladder measuring qubit ``i`` into bit ``num_qubits - 1 - i``.

    Exercises the cross-mapped ``measure q[i] -> b[j]`` keying path; used
    with ``measure="asis"`` so the explicit cross map survives spec building.
    """
    from repro.core.circuit import Circuit

    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits)
    for _ in range(depth):
        for qubit in range(num_qubits):
            circuit.rz(qubit, float(rng.uniform(0, 2 * np.pi)))
            circuit.ry(qubit, float(rng.uniform(0, 2 * np.pi)))
        for qubit in range(num_qubits - 1):
            circuit.cnot(qubit, qubit + 1)
    for qubit in range(num_qubits):
        circuit.measure(qubit, num_qubits - 1 - qubit)
    return circuit


def flipped_bit_circuit(num_qubits: int = 2):
    """X on qubit 0, every qubit measured into the mirrored classical bit.

    Deterministic: every shot keys as ``"10...0"`` (qubit 0's outcome lands
    on the highest classical bit, the leftmost key character).
    """
    from repro.core.circuit import Circuit

    circuit = Circuit(num_qubits)
    circuit.x(0)
    for qubit in range(num_qubits):
        circuit.measure(qubit, num_qubits - 1 - qubit)
    return circuit
