"""Importable assertion helpers shared by the unit tests.

Kept out of ``conftest.py`` on purpose: pytest imports every ``conftest.py``
under a bare ``conftest`` module name, so ``from conftest import ...`` in a
test module resolves to whichever conftest happens to land on ``sys.path``
first (historically ``benchmarks/conftest.py``, breaking collection).
"""

from __future__ import annotations

import numpy as np


def assert_equivalent_up_to_phase(matrix_a: np.ndarray, matrix_b: np.ndarray, atol: float = 1e-8):
    """Assert two unitaries are equal up to a global phase."""
    index = np.unravel_index(np.argmax(np.abs(matrix_b)), matrix_b.shape)
    assert abs(matrix_b[index]) > atol, "reference matrix is numerically zero"
    phase = matrix_a[index] / matrix_b[index]
    assert abs(abs(phase) - 1.0) < 1e-6, "matrices differ by more than a phase"
    np.testing.assert_allclose(matrix_a, phase * matrix_b, atol=atol)
