"""Unit tests for error models and the density-matrix cross-check engine."""

import numpy as np
import pytest

from repro.core.circuit import Circuit, bell_pair_circuit
from repro.core.qubits import PERFECT, REAL_TRANSMON, REALISTIC
from repro.qx.density import DensityMatrixSimulator
from repro.qx.error_models import (
    CompositeError,
    DecoherenceError,
    DepolarizingError,
    MeasurementError,
    NoError,
    error_model_for,
)
from repro.qx.simulator import QXSimulator
from repro.qx.statevector import StateVector


class TestErrorModels:
    def test_no_error_injects_nothing(self):
        state = StateVector(2)
        rng = np.random.default_rng(0)
        assert NoError().apply_after_gate(state, (0, 1), 100.0, rng) == 0
        assert NoError().flip_measurement(1, rng) == 1

    def test_depolarizing_rate_validation(self):
        with pytest.raises(ValueError):
            DepolarizingError(1.5)

    def test_depolarizing_injection_rate(self):
        rng = np.random.default_rng(1)
        model = DepolarizingError(0.5)
        state = StateVector(1, rng=rng)
        injected = sum(model.apply_after_gate(state, (0,), 20.0, rng) for _ in range(1000))
        assert 400 < injected < 600

    def test_depolarizing_two_qubit_rate_used(self):
        rng = np.random.default_rng(2)
        model = DepolarizingError(0.0, two_qubit_error_rate=1.0)
        state = StateVector(2, rng=rng)
        assert model.apply_after_gate(state, (0, 1), 20.0, rng) == 2
        assert model.apply_after_gate(state, (0,), 20.0, rng) == 0

    def test_measurement_error_flip_probability_one(self):
        rng = np.random.default_rng(3)
        model = MeasurementError(1.0)
        assert model.flip_measurement(0, rng) == 1
        assert model.flip_measurement(1, rng) == 0

    def test_measurement_error_validation(self):
        with pytest.raises(ValueError):
            MeasurementError(-0.1)

    def test_decoherence_short_times_inject_often(self):
        rng = np.random.default_rng(4)
        model = DecoherenceError(t1_ns=10.0, t2_ns=10.0)
        state = StateVector(1, rng=rng)
        state.apply_pauli("x", 0)
        injected = model.apply_after_gate(state, (0,), 1000.0, rng)
        assert injected >= 1
        # After amplitude damping the excited state must have relaxed.
        assert state.probability_of_one(0) == pytest.approx(0.0)

    def test_decoherence_infinite_times_inject_nothing(self):
        rng = np.random.default_rng(5)
        model = DecoherenceError(t1_ns=float("inf"), t2_ns=float("inf"))
        state = StateVector(1, rng=rng)
        assert model.apply_after_gate(state, (0,), 1e6, rng) == 0

    def test_composite_combines_models(self):
        composite = CompositeError(DepolarizingError(1.0), MeasurementError(1.0))
        rng = np.random.default_rng(6)
        state = StateVector(1, rng=rng)
        assert composite.apply_after_gate(state, (0,), 20.0, rng) == 1
        assert composite.flip_measurement(0, rng) == 1
        assert "depolarizing" in composite.describe()

    def test_error_model_for_perfect_is_none(self):
        assert isinstance(error_model_for(PERFECT), NoError)

    def test_error_model_for_realistic_is_composite(self):
        model = error_model_for(REALISTIC)
        assert not isinstance(model, NoError)
        assert "depolarizing" in model.describe()

    def test_error_model_for_real_transmon_includes_measurement(self):
        model = error_model_for(REAL_TRANSMON)
        rng = np.random.default_rng(7)
        flips = sum(model.flip_measurement(0, rng) for _ in range(2000))
        expected = REAL_TRANSMON.measurement_error_rate * 2000
        assert 0.2 * expected < flips < 3.0 * expected


class TestDensityMatrix:
    def test_qubit_limit(self):
        from repro.qx.density import DENSITY_MAX_QUBITS

        with pytest.raises(ValueError):
            DensityMatrixSimulator(DENSITY_MAX_QUBITS + 1)

    def test_pure_state_purity_one(self):
        dm = DensityMatrixSimulator(2)
        dm.run(bell_pair_circuit())
        assert dm.purity() == pytest.approx(1.0)
        assert dm.trace() == pytest.approx(1.0)

    def test_depolarizing_reduces_purity(self):
        dm = DensityMatrixSimulator(2, depolarizing_rate=0.1)
        dm.run(bell_pair_circuit())
        assert dm.purity() < 1.0
        assert dm.trace() == pytest.approx(1.0)

    def test_probabilities_match_statevector_for_no_noise(self):
        circuit = Circuit(3)
        circuit.h(0).cnot(0, 1).t(1).cnot(1, 2)
        dm = DensityMatrixSimulator(3)
        dm.run(circuit)
        statevector = QXSimulator(seed=0).statevector(circuit)
        np.testing.assert_allclose(dm.probabilities(), np.abs(statevector) ** 2, atol=1e-10)

    def test_measurements_rejected(self):
        dm = DensityMatrixSimulator(1)
        circuit = Circuit(1)
        circuit.measure(0)
        with pytest.raises(ValueError):
            dm.run(circuit)

    def test_trajectory_average_matches_exact_channel(self):
        """Many state-vector trajectories must converge to the density matrix."""
        rate = 0.15
        circuit = Circuit(2)
        circuit.h(0).cnot(0, 1)
        dm = DensityMatrixSimulator(2, depolarizing_rate=rate)
        dm.run(circuit)
        exact = dm.expectation_z(0)

        simulator = QXSimulator(error_model=DepolarizingError(rate), seed=13)
        total = 0.0
        shots = 600
        for _ in range(shots):
            state = StateVector(2, rng=simulator.rng)
            for op in circuit.gate_operations():
                state.apply_gate(op.gate.matrix, op.qubits)
                simulator.error_model.apply_after_gate(state, op.qubits, 20.0, simulator.rng)
            total += state.expectation_z(0)
        trajectory_average = total / shots
        assert abs(trajectory_average - exact) < 0.1

    def test_fidelity_with_pure_state(self):
        dm = DensityMatrixSimulator(2)
        dm.run(bell_pair_circuit())
        bell = QXSimulator(seed=0).statevector(bell_pair_circuit())
        assert dm.fidelity_with_pure(bell) == pytest.approx(1.0)


class TestTensorContraction:
    """apply_unitary/apply_depolarizing by tensor contraction must equal the
    full 2^n x 2^n matrix conjugation they replaced."""

    @staticmethod
    def _random_unitary(rng, k):
        raw = rng.normal(size=(2**k, 2**k)) + 1j * rng.normal(size=(2**k, 2**k))
        q, _ = np.linalg.qr(raw)
        return q

    @pytest.mark.parametrize("num_qubits", [2, 3, 4])
    def test_apply_unitary_matches_expand_gate(self, num_qubits):
        from repro.core.circuit import _expand_gate

        rng = np.random.default_rng(num_qubits)
        sim = DensityMatrixSimulator(num_qubits)
        reference = sim.rho.copy()
        for _ in range(8):
            k = int(rng.integers(1, 3))
            qubits = tuple(int(q) for q in rng.choice(num_qubits, size=k, replace=False))
            unitary = self._random_unitary(rng, k)
            sim.apply_unitary(unitary, qubits)
            full = _expand_gate(unitary, qubits, num_qubits)
            reference = full @ reference @ full.conj().T
            assert np.allclose(sim.rho, reference, atol=1e-12)

    def test_depolarizing_matches_kraus_reference(self):
        from repro.core.circuit import _expand_gate

        paulis = [
            np.array([[0, 1], [1, 0]], dtype=complex),
            np.array([[0, -1j], [1j, 0]], dtype=complex),
            np.array([[1, 0], [0, -1]], dtype=complex),
        ]
        rng = np.random.default_rng(9)
        sim = DensityMatrixSimulator(3)
        sim.apply_unitary(self._random_unitary(rng, 2), (0, 2))
        for qubit, probability in ((0, 0.12), (1, 0.4), (2, 0.05)):
            reference = (1.0 - probability) * sim.rho
            for pauli in paulis:
                full = _expand_gate(pauli, (qubit,), 3)
                reference = reference + (probability / 3.0) * (full @ sim.rho @ full.conj().T)
            sim.apply_depolarizing(qubit, probability)
            assert np.allclose(sim.rho, reference, atol=1e-12)

    def test_trace_preserved_and_purity_decays_under_noise(self):
        """Regression: a noisy random circuit keeps trace 1 exactly while
        purity falls monotonically from 1 toward the mixed-state floor."""
        circuit = Circuit(4)
        circuit.h(0).cnot(0, 1).ry(2, 0.7).cnot(1, 2).rz(3, 1.1).cnot(2, 3).h(3)
        sim = DensityMatrixSimulator(4, depolarizing_rate=0.05)
        purities = [sim.purity()]
        for op in circuit.operations:
            sim.apply_unitary(op.gate.matrix, op.qubits)
            for qubit in op.qubits:
                sim.apply_depolarizing(qubit, sim.depolarizing_rate)
            assert sim.trace() == pytest.approx(1.0, abs=1e-12)
            purities.append(sim.purity())
        assert purities[0] == pytest.approx(1.0, abs=1e-12)
        assert all(b <= a + 1e-12 for a, b in zip(purities, purities[1:], strict=False))
        assert purities[-1] < 0.8
        assert sim.purity() >= 1.0 / 2**4 - 1e-12

    def test_depolarizing_handles_non_contiguous_rho(self):
        """In-place block updates must survive a user-assigned transposed
        (non-C-contiguous) rho instead of silently writing to a copy."""
        sim = DensityMatrixSimulator(2)
        sim.apply_unitary(np.array([[0, 1], [1, 0]], dtype=complex), (0,))
        sim.rho = sim.rho.T  # non-contiguous view, still a valid state
        before = sim.rho.copy()
        sim.apply_depolarizing(0, 0.3)
        assert not np.allclose(sim.rho, before)
        assert sim.trace() == pytest.approx(1.0, abs=1e-12)

    def test_contraction_keeps_hermiticity(self):
        sim = DensityMatrixSimulator(3, depolarizing_rate=0.1)
        circuit = Circuit(3)
        circuit.h(0).cnot(0, 1).cnot(1, 2).s(2).h(1)
        sim.run(circuit)
        assert np.allclose(sim.rho, sim.rho.conj().T, atol=1e-12)
        probabilities = sim.probabilities()
        assert probabilities.sum() == pytest.approx(1.0, abs=1e-12)
